"""``alive-tv``: check refinement between the functions of two IR files.

The standalone tool from §8.1: given a source file and a target file, it
pairs functions by name and reports, for each pair, whether the target
refines the source.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.ir.module import Module
from repro.ir.parser import parse_module
from repro.refinement.check import Verdict, VerifyOptions, verify_refinement
from repro.tv.report import ValidationRecord, ValidationReport


def validate_modules(
    src_module: Module,
    tgt_module: Module,
    options: Optional[VerifyOptions] = None,
) -> ValidationReport:
    """Check every function present in both modules."""
    options = options or VerifyOptions()
    report = ValidationReport()
    for name, src in src_module.functions.items():
        if src.is_declaration:
            continue
        tgt = tgt_module.get_function(name)
        if tgt is None or tgt.is_declaration:
            continue
        result = verify_refinement(src, tgt, src_module, tgt_module, options)
        report.add(ValidationRecord(name, "alive-tv", result))
    return report


def validate_texts(
    src_text: str, tgt_text: str, options: Optional[VerifyOptions] = None
) -> ValidationReport:
    return validate_modules(
        parse_module(src_text), parse_module(tgt_text), options
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="alive-tv",
        description="Bounded translation validation between two IR files.",
    )
    parser.add_argument("src", help="source (original) IR file")
    parser.add_argument("tgt", help="target (optimized) IR file")
    parser.add_argument(
        "--unroll", type=int, default=4, help="loop unroll factor (default 4)"
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0, help="per-pair timeout (s)"
    )
    parser.add_argument(
        "--no-memory", action="store_true", help="skip the memory refinement check"
    )
    parser.add_argument(
        "--certify", action="store_true",
        help="check a RUP proof for every UNSAT solver answer; a rejected "
             "proof reports SOLVER UNSOUND instead of trusting the verdict",
    )
    args = parser.parse_args(argv)

    with open(args.src) as handle:
        src_text = handle.read()
    with open(args.tgt) as handle:
        tgt_text = handle.read()
    options = VerifyOptions(
        unroll_factor=args.unroll,
        timeout_s=args.timeout,
        check_memory=not args.no_memory,
        certify=args.certify,
    )
    report = validate_texts(src_text, tgt_text, options)
    for record in report.records:
        print(f"---- @{record.function} ----")
        print(record.result.describe())
        print()
    print(report.summary())
    unsound = any(
        r.result.verdict is Verdict.SOLVER_UNSOUND for r in report.records
    )
    return 0 if not (report.failures() or unsound) else 1


if __name__ == "__main__":
    sys.exit(main())
