"""Aggregation of validation outcomes into the paper's outcome classes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.refinement.check import RefinementResult, Verdict


@dataclass
class ValidationRecord:
    """One validated (source, target) pair."""

    function: str
    pass_name: str
    result: RefinementResult


@dataclass
class Tally:
    """The outcome columns of Figure 7."""

    correct: int = 0
    incorrect: int = 0
    timeout: int = 0
    oom: int = 0
    unsupported: int = 0
    approx: int = 0
    crash: int = 0  # validator failures contained by the harness
    solver_unsound: int = 0  # UNSAT claims the proof checker rejected
    skipped_unchanged: int = 0
    total_time_s: float = 0.0
    # Query-cache traffic (engine layer); hits skipped the solver entirely.
    qcache_hits: int = 0
    qcache_misses: int = 0
    # Cache-tier load cost (sharded two-tier cache): JSONL entries/bytes
    # parsed by workers at cache open — what shard ownership shrinks —
    # and in-memory LRU evictions under the bounds.  Deliberately not
    # part of row(): load cost is an engine property, not a verdict.
    qcache_load_entries: int = 0
    qcache_load_bytes: int = 0
    qcache_evictions: int = 0
    # Static prescreen traffic (analysis layer): queries discharged by
    # dataflow facts before ever reaching the cache or the solver, plus
    # lint diagnostics from the pre-verification gate.
    prescreen_hits: int = 0
    prescreen_misses: int = 0
    lint_errors: int = 0
    lint_warnings: int = 0
    # Certification traffic (certify mode): UNSAT answers whose proofs the
    # independent checker accepted vs rejected, and core literals seen.
    certified_unsat: int = 0
    cert_failures: int = 0
    core_lits: int = 0
    # E-graph traffic (equality-saturation rung): queries the simplifier
    # discharged with zero solver calls, terms it shrank, terms it left
    # unchanged — plus aggregate per-phase wall-clock across all jobs.
    egraph_proved: int = 0
    egraph_shrunk: int = 0
    egraph_misses: int = 0
    # Memory-dataflow traffic (memdf layer): queries discharged by the
    # alias/forwarding/OOB prescreen rules (subset of prescreen_hits),
    # accesses whose encoding dropped at least one aliasing case-split,
    # and total (access x block) pairs pruned.
    memdf_rule_hits: int = 0
    memdf_narrowed: int = 0
    memdf_block_skips: int = 0
    # Relational-analysis traffic: queries discharged by the
    # R-relational-equal rules (subset of prescreen_hits), witness pairs
    # contributed to the CEGAR seeds, and certified aligned block pairs.
    relational_rule_hits: int = 0
    relational_seed_pairs: int = 0
    relational_aligned_blocks: int = 0
    phase_time_s: Dict[str, float] = field(default_factory=dict)

    def add(self, result: RefinementResult) -> None:
        self.add_verdict(result.verdict, result.elapsed_s)
        for phase, seconds in getattr(result, "phase_times", {}).items():
            self.phase_time_s[phase] = self.phase_time_s.get(phase, 0.0) + seconds
        for cert in getattr(result, "certificates", ()):
            if cert.valid:
                self.certified_unsat += 1
            else:
                self.cert_failures += 1
            self.core_lits += len(cert.core)

    def add_verdict(self, verdict: Verdict, elapsed_s: float = 0.0) -> None:
        """Count one outcome; used directly when replaying journal entries."""
        self.total_time_s += elapsed_s
        if verdict is Verdict.CORRECT:
            self.correct += 1
        elif verdict is Verdict.INCORRECT:
            self.incorrect += 1
        elif verdict is Verdict.TIMEOUT:
            self.timeout += 1
        elif verdict is Verdict.OOM:
            self.oom += 1
        elif verdict is Verdict.APPROX:
            self.approx += 1
        elif verdict is Verdict.CRASH:
            self.crash += 1
        elif verdict is Verdict.SOLVER_UNSOUND:
            self.solver_unsound += 1
        else:
            self.unsupported += 1

    @property
    def qcache_hit_rate(self) -> float:
        total = self.qcache_hits + self.qcache_misses
        return self.qcache_hits / total if total else 0.0

    @property
    def prescreen_hit_rate(self) -> float:
        total = self.prescreen_hits + self.prescreen_misses
        return self.prescreen_hits / total if total else 0.0

    @property
    def analyzed(self) -> int:
        return (
            self.correct
            + self.incorrect
            + self.timeout
            + self.oom
            + self.unsupported
            + self.approx
            + self.crash
            + self.solver_unsound
        )

    def row(self) -> Dict[str, object]:
        return {
            "pairs": self.analyzed + self.skipped_unchanged,
            "diff": self.analyzed,
            "correct": self.correct,
            "incorrect": self.incorrect,
            "timeout": self.timeout,
            "oom": self.oom,
            "crash": self.crash,
            "solver_unsound": self.solver_unsound,
            "unsupported": self.unsupported + self.approx,
            "time_s": round(self.total_time_s, 2),
        }


@dataclass
class ValidationReport:
    records: List[ValidationRecord] = field(default_factory=list)
    tally: Tally = field(default_factory=Tally)

    def add(self, record: ValidationRecord) -> None:
        self.records.append(record)
        self.tally.add(record.result)

    def failures(self) -> List[ValidationRecord]:
        return [
            r for r in self.records if r.result.verdict is Verdict.INCORRECT
        ]

    def summary(self) -> str:
        t = self.tally
        text = (
            f"{t.analyzed} analyzed ({t.skipped_unchanged} unchanged skipped): "
            f"{t.correct} correct, {t.incorrect} incorrect, "
            f"{t.timeout} timeout, {t.oom} OOM, {t.crash} crash, "
            f"{t.unsupported + t.approx} unsupported/approx "
            f"[{t.total_time_s:.1f}s]"
        )
        if t.solver_unsound:
            text += f" [SOLVER UNSOUND: {t.solver_unsound}]"
        if t.certified_unsat or t.cert_failures:
            text += (
                f" [certified: {t.certified_unsat} UNSAT proofs accepted, "
                f"{t.cert_failures} rejected, {t.core_lits} core lits]"
            )
        if t.qcache_hits or t.qcache_misses:
            text += (
                f" [query cache: {t.qcache_hits} hits / "
                f"{t.qcache_misses} misses, {t.qcache_hit_rate:.0%}]"
            )
        if t.qcache_load_entries or t.qcache_load_bytes or t.qcache_evictions:
            text += (
                f" [cache tier: {t.qcache_load_entries} entries / "
                f"{t.qcache_load_bytes} bytes loaded, "
                f"{t.qcache_evictions} evicted]"
            )
        if t.prescreen_hits or t.prescreen_misses:
            text += (
                f" [prescreen: {t.prescreen_hits} discharged / "
                f"{t.prescreen_misses} passed on, {t.prescreen_hit_rate:.0%}]"
            )
        if t.egraph_proved or t.egraph_shrunk or t.egraph_misses:
            text += (
                f" [egraph: {t.egraph_proved} proved, "
                f"{t.egraph_shrunk} shrunk, {t.egraph_misses} unchanged]"
            )
        if t.memdf_rule_hits or t.memdf_narrowed or t.memdf_block_skips:
            text += (
                f" [memdf: {t.memdf_rule_hits} rule hits, "
                f"{t.memdf_narrowed} accesses narrowed, "
                f"{t.memdf_block_skips} block case-splits pruned]"
            )
        if (
            t.relational_rule_hits
            or t.relational_seed_pairs
            or t.relational_aligned_blocks
        ):
            text += (
                f" [relational: {t.relational_rule_hits} rule hits, "
                f"{t.relational_seed_pairs} seed pairs, "
                f"{t.relational_aligned_blocks} aligned blocks]"
            )
        if t.phase_time_s:
            phases = ", ".join(
                f"{k}={v:.2f}s"
                for k, v in sorted(t.phase_time_s.items())
            )
            text += f" [phases: {phases}]"
        if t.lint_errors or t.lint_warnings:
            text += (
                f" [lint: {t.lint_errors} errors, {t.lint_warnings} warnings]"
            )
        return text
