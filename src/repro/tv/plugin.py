"""The opt/clang plugin analogue: validate every pass of a pipeline.

Implements the workflow of §8.2: snapshot the IR, run one (unmodified)
pass, translate both versions and check refinement.  Includes the two
plugin-level optimizations the paper describes:

* skip validation entirely when a pass reports no change (§8.1), and
* *batching* (§8.4): validate the composition of several passes at once
  (faster; slight risk of masking a bug that a later pass un-does).

Every pair check runs inside the fault-tolerant harness: a crash in the
parser/encoder/solver is contained to a ``CRASH`` record for that pair,
and TIMEOUT/OOM outcomes are optionally retried down a degradation
ladder (§8.3's reduced-settings practice, automated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.harness.degrade import DegradationLadder
from repro.harness.isolation import run_verification_job
from repro.ir.module import Module
from repro.opt.passmanager import PassManager, PassRun
from repro.refinement.check import VerifyOptions
from repro.tv.report import ValidationRecord, ValidationReport


@dataclass
class TvPlugin:
    """Validates a pipeline over a module, pass by pass."""

    options: VerifyOptions = field(default_factory=VerifyOptions)
    batch: int = 1  # validate every N changed passes as one step
    skip_unchanged: bool = True
    # Retry policy for TIMEOUT/OOM pairs; None disables degraded retries.
    ladder: Optional[DegradationLadder] = None

    def validate(
        self, module: Module, pipeline: List[str], pass_options: Optional[dict] = None
    ) -> ValidationReport:
        report = ValidationReport()
        manager = PassManager(list(pipeline), pass_options or {})
        runs = manager.run(module)
        # Group runs per function, preserving order.
        by_function: Dict[str, List[PassRun]] = {}
        for run in runs:
            by_function.setdefault(run.function, []).append(run)
        for fn_name, fn_runs in by_function.items():
            self._validate_function(fn_name, fn_runs, report)
        return report

    def _validate_function(
        self, fn_name: str, runs: List[PassRun], report: ValidationReport
    ) -> None:
        pending_before: Optional[Module] = None
        pending_names: List[str] = []
        changed_count = 0
        for run in runs:
            if self.skip_unchanged and not run.changed and pending_before is None:
                report.tally.skipped_unchanged += 1
                continue
            if pending_before is None:
                pending_before = run.before
            pending_names.append(run.pass_name)
            if run.changed:
                changed_count += 1
            if changed_count >= self.batch:
                self._check(
                    fn_name, pending_names, pending_before, run.after, report
                )
                pending_before = None
                pending_names = []
                changed_count = 0
        if pending_before is not None and changed_count:
            self._check(
                fn_name, pending_names, pending_before, runs[-1].after, report
            )

    def _check(
        self,
        fn_name: str,
        pass_names: List[str],
        before: Module,
        after: Module,
        report: ValidationReport,
    ) -> None:
        src = before.get_function(fn_name)
        tgt = after.get_function(fn_name)
        if src is None or tgt is None:
            return
        result = run_verification_job(
            src, tgt, before, after, self.options, ladder=self.ladder
        )
        report.add(
            ValidationRecord(fn_name, "+".join(pass_names), result)
        )


def validate_pipeline(
    module: Module,
    pipeline: List[str],
    options: Optional[VerifyOptions] = None,
    pass_options: Optional[dict] = None,
    batch: int = 1,
    ladder: Optional[DegradationLadder] = None,
) -> ValidationReport:
    """Run ``pipeline`` on a copy of ``module`` and validate every step.

    This is the `opt -tv` / `alivecc` entry point: the input module is
    not modified.
    """
    plugin = TvPlugin(options or VerifyOptions(), batch=batch, ladder=ladder)
    return plugin.validate(module.clone(), pipeline, pass_options)
