"""Translation-validation tools (§8.1).

* :mod:`repro.tv.plugin` — validate a pass pipeline, pass by pass, with
  the skip-unchanged optimization and optional batching (§8.4);
* :mod:`repro.tv.alive_tv` — the ``alive-tv`` standalone tool: check
  refinement between the functions of two IR files/modules;
* :mod:`repro.tv.report` — result aggregation used by the evaluation.
"""

from repro.tv.alive_tv import validate_modules, validate_texts
from repro.tv.plugin import TvPlugin, validate_pipeline

__all__ = [
    "validate_modules",
    "validate_texts",
    "TvPlugin",
    "validate_pipeline",
]
