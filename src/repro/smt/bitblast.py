"""Tseitin bit-blasting of SMT terms into CNF.

Every boolean term maps to one SAT literal; every bitvector term maps to
a list of SAT literals, LSB first.  Gates are hash-consed so shared
sub-DAGs produce shared circuitry.  Division and remainder are encoded
relationally (fresh quotient/remainder variables constrained by the
division algorithm), which is equisatisfiable and far smaller than a
restoring-divider circuit.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Tuple

from repro.sat.solver import SatSolver
from repro.smt.terms import Term


class BitBlaster:
    """Incrementally blasts terms into a :class:`SatSolver`."""

    def __init__(self, solver: SatSolver) -> None:
        self.solver = solver
        self._true = solver.new_var()
        solver.add_clause([self._true])
        self._bool_cache: Dict[Term, int] = {}
        self._bv_cache: Dict[Term, List[int]] = {}
        self._gate_cache: Dict[Tuple, int] = {}
        # name -> list of literals (bitvector) or single literal (bool)
        self.var_bits: Dict[str, object] = {}

    # -- instrumentation ------------------------------------------------------
    @property
    def num_gates(self) -> int:
        """Distinct Tseitin gates emitted so far.

        The incremental-CEGAR path re-checks one persistent blast under
        assumption literals; this counter is how tests and benchmarks see
        that repeat rounds add no new circuitry.
        """
        return len(self._gate_cache)

    @property
    def num_blasted_terms(self) -> int:
        return len(self._bool_cache) + len(self._bv_cache)

    def cnf_stats(self) -> Dict[str, int]:
        """Size of the Tseitin CNF built so far.

        Benchmarks compare these across configurations (e.g. with and
        without the e-graph simplifier) to attribute CNF shrinkage.
        """
        return {
            "vars": int(getattr(self.solver, "num_vars", 0)),
            "clauses": int(
                getattr(self.solver, "num_clauses", 0)
                or len(getattr(self.solver, "clauses", ()) or ())
            ),
            "gates": self.num_gates,
            "terms": self.num_blasted_terms,
        }

    def certificate_digest(self) -> str:
        """Content hash of the CNF + variable map a certificate is about.

        Hashes the name -> SAT-literal map and the input-clause stream of
        the attached proof log (when one is active), so a certificate is
        pinned to the exact CNF the UNSAT claim was made for — replaying
        it against a different blast of "the same" query is detectable.
        """
        h = hashlib.sha256()
        for name in sorted(self.var_bits):
            bits = self.var_bits[name]
            encoded = bits if isinstance(bits, int) else list(bits)
            h.update(json.dumps([name, encoded]).encode("utf-8"))
        h.update(str(self.solver.num_vars).encode("utf-8"))
        proof = getattr(self.solver, "proof", None)
        if proof is not None:
            from repro.sat.proof import INPUT

            for tag, lits in proof.events:
                if tag == INPUT:
                    h.update(json.dumps(list(lits)).encode("utf-8"))
        return h.hexdigest()

    # -- primitive literals -------------------------------------------------
    @property
    def lit_true(self) -> int:
        return self._true

    @property
    def lit_false(self) -> int:
        return -self._true

    def _const_lit(self, value: bool) -> int:
        return self._true if value else -self._true

    def _is_const(self, lit: int) -> bool:
        return lit == self._true or lit == -self._true

    # -- gates ---------------------------------------------------------------
    def gate_and(self, lits: List[int]) -> int:
        out: List[int] = []
        for lit in lits:
            if lit == -self._true:
                return -self._true
            if lit == self._true:
                continue
            if -lit in out:
                return -self._true
            if lit not in out:
                out.append(lit)
        if not out:
            return self._true
        if len(out) == 1:
            return out[0]
        key = ("and", tuple(sorted(out)))
        cached = self._gate_cache.get(key)
        if cached is not None:
            return cached
        g = self.solver.new_var()
        for lit in out:
            self.solver.add_clause([-g, lit])
        self.solver.add_clause([g] + [-lit for lit in out])
        self._gate_cache[key] = g
        return g

    def gate_or(self, lits: List[int]) -> int:
        return -self.gate_and([-lit for lit in lits])

    def gate_xor(self, a: int, b: int) -> int:
        if a == self._true:
            return -b
        if a == -self._true:
            return b
        if b == self._true:
            return -a
        if b == -self._true:
            return a
        if a == b:
            return -self._true
        if a == -b:
            return self._true
        key = ("xor", (a, b) if a < b else (b, a))
        cached = self._gate_cache.get(key)
        if cached is not None:
            return cached
        g = self.solver.new_var()
        self.solver.add_clause([-g, a, b])
        self.solver.add_clause([-g, -a, -b])
        self.solver.add_clause([g, -a, b])
        self.solver.add_clause([g, a, -b])
        self._gate_cache[key] = g
        return g

    def gate_ite(self, c: int, t: int, e: int) -> int:
        if c == self._true:
            return t
        if c == -self._true:
            return e
        if t == e:
            return t
        if t == self._true and e == -self._true:
            return c
        if t == -self._true and e == self._true:
            return -c
        if t == self._true:
            return self.gate_or([c, e])
        if t == -self._true:
            return self.gate_and([-c, e])
        if e == self._true:
            return self.gate_or([-c, t])
        if e == -self._true:
            return self.gate_and([c, t])
        key = ("ite", (c, t, e))
        cached = self._gate_cache.get(key)
        if cached is not None:
            return cached
        g = self.solver.new_var()
        self.solver.add_clause([-g, -c, t])
        self.solver.add_clause([-g, c, e])
        self.solver.add_clause([g, -c, -t])
        self.solver.add_clause([g, c, -e])
        self._gate_cache[key] = g
        return g

    def gate_iff(self, a: int, b: int) -> int:
        return -self.gate_xor(a, b)

    def gate_maj(self, a: int, b: int, c: int) -> int:
        return self.gate_or(
            [self.gate_and([a, b]), self.gate_and([a, c]), self.gate_and([b, c])]
        )

    # -- arithmetic circuits ---------------------------------------------------
    def _add_bits(self, a: List[int], b: List[int], carry_in: int) -> List[int]:
        out = []
        carry = carry_in
        for x, y in zip(a, b):
            s = self.gate_xor(self.gate_xor(x, y), carry)
            carry = self.gate_maj(x, y, carry)
            out.append(s)
        return out

    def _neg_bits(self, a: List[int]) -> List[int]:
        zeros = [-self._true] * len(a)
        return self._add_bits(zeros, [-x for x in a], self._true)

    def _mul_bits(self, a: List[int], b: List[int]) -> List[int]:
        w = len(a)
        acc = [-self._true] * w
        for i in range(w):
            bi = b[i]
            if bi == -self._true:
                continue
            addend = [-self._true] * i + [self.gate_and([bi, a[j]]) for j in range(w - i)]
            acc = self._add_bits(acc, addend, -self._true)
        return acc

    def _ult_bits(self, a: List[int], b: List[int]) -> int:
        lt = -self._true
        for x, y in zip(a, b):  # LSB to MSB: later bits dominate
            lt = self.gate_ite(self.gate_xor(x, y), self.gate_and([-x, y]), lt)
        return lt

    def _eq_bits(self, a: List[int], b: List[int]) -> int:
        return self.gate_and([self.gate_iff(x, y) for x, y in zip(a, b)])

    def _shift_bits(self, a: List[int], amount: List[int], kind: str) -> List[int]:
        """Barrel shifter.  kind in {'shl', 'lshr', 'ashr'}."""
        w = len(a)
        bits = list(a)
        fill = a[-1] if kind == "ashr" else -self._true
        stage = 0
        while (1 << stage) < w:
            sh = 1 << stage
            c = amount[stage]
            new_bits = []
            for i in range(w):
                if kind == "shl":
                    src = bits[i - sh] if i - sh >= 0 else -self._true
                else:
                    src = bits[i + sh] if i + sh < w else fill
                new_bits.append(self.gate_ite(c, src, bits[i]))
            bits = new_bits
            stage += 1
        # Shift amounts >= w: result is 0 (shl/lshr) or sign fill (ashr).
        max_stage_bits = amount[stage:]
        # Also handle amounts within [w, 2^stage) representable below `stage`.
        big = self.gate_or(list(max_stage_bits))
        if (1 << stage) > w:
            # amounts in [w, 2^stage) use low bits only; compare amount >= w.
            wconst = [
                self._const_lit(bool((w >> i) & 1)) for i in range(len(amount))
            ]
            big = self.gate_or([big, -self._ult_bits(amount, wconst)])
        out = [self.gate_ite(big, fill, bit) for bit in bits]
        return out

    # -- term translation -----------------------------------------------------
    def blast_bool(self, term: Term) -> int:
        cached = self._bool_cache.get(term)
        if cached is not None:
            return cached
        lit = self._blast_bool(term)
        self._bool_cache[term] = lit
        return lit

    def _blast_bool(self, term: Term) -> int:
        op = term.op
        if op == "const":
            return self._const_lit(term.payload)
        if op == "var":
            lit = self.var_bits.get(term.payload)
            if lit is None:
                lit = self.solver.new_var()
                self.var_bits[term.payload] = lit
            assert isinstance(lit, int)
            return lit
        if op == "not":
            return -self.blast_bool(term.args[0])
        if op == "and":
            return self.gate_and([self.blast_bool(a) for a in term.args])
        if op == "or":
            return self.gate_or([self.blast_bool(a) for a in term.args])
        if op == "xor":
            return self.gate_xor(self.blast_bool(term.args[0]), self.blast_bool(term.args[1]))
        if op == "ite":
            return self.gate_ite(
                self.blast_bool(term.args[0]),
                self.blast_bool(term.args[1]),
                self.blast_bool(term.args[2]),
            )
        if op == "bveq":
            return self._eq_bits(self.blast_bv(term.args[0]), self.blast_bv(term.args[1]))
        if op == "bvult":
            return self._ult_bits(self.blast_bv(term.args[0]), self.blast_bv(term.args[1]))
        if op == "bvslt":
            a = self.blast_bv(term.args[0])
            b = self.blast_bv(term.args[1])
            # Flip sign bits, then unsigned compare.
            a2 = a[:-1] + [-a[-1]]
            b2 = b[:-1] + [-b[-1]]
            return self._ult_bits(a2, b2)
        raise NotImplementedError(f"bool op {op}")

    def blast_bv(self, term: Term) -> List[int]:
        cached = self._bv_cache.get(term)
        if cached is not None:
            return cached
        bits = self._blast_bv(term)
        assert len(bits) == term.width, (term.op, len(bits), term.width)
        self._bv_cache[term] = bits
        return bits

    def _blast_bv(self, term: Term) -> List[int]:
        op = term.op
        w = term.width
        if op == "const":
            return [self._const_lit(bool((term.payload >> i) & 1)) for i in range(w)]
        if op == "var":
            bits = self.var_bits.get(term.payload)
            if bits is None:
                bits = [self.solver.new_var() for _ in range(w)]
                self.var_bits[term.payload] = bits
            assert isinstance(bits, list) and len(bits) == w
            return list(bits)
        if op == "bvite":
            c = self.blast_bool(term.args[0])
            t = self.blast_bv(term.args[1])
            e = self.blast_bv(term.args[2])
            return [self.gate_ite(c, x, y) for x, y in zip(t, e)]
        if op == "bvnot":
            return [-x for x in self.blast_bv(term.args[0])]
        if op == "bvneg":
            return self._neg_bits(self.blast_bv(term.args[0]))
        if op == "sext":
            bits = self.blast_bv(term.args[0])
            return bits + [bits[-1]] * (w - len(bits))
        if op == "concat":
            hi = self.blast_bv(term.args[0])
            lo = self.blast_bv(term.args[1])
            return lo + hi
        if op == "extract":
            hi_i, lo_i = term.payload
            bits = self.blast_bv(term.args[0])
            return bits[lo_i : hi_i + 1]
        if op in ("bvadd", "bvsub", "bvmul", "bvand", "bvor", "bvxor"):
            a = self.blast_bv(term.args[0])
            b = self.blast_bv(term.args[1])
            if op == "bvadd":
                return self._add_bits(a, b, -self._true)
            if op == "bvsub":
                return self._add_bits(a, [-x for x in b], self._true)
            if op == "bvmul":
                return self._mul_bits(a, b)
            if op == "bvand":
                return [self.gate_and([x, y]) for x, y in zip(a, b)]
            if op == "bvor":
                return [self.gate_or([x, y]) for x, y in zip(a, b)]
            return [self.gate_xor(x, y) for x, y in zip(a, b)]
        if op in ("bvshl", "bvlshr", "bvashr"):
            a = self.blast_bv(term.args[0])
            amount = self.blast_bv(term.args[1])
            kind = {"bvshl": "shl", "bvlshr": "lshr", "bvashr": "ashr"}[op]
            return self._shift_bits(a, amount, kind)
        if op in ("bvudiv", "bvurem"):
            return self._blast_udiv(term)
        if op in ("bvsdiv", "bvsrem"):
            return self._blast_sdiv(term)
        raise NotImplementedError(f"bv op {op}")

    def _div_pair(self, a_bits: List[int], b_bits: List[int]) -> Tuple[List[int], List[int]]:
        """Fresh (q, r) constrained so that a = q*b + r with r < b (b != 0)."""
        w = len(a_bits)
        q = [self.solver.new_var() for _ in range(w)]
        r = [self.solver.new_var() for _ in range(w)]
        ext = [-self._true] * w
        a2 = a_bits + ext
        b2 = b_bits + ext
        q2 = q + ext
        r2 = r + ext
        prod = self._mul_bits(q2, b2)
        total = self._add_bits(prod, r2, -self._true)
        eq = self._eq_bits(total, a2)
        rem_lt = self._ult_bits(r, b_bits)
        b_zero = self._eq_bits(b_bits, [-self._true] * w)
        # b != 0  =>  a == q*b + r  and  r < b
        self.solver.add_clause([b_zero, eq])
        self.solver.add_clause([b_zero, rem_lt])
        # b == 0  =>  q == all-ones, r == a   (SMT-LIB semantics)
        for bit in q:
            self.solver.add_clause([-b_zero, bit])
        for rb, ab in zip(r, a_bits):
            self.solver.add_clause([-b_zero, -rb, ab])
            self.solver.add_clause([-b_zero, rb, -ab])
        return q, r

    def _blast_udiv(self, term: Term) -> List[int]:
        # Share q/r between udiv and urem of the same operands.
        a_t, b_t = term.args
        key = ("udivrem", a_t, b_t)
        pair = self._gate_cache.get(key)
        if pair is None:
            a = self.blast_bv(a_t)
            b = self.blast_bv(b_t)
            pair = self._div_pair(a, b)
            self._gate_cache[key] = pair
        q, r = pair  # type: ignore[misc]
        return list(q) if term.op == "bvudiv" else list(r)

    def _blast_sdiv(self, term: Term) -> List[int]:
        a_t, b_t = term.args
        key = ("sdivrem", a_t, b_t)
        pair = self._gate_cache.get(key)
        if pair is None:
            a = self.blast_bv(a_t)
            b = self.blast_bv(b_t)
            sa, sb = a[-1], b[-1]
            abs_a = [self.gate_ite(sa, n, p) for n, p in zip(self._neg_bits(a), a)]
            abs_b = [self.gate_ite(sb, n, p) for n, p in zip(self._neg_bits(b), b)]
            q_u, r_u = self._div_pair(abs_a, abs_b)
            q_sign = self.gate_xor(sa, sb)
            q = [self.gate_ite(q_sign, n, p) for n, p in zip(self._neg_bits(q_u), q_u)]
            r = [self.gate_ite(sa, n, p) for n, p in zip(self._neg_bits(r_u), r_u)]
            # Division by zero: q = all-ones, r = a (match term-level folding).
            w = len(a)
            b_zero = self._eq_bits(b, [-self._true] * w)
            q = [self.gate_ite(b_zero, self._true, bit) for bit in q]
            r = [self.gate_ite(b_zero, ab, bit) for ab, bit in zip(a, r)]
            pair = (q, r)
            self._gate_cache[key] = pair
        q, r = pair  # type: ignore[misc]
        return list(q) if term.op == "bvsdiv" else list(r)

    # -- assertions ------------------------------------------------------------
    def assert_term(self, term: Term) -> None:
        """Assert a boolean term as a top-level constraint."""
        assert term.is_bool
        lit = self.blast_bool(term)
        self.solver.add_clause([lit])
