"""CEGAR solver for exists-forall (2QBF-over-bitvectors) queries.

The refinement condition of §5.2, once negated for the solver, has the
shape::

    exists O .  phi(O)  and  forall N . not psi(O, N)

where ``O`` collects the outer variables (inputs, target outputs, target
non-determinism) and ``N`` the source-side non-determinism (undef / freeze
/ unknown-call variables).  We solve it by counterexample-guided
instantiation:

1. keep a finite set S of instantiations for N (started at all-zeros);
2. solve ``phi(O) and AND_{n in S} not psi(O, n)``;
   - UNSAT: the original query is UNSAT (sound: S under-constrains)
     => refinement HOLDS;
3. from a model O*, solve ``psi(O*, N)`` over N alone;
   - UNSAT: O* is a genuine witness => refinement FAILS with model O*;
   - SAT with model n*: add n* to S and repeat.

Termination is guaranteed on bounded bitvectors (each n* removes at least
one candidate O*), and both verdicts are sound — the property Alive2
requires for its zero-false-alarm goal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence

from repro.harness.faults import maybe_fault
from repro.sat.proof import Certificate
from repro.smt.solver import CheckResult, ResourceLimits, SmtSolver
from repro.smt.terms import (
    Term,
    bool_and,
    bool_not,
    bool_var,
    bv_const,
    bv_eq,
    bv_var,
    on_reset,
    substitute,
    term_vars,
)


class EFResult(Enum):
    """Outcome of an exists-forall query."""

    UNSAT = "unsat"  # no witness: the negated refinement query fails to hold
    SAT = "sat"  # witness found (counterexample to refinement)
    TIMEOUT = "timeout"
    MEMOUT = "memout"


@dataclass
class EFOutcome:
    result: EFResult
    model: Dict[str, object] = field(default_factory=dict)
    iterations: int = 0
    # Certify mode: one certificate per UNSAT answer given by either the
    # outer or the (persistent) inner solver, chronological.
    certificates: List[Certificate] = field(default_factory=list)
    # Names of the existential variables in the inner solver's unsat core
    # when a candidate was confirmed (result SAT): which pinned values the
    # "source cannot match this" proof actually depended on.
    core_names: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class QuantVar:
    """A declared variable: bitvector if width >= 1, boolean if width == 0."""

    name: str
    width: int


def _const_for(var: QuantVar, value: object) -> Term:
    from repro.smt.terms import FALSE, TRUE

    if var.width == 0:
        return TRUE if value else FALSE
    return bv_const(int(value), var.width)


def solve_exists_forall(
    phi: Term,
    psi: Term,
    forall_vars: Sequence[QuantVar],
    limits: Optional[ResourceLimits] = None,
    max_iterations: int = 64,
    symbolic_seeds: Sequence[Dict[str, Term]] = (),
    certify: bool = False,
    simplify: Optional[Callable[[Term], Term]] = None,
) -> EFOutcome:
    """Solve ``exists O. phi(O) and forall N. not psi(O, N)``.

    ``forall_vars`` lists N; every other free variable is existential.
    ``psi`` is the formula whose universal falsification is required
    (for refinement: "the source can produce this output").

    ``symbolic_seeds`` are instantiations of N by *terms over the outer
    variables*; they are asserted up front.  This is the CEGAR analogue
    of E-matching: refinement queries where the source's undef variables
    must track a target expression converge in one round instead of
    enumerating the value space (cf. the instantiation heuristics of
    §3.3/§3.7 of the Alive2 paper).

    ``simplify``, when given, must map a formula to an *equivalent* one
    (the e-graph rung passes its certified-rule extraction); it is
    applied to every instantiated ``not psi`` assertion so the outer
    solver bit-blasts the minimized form.
    """

    def _assert_not_psi(solver: SmtSolver, mapping: Dict[str, Term]) -> None:
        clause = bool_not(substitute(psi, mapping))
        if simplify is not None:
            clause = simplify(clause)
        solver.assert_term(clause)
    # Fault-injection site for solver-level faults (kind="unsound" arms
    # the learned-clause corruption in repro.sat.solver from here, so the
    # plain SAT probes of the refinement sequence are unaffected).
    maybe_fault("ef")
    deadline = None
    if limits is not None and limits.timeout_s is not None:
        deadline = time.monotonic() + limits.timeout_s

    def remaining() -> Optional[ResourceLimits]:
        if limits is None:
            return None
        timeout = None
        if deadline is not None:
            timeout = max(0.0, deadline - time.monotonic())
        return ResourceLimits(
            timeout_s=timeout,
            max_conflicts=limits.max_conflicts,
            max_learned_lits=limits.max_learned_lits,
        )

    forall_names = {v.name for v in forall_vars}
    psi_vars = term_vars(psi)
    relevant_forall = [v for v in forall_vars if v.name in psi_vars]

    # Instantiation set; all-zeros is the seed.
    instantiations: List[Dict[str, object]] = [
        {v.name: 0 for v in relevant_forall}
    ]
    tried = {tuple(sorted(instantiations[0].items()))}

    # Randomized initial polarity diversifies candidate models, avoiding
    # the pathological enumeration order (e.g. all-even sums first) that a
    # fixed false-polarity heuristic produces.
    outer = SmtSolver(polarity_seed=0xA11CE, certify=certify)
    outer.assert_term(phi)
    for inst in instantiations:
        _assert_not_psi(
            outer,
            {v.name: _const_for(v, inst[v.name]) for v in relevant_forall},
        )
    for seed in symbolic_seeds:
        # Complete partial seeds with zeros: an instantiation must cover
        # every universal variable or the assertion would be unsound.
        mapping = {
            v.name: seed.get(v.name, _const_for(v, 0)) for v in relevant_forall
        }
        if not any(v.name in seed for v in relevant_forall):
            continue
        _assert_not_psi(outer, mapping)

    iterations = 0
    inner: Optional[SmtSolver] = None  # persistent across CEGAR rounds

    def certs() -> List[Certificate]:
        bundle = list(outer.certificates)
        if inner is not None:
            bundle.extend(inner.certificates)
        return bundle

    while True:
        iterations += 1
        if deadline is not None and time.monotonic() > deadline:
            return EFOutcome(EFResult.TIMEOUT, iterations=iterations)
        if iterations > max_iterations:
            return EFOutcome(EFResult.TIMEOUT, iterations=iterations)

        if iterations > 1:
            # Diversify candidate models: phase saving otherwise walks the
            # value space in tiny steps (e.g. even sums only), turning the
            # instantiation loop into plain enumeration.
            outer.randomize_polarity()
        res = outer.check(remaining())
        if res is CheckResult.UNSAT:
            return EFOutcome(
                EFResult.UNSAT, iterations=iterations, certificates=certs()
            )
        if res is CheckResult.TIMEOUT:
            return EFOutcome(EFResult.TIMEOUT, iterations=iterations)
        if res is CheckResult.MEMOUT:
            return EFOutcome(EFResult.MEMOUT, iterations=iterations)

        candidate = outer.model_env()
        # Fix every existential variable appearing in psi to its model value
        # (missing ones are unconstrained; 0 is as good as any).  The inner
        # solver is persistent: psi is blasted once, each round only adds
        # assumption literals pinning the existentials to the candidate, so
        # clauses learned refuting one candidate carry over to the next.
        if inner is None:
            inner = SmtSolver(certify=certify)
            inner.assert_term(psi)
        assumptions: List[Term] = []
        for name in psi_vars:
            if name in forall_names:
                continue
            width = _var_width(psi, name)
            value = candidate.get(name, 0)
            if width == 0:
                var = bool_var(name)
                assumptions.append(var if value else bool_not(var))
            else:
                assumptions.append(
                    bv_eq(bv_var(name, width), bv_const(int(value), width))
                )
        inner_res = inner.check(remaining(), assumptions=assumptions)
        if inner_res is CheckResult.UNSAT:
            # The unsat core names which pinned existentials the "source
            # cannot reproduce this candidate" proof actually used.
            core_names: List[str] = []
            for term in inner.last_core:
                for name in sorted(term_vars(term)):
                    if name not in core_names:
                        core_names.append(name)
            return EFOutcome(
                EFResult.SAT,
                model=candidate,
                iterations=iterations,
                certificates=certs(),
                core_names=core_names,
            )
        if inner_res is CheckResult.TIMEOUT:
            return EFOutcome(EFResult.TIMEOUT, iterations=iterations)
        if inner_res is CheckResult.MEMOUT:
            return EFOutcome(EFResult.MEMOUT, iterations=iterations)

        inner_model = inner.model_env()
        inst = {
            v.name: inner_model.get(v.name, 0) for v in relevant_forall
        }
        key = tuple(sorted(inst.items()))
        if key in tried:
            # The instantiation did not eliminate the candidate; block the
            # candidate itself to guarantee progress.
            blockers = []
            for name, value in candidate.items():
                if name in forall_names:
                    continue
                width = _var_width(phi, name) or _var_width(psi, name)
                if width is None:
                    continue
                if width == 0:
                    var = bool_var(name)
                    blockers.append(var if value else bool_not(var))
                else:
                    blockers.append(bv_eq(bv_var(name, width), bv_const(int(value), width)))
            if not blockers:
                return EFOutcome(EFResult.TIMEOUT, iterations=iterations)
            outer.assert_term(bool_not(bool_and(*blockers)))
            continue
        tried.add(key)
        _assert_not_psi(
            outer,
            {v.name: _const_for(v, inst[v.name]) for v in relevant_forall},
        )


# Keyed by the interned term itself, NOT id(term): an id can be recycled
# after reset_interning() frees the old object, which would alias a stale
# width onto an unrelated term.  Holding the term pins it alive, and the
# on_reset hook drops the cache together with the intern table.
_WIDTH_CACHE: Dict[tuple, Optional[int]] = {}


@on_reset
def _clear_width_cache() -> None:
    _WIDTH_CACHE.clear()


def _var_width(term: Term, name: str) -> Optional[int]:
    """Find the width of variable ``name`` in ``term`` (None if absent)."""
    key = (term, name)
    if key in _WIDTH_CACHE:
        return _WIDTH_CACHE[key]
    stack = [term]
    seen = set()
    width: Optional[int] = None
    while stack:
        t = stack.pop()
        if id(t) in seen:
            continue
        seen.add(id(t))
        if t.op == "var" and t.payload == name:
            width = t.width
            break
        stack.extend(t.args)
    _WIDTH_CACHE[key] = width
    return width
