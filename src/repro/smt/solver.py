"""Quantifier-free SMT solver: terms -> CNF -> CDCL, with resource limits.

This is the layer the refinement checker talks to.  It mirrors the part
of Z3's interface that Alive2 uses: assert boolean formulas, check
satisfiability under a timeout and a memory cap, and extract models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional

from repro.sat.checker import check_events
from repro.sat.proof import Certificate, ProofLog
from repro.sat.solver import Budget, SatResult, SatSolver
from repro.smt.terms import Term, term_vars


class CheckResult(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    TIMEOUT = "timeout"
    MEMOUT = "memout"


@dataclass
class SolverTelemetry:
    """Process-wide counters over every :meth:`SmtSolver.check` call.

    The query cache's contract is that a hit skips the solver *entirely*;
    these counters are how tests and benchmarks observe that, and how the
    engine reports per-worker solver load.
    """

    checks: int = 0
    sat: int = 0
    unsat: int = 0
    indefinite: int = 0  # timeout / memout
    # Certification traffic (certify mode): UNSAT answers whose proof the
    # independent checker accepted / rejected, UNSAT answers that went
    # unchecked (certify off), core literals over all UNSAT answers, and
    # proof sizes before/after backward trimming.
    certified: int = 0
    cert_failed: int = 0
    unchecked_unsat: int = 0
    core_lits: int = 0
    proof_lemmas: int = 0
    proof_checked: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "checks": self.checks,
            "sat": self.sat,
            "unsat": self.unsat,
            "indefinite": self.indefinite,
            "certified": self.certified,
            "cert_failed": self.cert_failed,
            "unchecked_unsat": self.unchecked_unsat,
            "core_lits": self.core_lits,
            "proof_lemmas": self.proof_lemmas,
            "proof_checked": self.proof_checked,
        }


TELEMETRY = SolverTelemetry()


def reset_telemetry() -> None:
    TELEMETRY.checks = TELEMETRY.sat = TELEMETRY.unsat = 0
    TELEMETRY.indefinite = 0
    TELEMETRY.certified = TELEMETRY.cert_failed = 0
    TELEMETRY.unchecked_unsat = TELEMETRY.core_lits = 0
    TELEMETRY.proof_lemmas = TELEMETRY.proof_checked = 0


@dataclass(frozen=True)
class ResourceLimits:
    """Per-query resource budget.

    ``timeout_s``: wall-clock limit in seconds (None = unlimited).
    ``max_conflicts``: CDCL conflict budget (a deterministic timeout proxy,
    useful for reproducible benchmarks).
    ``max_learned_lits``: cap on learned-clause literals — the out-of-memory
    proxy matching the paper's 1 GB Z3 cap.
    """

    timeout_s: Optional[float] = None
    max_conflicts: Optional[int] = None
    max_learned_lits: Optional[int] = None

    def to_budget(self) -> Budget:
        deadline = None
        if self.timeout_s is not None:
            deadline = time.monotonic() + self.timeout_s
        return Budget(
            deadline=deadline,
            max_conflicts=self.max_conflicts,
            max_learned_lits=self.max_learned_lits,
        )


class SmtSolver:
    """A one-shot (but multi-check) SMT solver instance."""

    def __init__(
        self, polarity_seed: Optional[int] = None, certify: bool = False
    ) -> None:
        from repro.smt.bitblast import BitBlaster

        self.certify = certify
        self.proof: Optional[ProofLog] = ProofLog() if certify else None
        self.sat = SatSolver(polarity_seed, proof=self.proof)
        self.blaster = BitBlaster(self.sat)
        self._assertions: List[Term] = []
        #: One entry per UNSAT answer in certify mode, chronological.
        self.certificates: List[Certificate] = []
        #: Assumption terms the last UNSAT answer depended on.
        self.last_core: List[Term] = []
        self._check_count = 0

    def randomize_polarity(self) -> None:
        self.sat.randomize_polarity()

    def assert_term(self, term: Term) -> None:
        """Add a boolean term to the assertion stack."""
        self._assertions.append(term)
        self.blaster.assert_term(term)

    @property
    def assertions(self) -> List[Term]:
        return list(self._assertions)

    def check(
        self,
        limits: Optional[ResourceLimits] = None,
        assumptions: Iterable[Term] = (),
    ) -> CheckResult:
        """Check satisfiability of the asserted formulas (plus assumptions)."""
        assumption_terms = list(assumptions)
        assumption_lits = [self.blaster.blast_bool(t) for t in assumption_terms]
        budget = limits.to_budget() if limits is not None else None
        TELEMETRY.checks += 1
        self._check_count += 1
        result = self.sat.solve(assumptions=assumption_lits, budget=budget)
        if result is SatResult.SAT:
            TELEMETRY.sat += 1
            return CheckResult.SAT
        if result is SatResult.UNSAT:
            TELEMETRY.unsat += 1
            core_lits = self.sat.unsat_core()
            TELEMETRY.core_lits += len(core_lits)
            term_by_lit: Dict[int, Term] = {}
            for lit, term in zip(assumption_lits, assumption_terms):
                term_by_lit.setdefault(lit, term)
            self.last_core = [
                term_by_lit[lit] for lit in core_lits if lit in term_by_lit
            ]
            if self.certify:
                self._certify_unsat(core_lits, assumption_lits)
            else:
                TELEMETRY.unchecked_unsat += 1
            return CheckResult.UNSAT
        TELEMETRY.indefinite += 1
        if self.sat.stats.unknown_reason == "memory":
            return CheckResult.MEMOUT
        return CheckResult.TIMEOUT

    def _certify_unsat(
        self, core_lits: List[int], assumption_lits: List[int]
    ) -> None:
        """Run the independent RUP checker over the proof so far and bundle
        the verdict into a :class:`Certificate`."""
        assert self.proof is not None
        outcome = check_events(self.proof.events, assumptions=assumption_lits)
        cert = Certificate(
            query=f"check#{self._check_count}",
            digest=self.blaster.certificate_digest(),
            valid=outcome.valid,
            reason=outcome.reason,
            lemmas=self.proof.lemmas,
            deletions=self.proof.deletions,
            checked_lemmas=outcome.checked_lemmas,
            core=tuple(core_lits),
        )
        self.certificates.append(cert)
        TELEMETRY.proof_lemmas += self.proof.lemmas
        TELEMETRY.proof_checked += outcome.checked_lemmas
        if outcome.valid:
            TELEMETRY.certified += 1
        else:
            TELEMETRY.cert_failed += 1

    def model_env(self) -> Dict[str, object]:
        """Extract {variable name: int | bool} from the last SAT model.

        Only variables that were actually bit-blasted appear; callers must
        treat missing variables as unconstrained (the partial-model property
        that §3.8 of the paper exploits for over-approximation tagging).
        """
        env: Dict[str, object] = {}
        for name, bits in self.blaster.var_bits.items():
            if isinstance(bits, int):
                env[name] = self.sat.model_value(bits)
            else:
                value = 0
                for i, lit in enumerate(bits):
                    if self.sat.model_value(lit):
                        value |= 1 << i
                env[name] = value
        return env

    def vars_in_formula(self) -> frozenset:
        """Names of variables referenced by any asserted formula."""
        names: set = set()
        for t in self._assertions:
            names |= term_vars(t)
        return frozenset(names)


def check_valid(
    formula: Term, limits: Optional[ResourceLimits] = None
) -> CheckResult:
    """Check validity of ``formula``: UNSAT of its negation means valid.

    Returns SAT if a counterexample to validity exists, UNSAT if valid.
    """
    from repro.smt.terms import bool_not

    solver = SmtSolver()
    solver.assert_term(bool_not(formula))
    return solver.check(limits)
