"""Hash-consed boolean / bitvector terms with constant folding.

Terms are immutable and interned: structurally equal terms are the same
Python object, so equality and hashing are identity-based and cheap.
Smart constructors perform constant folding and light algebraic
simplification; this mirrors the formula-shrinking described in §3.7 of
the Alive2 paper and keeps the bit-blasted CNF small.

Bitvectors are fixed-width and unsigned in representation; signed
operations interpret the two's-complement value.  Bit order is LSB-first
everywhere in this code base.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

# ---------------------------------------------------------------------------
# Term representation
# ---------------------------------------------------------------------------

_INTERN: Dict[tuple, "Term"] = {}
_FRESH_COUNTER = itertools.count()

#: Callbacks invoked by :func:`reset_interning`.  Any module that caches
#: data keyed by interned terms must register a hook here, or a recycled
#: term object could alias a stale entry after a reset.
_RESET_HOOKS: List[Callable[[], None]] = []


def on_reset(hook: Callable[[], None]) -> Callable[[], None]:
    """Register ``hook`` to run whenever the intern table is reset."""
    _RESET_HOOKS.append(hook)
    return hook


def fresh_name(prefix: str = "tmp") -> str:
    """Return a globally unique symbol name."""
    return f"{prefix}!{next(_FRESH_COUNTER)}"


def intern_size() -> int:
    """Number of live interned terms (the warm pool's memory gauge).

    Warm-pool workers keep the interned universe alive across tests to
    amortize re-interning, but reset it once this count crosses their
    high-water mark — the same :func:`reset_interning` a cold pool runs
    per test, just triggered by memory pressure instead of test count.
    """
    return len(_INTERN)


def reset_interning() -> None:
    """Clear the intern table (mainly to bound memory in long test runs).

    Also clears every term-keyed cache registered with :func:`on_reset`,
    and re-registers the canonical TRUE/FALSE singletons so boolean
    folding keeps returning the module-level objects.
    """
    _INTERN.clear()
    _SUBST_CACHE.clear()
    for hook in _RESET_HOOKS:
        hook()
    _INTERN[("const", (), 0, True)] = TRUE
    _INTERN[("const", (), 0, False)] = FALSE


class Term:
    """A boolean (``width == 0``) or bitvector (``width >= 1``) term."""

    __slots__ = ("op", "args", "width", "payload", "_hash", "_vars")

    def __init__(self, op: str, args: Tuple["Term", ...], width: int, payload):
        self.op = op
        self.args = args
        self.width = width
        self.payload = payload
        self._hash = hash((op, args, width, payload))
        self._vars: Optional[FrozenSet[str]] = None

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.op == "const":
            return f"{self.payload}:{self.width}" if self.width else str(self.payload)
        if self.op == "var":
            return str(self.payload)
        inner = " ".join(repr(a) for a in self.args)
        extra = f" {self.payload}" if self.payload is not None else ""
        return f"({self.op}{extra} {inner})"

    @property
    def is_bool(self) -> bool:
        return self.width == 0

    @property
    def is_const(self) -> bool:
        return self.op == "const"

    @property
    def value(self):
        """Constant payload (int for bitvectors, bool for booleans)."""
        assert self.op == "const"
        return self.payload


BoolTerm = Term
BvTerm = Term


def _mk(op: str, args: Tuple[Term, ...], width: int, payload=None) -> Term:
    key = (op, args, width, payload)
    term = _INTERN.get(key)
    if term is None:
        term = Term(op, args, width, payload)
        _INTERN[key] = term
    return term


TRUE: BoolTerm = _mk("const", (), 0, True)
FALSE: BoolTerm = _mk("const", (), 0, False)


def bool_const(value: bool) -> BoolTerm:
    return TRUE if value else FALSE


def bool_var(name: str) -> BoolTerm:
    return _mk("var", (), 0, name)


def bv_var(name: str, width: int) -> BvTerm:
    assert width >= 1
    return _mk("var", (), width, name)


def bv_const(value: int, width: int) -> BvTerm:
    assert width >= 1
    return _mk("const", (), width, value & ((1 << width) - 1))


def _mask(width: int) -> int:
    return (1 << width) - 1


def _to_signed(value: int, width: int) -> int:
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------


def bool_not(a: BoolTerm) -> BoolTerm:
    assert a.is_bool
    if a.is_const:
        return bool_const(not a.value)
    if a.op == "not":
        return a.args[0]
    return _mk("not", (a,), 0)


def bool_and(*terms: BoolTerm) -> BoolTerm:
    flat = []
    for t in terms:
        assert t.is_bool
        if t is FALSE:
            return FALSE
        if t is TRUE:
            continue
        if t.op == "and":
            flat.extend(t.args)
        else:
            flat.append(t)
    uniq: list[Term] = []
    seen = set()
    for t in flat:
        if t in seen:
            continue
        if bool_not(t) in seen:
            return FALSE
        seen.add(t)
        uniq.append(t)
    if not uniq:
        return TRUE
    if len(uniq) == 1:
        return uniq[0]
    return _mk("and", tuple(uniq), 0)


def bool_or(*terms: BoolTerm) -> BoolTerm:
    flat = []
    for t in terms:
        assert t.is_bool
        if t is TRUE:
            return TRUE
        if t is FALSE:
            continue
        if t.op == "or":
            flat.extend(t.args)
        else:
            flat.append(t)
    uniq: list[Term] = []
    seen = set()
    for t in flat:
        if t in seen:
            continue
        if bool_not(t) in seen:
            return TRUE
        seen.add(t)
        uniq.append(t)
    if not uniq:
        return FALSE
    if len(uniq) == 1:
        return uniq[0]
    return _mk("or", tuple(uniq), 0)


def bool_xor(a: BoolTerm, b: BoolTerm) -> BoolTerm:
    assert a.is_bool and b.is_bool
    if a.is_const:
        return bool_not(b) if a.value else b
    if b.is_const:
        return bool_not(a) if b.value else a
    if a is b:
        return FALSE
    return _mk("xor", (a, b), 0)


def bool_implies(a: BoolTerm, b: BoolTerm) -> BoolTerm:
    return bool_or(bool_not(a), b)


def bool_ite(cond: BoolTerm, then: BoolTerm, els: BoolTerm) -> BoolTerm:
    assert cond.is_bool and then.is_bool and els.is_bool
    if cond.is_const:
        return then if cond.value else els
    if then is els:
        return then
    if then is TRUE and els is FALSE:
        return cond
    if then is FALSE and els is TRUE:
        return bool_not(cond)
    if then is TRUE:
        return bool_or(cond, els)
    if then is FALSE:
        return bool_and(bool_not(cond), els)
    if els is TRUE:
        return bool_or(bool_not(cond), then)
    if els is FALSE:
        return bool_and(cond, then)
    return _mk("ite", (cond, then, els), 0)


# ---------------------------------------------------------------------------
# Bitvector arithmetic / logic
# ---------------------------------------------------------------------------


def _binop(op: str, a: BvTerm, b: BvTerm, fold) -> BvTerm:
    assert a.width == b.width and a.width >= 1, (op, a.width, b.width)
    if a.is_const and b.is_const:
        return bv_const(fold(a.value, b.value, a.width), a.width)
    return _mk(op, (a, b), a.width)


def bv_add(a: BvTerm, b: BvTerm) -> BvTerm:
    if a.is_const and a.value == 0:
        return b
    if b.is_const and b.value == 0:
        return a
    return _binop("bvadd", a, b, lambda x, y, w: (x + y) & _mask(w))


def bv_sub(a: BvTerm, b: BvTerm) -> BvTerm:
    if b.is_const and b.value == 0:
        return a
    if a is b:
        return bv_const(0, a.width)
    return _binop("bvsub", a, b, lambda x, y, w: (x - y) & _mask(w))


def bv_mul(a: BvTerm, b: BvTerm) -> BvTerm:
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return bv_const(0, a.width)
            if x.value == 1:
                return y
    return _binop("bvmul", a, b, lambda x, y, w: (x * y) & _mask(w))


def bv_udiv(a: BvTerm, b: BvTerm) -> BvTerm:
    """Unsigned division; division by zero yields all-ones (SMT-LIB)."""
    if b.is_const and b.value == 1:
        return a
    return _binop("bvudiv", a, b, lambda x, y, w: _mask(w) if y == 0 else x // y)


def bv_urem(a: BvTerm, b: BvTerm) -> BvTerm:
    return _binop("bvurem", a, b, lambda x, y, w: x if y == 0 else x % y)


def _sdiv_fold(x: int, y: int, w: int) -> int:
    if y == 0:
        return _mask(w)
    sx, sy = _to_signed(x, w), _to_signed(y, w)
    q = abs(sx) // abs(sy)
    if (sx < 0) != (sy < 0):
        q = -q
    return q & _mask(w)


def _srem_fold(x: int, y: int, w: int) -> int:
    if y == 0:
        return x
    sx, sy = _to_signed(x, w), _to_signed(y, w)
    r = abs(sx) % abs(sy)
    if sx < 0:
        r = -r
    return r & _mask(w)


def bv_sdiv(a: BvTerm, b: BvTerm) -> BvTerm:
    return _binop("bvsdiv", a, b, _sdiv_fold)


def bv_srem(a: BvTerm, b: BvTerm) -> BvTerm:
    return _binop("bvsrem", a, b, _srem_fold)


def bv_and(a: BvTerm, b: BvTerm) -> BvTerm:
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return bv_const(0, a.width)
            if x.value == _mask(a.width):
                return y
    if a is b:
        return a
    return _binop("bvand", a, b, lambda x, y, w: x & y)


def bv_or(a: BvTerm, b: BvTerm) -> BvTerm:
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return y
            if x.value == _mask(a.width):
                return bv_const(_mask(a.width), a.width)
    if a is b:
        return a
    return _binop("bvor", a, b, lambda x, y, w: x | y)


def bv_xor(a: BvTerm, b: BvTerm) -> BvTerm:
    if a is b:
        return bv_const(0, a.width)
    for x, y in ((a, b), (b, a)):
        if x.is_const and x.value == 0:
            return y
    return _binop("bvxor", a, b, lambda x, y, w: x ^ y)


def bv_not(a: BvTerm) -> BvTerm:
    if a.is_const:
        return bv_const(~a.value, a.width)
    if a.op == "bvnot":
        return a.args[0]
    return _mk("bvnot", (a,), a.width)


def bv_neg(a: BvTerm) -> BvTerm:
    if a.is_const:
        return bv_const(-a.value, a.width)
    return _mk("bvneg", (a,), a.width)


def bv_shl(a: BvTerm, b: BvTerm) -> BvTerm:
    if b.is_const:
        sh = b.value
        if sh == 0:
            return a
        if sh >= a.width:
            return bv_const(0, a.width)
        if a.is_const:
            return bv_const(a.value << sh, a.width)
    return _binop(
        "bvshl", a, b, lambda x, y, w: 0 if y >= w else (x << y) & _mask(w)
    )


def bv_lshr(a: BvTerm, b: BvTerm) -> BvTerm:
    if b.is_const:
        sh = b.value
        if sh == 0:
            return a
        if sh >= a.width:
            return bv_const(0, a.width)
        if a.is_const:
            return bv_const(a.value >> sh, a.width)
    return _binop("bvlshr", a, b, lambda x, y, w: 0 if y >= w else x >> y)


def _ashr_fold(x: int, y: int, w: int) -> int:
    sx = _to_signed(x, w)
    if y >= w:
        y = w - 1
    return (sx >> y) & _mask(w)


def bv_ashr(a: BvTerm, b: BvTerm) -> BvTerm:
    if b.is_const and b.value == 0:
        return a
    return _binop("bvashr", a, b, _ashr_fold)


# ---------------------------------------------------------------------------
# Comparisons
# ---------------------------------------------------------------------------


def bv_eq(a: BvTerm, b: BvTerm) -> BoolTerm:
    assert a.width == b.width and a.width >= 1
    if a is b:
        return TRUE
    if a.is_const and b.is_const:
        return bool_const(a.value == b.value)
    return _mk("bveq", (a, b), 0)


def bv_ult(a: BvTerm, b: BvTerm) -> BoolTerm:
    assert a.width == b.width
    if a is b:
        return FALSE
    if a.is_const and b.is_const:
        return bool_const(a.value < b.value)
    if b.is_const and b.value == 0:
        return FALSE
    return _mk("bvult", (a, b), 0)


def bv_ule(a: BvTerm, b: BvTerm) -> BoolTerm:
    return bool_not(bv_ult(b, a))


def bv_slt(a: BvTerm, b: BvTerm) -> BoolTerm:
    assert a.width == b.width
    if a is b:
        return FALSE
    if a.is_const and b.is_const:
        return bool_const(_to_signed(a.value, a.width) < _to_signed(b.value, b.width))
    return _mk("bvslt", (a, b), 0)


def bv_sle(a: BvTerm, b: BvTerm) -> BoolTerm:
    return bool_not(bv_slt(b, a))


# ---------------------------------------------------------------------------
# Structure: concat / extract / extensions / ite
# ---------------------------------------------------------------------------


def bv_concat(hi: BvTerm, lo: BvTerm) -> BvTerm:
    """Concatenate: result bits are ``hi ++ lo`` with ``lo`` at the LSBs."""
    if hi.is_const and lo.is_const:
        return bv_const((hi.value << lo.width) | lo.value, hi.width + lo.width)
    return _mk("concat", (hi, lo), hi.width + lo.width)


def bv_extract(a: BvTerm, hi: int, lo: int) -> BvTerm:
    """Extract bits ``hi..lo`` inclusive (LSB is bit 0)."""
    assert 0 <= lo <= hi < a.width
    if lo == 0 and hi == a.width - 1:
        return a
    if a.is_const:
        return bv_const(a.value >> lo, hi - lo + 1)
    if a.op == "concat":
        h, l = a.args
        if hi < l.width:
            return bv_extract(l, hi, lo)
        if lo >= l.width:
            return bv_extract(h, hi - l.width, lo - l.width)
    if a.op == "extract":
        base_lo = a.payload[1]
        return bv_extract(a.args[0], base_lo + hi, base_lo + lo)
    return _mk("extract", (a,), hi - lo + 1, (hi, lo))


def bv_zext(a: BvTerm, width: int) -> BvTerm:
    assert width >= a.width
    if width == a.width:
        return a
    return bv_concat(bv_const(0, width - a.width), a)


def bv_sext(a: BvTerm, width: int) -> BvTerm:
    assert width >= a.width
    if width == a.width:
        return a
    if a.is_const:
        return bv_const(_to_signed(a.value, a.width), width)
    return _mk("sext", (a,), width)


def bv_ite(cond: BoolTerm, then: BvTerm, els: BvTerm) -> BvTerm:
    assert cond.is_bool and then.width == els.width and then.width >= 1
    if cond.is_const:
        return then if cond.value else els
    if then is els:
        return then
    return _mk("bvite", (cond, then, els), then.width)


def bool_to_bv(cond: BoolTerm, width: int = 1) -> BvTerm:
    """Encode a boolean as an ``i<width>`` bitvector (1 for true)."""
    return bv_ite(cond, bv_const(1, width), bv_const(0, width))


def bv_is_nonzero(a: BvTerm) -> BoolTerm:
    return bool_not(bv_eq(a, bv_const(0, a.width)))


# ---------------------------------------------------------------------------
# Traversal utilities
# ---------------------------------------------------------------------------


def term_vars(term: Term) -> FrozenSet[str]:
    """Set of variable names occurring in ``term`` (cached on the node)."""
    if term._vars is not None:
        return term._vars
    # Iterative DFS; results cached per node so shared DAGs stay cheap.
    stack = [term]
    order = []
    visited = set()
    while stack:
        t = stack.pop()
        if id(t) in visited or t._vars is not None:
            continue
        visited.add(id(t))
        order.append(t)
        stack.extend(t.args)
    for t in reversed(order):
        if t.op == "var":
            t._vars = frozenset((t.payload,))
        else:
            acc: FrozenSet[str] = frozenset()
            for a in t.args:
                acc |= a._vars if a._vars is not None else term_vars(a)
            t._vars = acc
    return term._vars  # type: ignore[return-value]


_REBUILDERS = {
    "not": lambda args, p, w: bool_not(args[0]),
    "and": lambda args, p, w: bool_and(*args),
    "or": lambda args, p, w: bool_or(*args),
    "xor": lambda args, p, w: bool_xor(args[0], args[1]),
    "ite": lambda args, p, w: bool_ite(args[0], args[1], args[2]),
    "bveq": lambda args, p, w: bv_eq(args[0], args[1]),
    "bvult": lambda args, p, w: bv_ult(args[0], args[1]),
    "bvslt": lambda args, p, w: bv_slt(args[0], args[1]),
    "bvadd": lambda args, p, w: bv_add(args[0], args[1]),
    "bvsub": lambda args, p, w: bv_sub(args[0], args[1]),
    "bvmul": lambda args, p, w: bv_mul(args[0], args[1]),
    "bvudiv": lambda args, p, w: bv_udiv(args[0], args[1]),
    "bvurem": lambda args, p, w: bv_urem(args[0], args[1]),
    "bvsdiv": lambda args, p, w: bv_sdiv(args[0], args[1]),
    "bvsrem": lambda args, p, w: bv_srem(args[0], args[1]),
    "bvand": lambda args, p, w: bv_and(args[0], args[1]),
    "bvor": lambda args, p, w: bv_or(args[0], args[1]),
    "bvxor": lambda args, p, w: bv_xor(args[0], args[1]),
    "bvnot": lambda args, p, w: bv_not(args[0]),
    "bvneg": lambda args, p, w: bv_neg(args[0]),
    "bvshl": lambda args, p, w: bv_shl(args[0], args[1]),
    "bvlshr": lambda args, p, w: bv_lshr(args[0], args[1]),
    "bvashr": lambda args, p, w: bv_ashr(args[0], args[1]),
    "concat": lambda args, p, w: bv_concat(args[0], args[1]),
    "extract": lambda args, p, w: bv_extract(args[0], p[0], p[1]),
    "sext": lambda args, p, w: bv_sext(args[0], w),
    "bvite": lambda args, p, w: bv_ite(args[0], args[1], args[2]),
}


def rebuild_term(op: str, args: Tuple[Term, ...], payload, width: int) -> Term:
    """Reconstruct a term through the smart constructors.

    This is the public rebuilding entry used by DAG-walking rewriters
    (substitution, the e-graph extractor): routing every node through the
    constructors re-applies constant folding and light simplification, so
    a rebuilt term is always in constructor-canonical form.
    """
    if op == "var":
        return bool_var(payload) if width == 0 else bv_var(payload, width)
    if op == "const":
        return bool_const(payload) if width == 0 else bv_const(payload, width)
    return _REBUILDERS[op](args, payload, width)


def term_size(term: Term) -> int:
    """Number of distinct DAG nodes in ``term`` (shared nodes counted once).

    This is the cost metric budgeting the e-graph layer: Tseitin CNF size
    tracks the number of distinct gates, which tracks distinct DAG nodes.
    """
    count = 0
    stack = [term]
    seen = set()
    while stack:
        t = stack.pop()
        if t in seen:
            continue
        seen.add(t)
        count += 1
        stack.extend(t.args)
    return count


#: Memo for whole-call substitutions.  CEGAR re-substitutes the same
#: (psi, instantiation) and priming maps many times per refinement job;
#: interned terms make the (term, mapping) pair a usable dict key, so a
#: repeat costs one lookup instead of a full DAG walk + rebuild.
_SUBST_CACHE: Dict[tuple, Term] = {}
_SUBST_CACHE_MAX = 8192


def substitute(term: Term, mapping: Dict[str, Term]) -> Term:
    """Replace variables by terms; the mapping is keyed by variable name."""
    if not mapping:
        return term
    memo_key = (term, tuple(sorted(mapping.items())))
    memo_hit = _SUBST_CACHE.get(memo_key)
    if memo_hit is not None:
        return memo_hit
    cache: Dict[Term, Term] = {}

    def walk(t: Term) -> Term:
        hit = cache.get(t)
        if hit is not None:
            return hit
        if t.op == "var":
            result = mapping.get(t.payload, t)
            if result is not t:
                assert result.width == t.width, (t.payload, result.width, t.width)
        elif t.op == "const":
            result = t
        else:
            new_args = tuple(walk(a) for a in t.args)
            if new_args == t.args:
                result = t
            else:
                result = _REBUILDERS[t.op](new_args, t.payload, t.width)
        cache[t] = result
        return result

    result = walk(term)
    if len(_SUBST_CACHE) >= _SUBST_CACHE_MAX:
        _SUBST_CACHE.clear()
    _SUBST_CACHE[memo_key] = result
    return result


def evaluate(term: Term, env: Dict[str, int]) -> int:
    """Evaluate a term under a total assignment (``env`` maps name→int/bool).

    Missing variables default to 0/False, matching partial SAT models.
    Returns an int for bitvector terms and a bool for boolean terms.
    """
    cache: Dict[Term, int] = {}

    def walk(t: Term):
        hit = cache.get(t)
        if hit is not None:
            return hit
        if t.op == "const":
            result = t.payload
        elif t.op == "var":
            result = env.get(t.payload, False if t.is_bool else 0)
        else:
            vals = [walk(a) for a in t.args]
            result = _eval_op(t, vals)
        cache[t] = result
        return result

    return walk(term)


def _eval_op(t: Term, vals):
    op, w = t.op, t.width
    if op == "not":
        return not vals[0]
    if op == "and":
        return all(vals)
    if op == "or":
        return any(vals)
    if op == "xor":
        return bool(vals[0]) != bool(vals[1])
    if op == "ite" or op == "bvite":
        return vals[1] if vals[0] else vals[2]
    if op == "bveq":
        return vals[0] == vals[1]
    if op == "bvult":
        return vals[0] < vals[1]
    if op == "bvslt":
        aw = t.args[0].width
        return _to_signed(vals[0], aw) < _to_signed(vals[1], aw)
    if op == "bvadd":
        return (vals[0] + vals[1]) & _mask(w)
    if op == "bvsub":
        return (vals[0] - vals[1]) & _mask(w)
    if op == "bvmul":
        return (vals[0] * vals[1]) & _mask(w)
    if op == "bvudiv":
        return _mask(w) if vals[1] == 0 else vals[0] // vals[1]
    if op == "bvurem":
        return vals[0] if vals[1] == 0 else vals[0] % vals[1]
    if op == "bvsdiv":
        return _sdiv_fold(vals[0], vals[1], w)
    if op == "bvsrem":
        return _srem_fold(vals[0], vals[1], w)
    if op == "bvand":
        return vals[0] & vals[1]
    if op == "bvor":
        return vals[0] | vals[1]
    if op == "bvxor":
        return vals[0] ^ vals[1]
    if op == "bvnot":
        return ~vals[0] & _mask(w)
    if op == "bvneg":
        return -vals[0] & _mask(w)
    if op == "bvshl":
        return 0 if vals[1] >= w else (vals[0] << vals[1]) & _mask(w)
    if op == "bvlshr":
        return 0 if vals[1] >= w else vals[0] >> vals[1]
    if op == "bvashr":
        return _ashr_fold(vals[0], vals[1], w)
    if op == "concat":
        return (vals[0] << t.args[1].width) | vals[1]
    if op == "extract":
        hi, lo = t.payload
        return (vals[0] >> lo) & _mask(hi - lo + 1)
    if op == "sext":
        return _to_signed(vals[0], t.args[0].width) & _mask(w)
    raise NotImplementedError(op)
