"""Alive2 reproduction: bounded translation validation for an LLVM-like IR.

Public API (see README for a tour):

* :func:`repro.parse_module` — parse textual IR into a :class:`Module`.
* :func:`repro.verify_refinement` — check that a target function refines a
  source function (the core Alive2 operation).
* :func:`repro.tv.alive_tv.validate_files` — the ``alive-tv`` tool.
* :class:`repro.opt.passmanager.PassManager` — the optimizer under test.
"""

import sys

# Term DAGs from unrolled loops can be deep; the recursive walkers in the
# SMT layer need headroom beyond CPython's default 1000 frames.
if sys.getrecursionlimit() < 100_000:
    sys.setrecursionlimit(100_000)

__version__ = "1.0.0"

__all__ = [
    "parse_module",
    "verify_refinement",
    "VerifyOptions",
    "Verdict",
    "__version__",
]

_LAZY = {
    "parse_module": ("repro.ir.parser", "parse_module"),
    "verify_refinement": ("repro.refinement.check", "verify_refinement"),
    "VerifyOptions": ("repro.refinement.check", "VerifyOptions"),
    "Verdict": ("repro.refinement.check", "Verdict"),
}


def __getattr__(name):
    """Lazily resolve the public API (PEP 562) to keep import cheap."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)
