"""Generic lattice-based dataflow framework over the IR CFG.

The solver is a classic worklist algorithm: blocks are processed in
reverse postorder (forward analyses) or postorder (backward analyses)
and re-queued while their input environments keep changing.  An
analysis provides the lattice operations as hooks:

* :meth:`DataflowAnalysis.boundary` — environment at the entry (forward)
  or at the exits (backward);
* :meth:`DataflowAnalysis.meet` — combine environments where control
  merges (a join for may-analyses, an intersection for must-analyses);
* :meth:`DataflowAnalysis.transfer_block` — push an environment through
  one block;
* :meth:`DataflowAnalysis.widen` — accelerate convergence on blocks
  visited more than :attr:`DataflowAnalysis.widen_after` times (ranges
  over unrolled loop chains need this; finite lattices can keep the
  default, which is plain replacement).

:class:`RegisterAnalysis` specializes the framework for the common SSA
shape used by every concrete analysis in this package: the environment
is a register → fact map, phis meet the facts of their incoming values,
and ordinary instructions produce one fact via
:meth:`RegisterAnalysis.transfer`.
"""

from __future__ import annotations

from typing import Dict, Generic, List, Optional, TypeVar

from repro.ir.cfg import reverse_postorder
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Phi

Env = TypeVar("Env")
Fact = TypeVar("Fact")

FORWARD = "forward"
BACKWARD = "backward"


class DataflowAnalysis(Generic[Env]):
    """Hook container for one dataflow problem (see module docstring)."""

    direction: str = FORWARD
    #: Number of visits to one block before :meth:`widen` replaces the
    #: plain meet; bounds iteration counts on long unrolled loop chains.
    widen_after: int = 3

    def boundary(self, fn: Function) -> Env:
        raise NotImplementedError

    def meet(self, a: Env, b: Env) -> Env:
        raise NotImplementedError

    def transfer_block(self, fn: Function, block: BasicBlock, env: Env) -> Env:
        raise NotImplementedError

    def widen(self, old: Env, new: Env) -> Env:
        return new

    def equal(self, a: Env, b: Env) -> bool:
        return a == b


def solve(fn: Function, analysis: DataflowAnalysis) -> Dict[str, Env]:
    """Run ``analysis`` to a fixpoint; returns the *input* environment of
    every reachable block (entry env for forward, exit env for backward).
    """
    order = reverse_postorder(fn)
    reachable = set(order)
    if analysis.direction == BACKWARD:
        order = list(reversed(order))
        # Dataflow edges run against control flow: a block's inputs come
        # from its successors' outputs.
        edges: Dict[str, List[str]] = {
            label: [
                s for s in fn.blocks[label].successors() if s in reachable
            ]
            for label in order
        }
        seeds = [
            label
            for label in order
            if not any(s in reachable for s in fn.blocks[label].successors())
        ] or [order[0]]
    else:
        preds = fn.predecessors()
        edges = {
            label: [p for p in preds[label] if p in reachable] for label in order
        }
        seeds = [order[0]]
    position = {label: i for i, label in enumerate(order)}
    # Dependents of a block: whoever lists it as a dataflow source.
    targets_of: Dict[str, List[str]] = {label: [] for label in order}
    for label, sources in edges.items():
        for source in sources:
            targets_of[source].append(label)

    in_env: Dict[str, Env] = {}
    out_env: Dict[str, Env] = {}
    visits: Dict[str, int] = {label: 0 for label in order}
    for seed in seeds:
        in_env[seed] = analysis.boundary(fn)

    pending = set(order)
    worklist = list(order)
    while worklist:
        worklist.sort(key=lambda lb: position[lb], reverse=True)
        label = worklist.pop()
        pending.discard(label)
        incoming: Optional[Env] = None
        for source in edges[label]:
            env = out_env.get(source)
            if env is None:
                continue
            incoming = env if incoming is None else analysis.meet(incoming, env)
        if incoming is not None:
            if label in seeds:
                incoming = analysis.meet(in_env[label], incoming)
            old = in_env.get(label)
            if old is not None:
                visits[label] += 1
                if visits[label] > analysis.widen_after:
                    incoming = analysis.widen(old, incoming)
                else:
                    incoming = analysis.meet(old, incoming)
            in_env[label] = incoming
        if label not in in_env:
            continue  # unreachable under this direction's seeding
        new_out = analysis.transfer_block(fn, fn.blocks[label], in_env[label])
        if label in out_env and analysis.equal(out_env[label], new_out):
            continue
        out_env[label] = new_out
        for target in targets_of[label]:
            if target not in pending:
                pending.add(target)
                worklist.append(target)
    return in_env


class RegisterAnalysis(DataflowAnalysis[Dict[str, Fact]]):
    """SSA value analysis: environments map register names to facts.

    Registers absent from an environment have not been reached yet
    (lattice bottom); the environment meet keeps the union of names and
    meets facts defined on both sides, which converges to the sound join
    over all paths because defs dominate uses in SSA form.
    """

    def top(self) -> Fact:
        raise NotImplementedError

    def join(self, a: Fact, b: Fact) -> Fact:
        raise NotImplementedError

    def widen_fact(self, old: Fact, new: Fact) -> Fact:
        return self.join(old, new)

    def fact_of_argument(self, arg) -> Fact:
        return self.top()

    def fact_of_constant(self, value) -> Fact:
        return self.top()

    def transfer(self, inst, env: Dict[str, Fact]) -> Fact:
        """Fact for ``inst``'s result; default is no information."""
        return self.top()

    # -- plumbing through the generic framework ------------------------------
    def boundary(self, fn: Function) -> Dict[str, Fact]:
        return {arg.name: self.fact_of_argument(arg) for arg in fn.args}

    def meet(self, a: Dict[str, Fact], b: Dict[str, Fact]) -> Dict[str, Fact]:
        merged = dict(a)
        for name, fact in b.items():
            mine = merged.get(name)
            merged[name] = fact if mine is None else self.join(mine, fact)
        return merged

    def widen(self, old: Dict[str, Fact], new: Dict[str, Fact]) -> Dict[str, Fact]:
        merged = dict(old)
        for name, fact in new.items():
            mine = merged.get(name)
            merged[name] = fact if mine is None else self.widen_fact(mine, fact)
        return merged

    def value_fact(self, value, env: Dict[str, Fact]) -> Fact:
        from repro.ir.values import Register

        if isinstance(value, Register):
            fact = env.get(value.name)
            return fact if fact is not None else self.top()
        return self.fact_of_constant(value)

    def transfer_block(
        self, fn: Function, block: BasicBlock, env: Dict[str, Fact]
    ) -> Dict[str, Fact]:
        from repro.ir.values import Register

        env = dict(env)
        for phi in block.phis():
            fact: Optional[Fact] = None
            seen_any = False
            for value, _pred in phi.incoming:
                # An incoming register absent from the environment flows
                # from a path not processed yet (or unreachable): that is
                # lattice bottom, so skip it — treating it as top would
                # pin the phi at "no information" before the backedge's
                # facts ever arrive.
                if isinstance(value, Register) and value.name not in env:
                    continue
                seen_any = True
                vf = self.value_fact(value, env)
                fact = vf if fact is None else self.join(fact, vf)
            env[phi.name] = fact if seen_any else self.top()
        for inst in block.non_phi_instructions():
            name = getattr(inst, "name", None)
            if name is not None:
                env[name] = self.transfer(inst, env)
        return env


def analyze_registers(fn: Function, analysis: RegisterAnalysis) -> Dict[str, Fact]:
    """Fixpoint register → fact map over all reachable blocks of ``fn``."""
    if fn.is_declaration:
        return {}
    envs = solve(fn, analysis)
    facts: Dict[str, Fact] = {}
    for label, env in envs.items():
        block = fn.blocks.get(label)
        if block is None:
            continue
        out = analysis.transfer_block(fn, block, env)
        for name, fact in out.items():
            mine = facts.get(name)
            facts[name] = fact if mine is None else analysis.join(mine, fact)
    return facts


class LivenessAnalysis(DataflowAnalysis[frozenset]):
    """Classic backward liveness; exercises the backward direction.

    Environments are frozensets of live register names at block exit.
    """

    direction = BACKWARD

    def boundary(self, fn: Function) -> frozenset:
        return frozenset()

    def meet(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer_block(
        self, fn: Function, block: BasicBlock, env: frozenset
    ) -> frozenset:
        from repro.ir.values import Register

        live = set(env)
        for inst in reversed(block.instructions):
            name = getattr(inst, "name", None)
            if name is not None:
                live.discard(name)
            if isinstance(inst, Phi):
                continue  # phi reads happen on the incoming edges
            for op in inst.operands:
                if isinstance(op, Register):
                    live.add(op.name)
        for phi in block.phis():
            for value, _pred in phi.incoming:
                if isinstance(value, Register):
                    live.add(value.name)
        return frozenset(live)
