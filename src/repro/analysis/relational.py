"""Relational value numbering over the product of the src/tgt CFGs.

Every other analysis in the repo (known-bits, points-to, memdf, the
prescreen) is single-function; refinement is decided per (src, tgt)
pair, so the facts that actually discharge queries are *relational*:
"this tgt value always equals that src value".  This module computes
them with a relational form of global value numbering:

* Block alignment (``repro.analysis.align``) pairs the two unrolled
  CFGs in lockstep.  Alignment needs value congruence (to match branch
  conditions) and value congruence needs alignment (to match phis), so
  the two are iterated to a fixpoint — the unrolled CFGs are acyclic
  and both maps only grow, so a few rounds converge.

* Value numbers are *affine*: ``VN = (base class, offset)``, meaning
  ``value = base + offset (mod 2^width)``.  The offset component is the
  relational range/offset pass: it propagates equalities *and constant
  offsets* between src and tgt values (``%s = %t + 4``) through
  flag-free add/sub chains, mirroring the certified e-graph rules
  (commutativity, constant folding, identity elements, inverted icmp
  predicates).  Classes are seeded from the shared arguments, globals
  and alloca slots, closed under identical opcodes, and extended with
  memdf must-forwarding facts (a load joins the class of the value the
  unique dominating store wrote).

Soundness contract: ``VN(src value) == VN(tgt value)`` asserts that the
two derivation trees are identical up to the certified normalisations,
with a position-wise bijection between their nondeterministic leaves
(per-use undef readings, freeze choices).  Choosing the primed src
readings equal to tgt's paired readings is then a legal CEGAR witness
under which the values — including their poison bits — coincide.  This
is why folds that *delete or duplicate* nondet leaves (``sub x, x -> 0``,
``select c, x, x -> x``, ``mul x, 0 -> 0``) are deliberately absent:
they hold for each evaluation of ``x`` separately but not across the
distinct per-use readings the encoder emits.  Freeze instructions pair
one-to-one across the functions when their operands are congruent;
paired freezes share a class, unpaired ones stay opaque.

Consumers: the ``R-relational-equal`` prescreen rule (discharge before
encoding), relational witness seeds for the e-graph and CEGAR rungs
(replacing the lone-forall-var heuristic of PR 7), and alignment-aware
counterexample notes naming the first diverging value pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.align import Alignment, align_blocks
from repro.ir.cfg import predecessors, reverse_postorder
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    ExtractElement,
    ExtractValue,
    FCmp,
    Freeze,
    Gep,
    ICmp,
    InsertElement,
    InsertValue,
    Load,
    Phi,
    Ret,
    Select,
    ShuffleVector,
    Store,
)
from repro.ir.types import IntType
from repro.ir.values import (
    ConstantAggregate,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    GlobalRef,
    PoisonValue,
    Register,
    UndefValue,
    Value,
)


@dataclass
class RelationalStats:
    """Process-wide counters, snapshotted per test by the suite runner."""

    analyses: int = 0
    aligned_blocks: int = 0  # certified pairs across all analyses
    congruent_pairs: int = 0  # cross-function register pairs with equal VN
    nondet_pairs: int = 0  # freeze instructions paired one-to-one
    seed_pairs: int = 0  # forall-var -> tgt-term entries contributed to seeds
    seeded_queries: int = 0  # solver checks that carried relational seeds

    def reset(self) -> None:
        self.analyses = 0
        self.aligned_blocks = 0
        self.congruent_pairs = 0
        self.nondet_pairs = 0
        self.seed_pairs = 0
        self.seeded_queries = 0


STATS = RelationalStats()

# A value number: (interned base class id, additive offset).  The pair
# asserts value == base + offset mod 2^width of the value's type.
VN = Tuple[int, int]

_ROUNDS = 3  # alignment <-> VN fixpoint iterations (acyclic: converges fast)

# Identity folds that return the *surviving* operand, so the nondet
# leaves of the result are exactly those of that operand (poison-exact
# even with nsw/nuw/exact flags: the neutral element never overflows or
# drops bits).  Folds that discard a non-constant operand (and x, 0;
# mul x, 0; urem x, 1) are intentionally excluded — they forget poison.
_RIGHT_IDENTITY = {
    "add": 0,
    "sub": 0,
    "or": 0,
    "xor": 0,
    "shl": 0,
    "lshr": 0,
    "ashr": 0,
    "mul": 1,
    "udiv": 1,
    "sdiv": 1,
}
_COMMUTATIVE = {"add", "mul", "and", "or", "xor"}
# icmp predicates canonicalised by swapping operands.
_SWAPPED_PRED = {
    "sgt": "slt",
    "sge": "sle",
    "ugt": "ult",
    "uge": "ule",
}


class _Numbering:
    """Interned congruence classes shared by both sides of the pair."""

    def __init__(self) -> None:
        self._classes: Dict[Tuple, int] = {}
        self._next = 0
        self.vn: Dict[Tuple[str, str], VN] = {}  # (side, reg) -> VN
        # Registers whose class membership is *unconditional at the term
        # level*: derived purely through opcode signatures and certified
        # folds (no load forwarding, freeze pairing, or phi matching,
        # whose claims only hold under the witness / UB-freedom caveat).
        # Such pairs may be unioned in an e-graph outright — provided
        # their encoded terms contain no nondet readings, which the
        # consumer checks on the SMT side.
        self.uncond: set = set()  # (side, reg)

    def intern(self, key: Tuple) -> int:
        cid = self._classes.get(key)
        if cid is None:
            cid = self._next
            self._next += 1
            self._classes[key] = cid
        return cid

    def fresh(self, tag: str, side: str, name: str) -> int:
        # Opaque class: never merges with anything else.
        return self.intern((tag, side, name))

    def const_base(self, width: int) -> int:
        return self.intern(("const", width))


@dataclass
class RelationalResult:
    """Congruence facts for one (src, tgt) unrolled function pair."""

    src: Function
    tgt: Function
    alignment: Alignment
    numbering: _Numbering
    nondet_pairs: Tuple[Tuple[str, str], ...] = ()  # (src reg, tgt reg)

    # -- core queries ---------------------------------------------------------
    def value_vn(self, side: str, value: Value) -> Optional[VN]:
        return _value_vn(self.numbering, side, value)

    def congruent(self, src_value: Value, tgt_value: Value) -> bool:
        """Known-equal (value and poison) under the witness pairing."""
        a = self.value_vn("src", src_value)
        b = self.value_vn("tgt", tgt_value)
        return a is not None and a == b

    def offset_between(self, src_value: Value, tgt_value: Value) -> Optional[int]:
        """``src - tgt`` when both sit on the same affine base."""
        a = self.value_vn("src", src_value)
        b = self.value_vn("tgt", tgt_value)
        if a is None or b is None or a[0] != b[0]:
            return None
        return a[1] - b[1]

    # -- consumer: R-relational-equal -----------------------------------------
    def ret_congruent(self) -> bool:
        """Every return site pairs with a congruent, aligned partner."""
        cert = dict(self.alignment.certified)
        src_rets = _ret_blocks(self.src)
        tgt_rets = _ret_blocks(self.tgt)
        if not src_rets or len(src_rets) != len(tgt_rets):
            return False
        matched_tgt = set()
        for label, ret in src_rets.items():
            partner = cert.get(label)
            if partner is None or partner not in tgt_rets:
                return False
            other = tgt_rets[partner]
            if (ret.value is None) != (other.value is None):
                return False
            if ret.value is not None and not self.congruent(ret.value, other.value):
                return False
            matched_tgt.add(partner)
        return matched_tgt == set(tgt_rets)

    def store_effects_congruent(self, memdf_src, memdf_tgt) -> bool:
        """Caller-visible stores match pairwise in the entry blocks.

        Requires every store that may touch a shared writable block to
        sit in the (unconditionally executed) entry block, with the two
        entry sequences congruent store-by-store — same pointer class,
        same value class, same stored type.  Untouched shared bytes are
        the same initial-memory terms on both sides, so congruent store
        sequences leave byte-identical caller-visible memory under the
        witness pairing.
        """
        if memdf_src is None or memdf_tgt is None:
            return False
        src_stores = _shared_entry_stores(self.src, memdf_src)
        tgt_stores = _shared_entry_stores(self.tgt, memdf_tgt)
        if src_stores is None or tgt_stores is None:
            return False
        if len(src_stores) != len(tgt_stores):
            return False
        for s, t in zip(src_stores, tgt_stores):
            if str(s.value.type) != str(t.value.type):
                return False
            if not self.congruent(s.pointer, t.pointer):
                return False
            if not self.congruent(s.value, t.value):
                return False
        return True

    # -- consumer: witness seeds ----------------------------------------------
    def origin_map(self) -> Dict[str, str]:
        """src nondet origin tag -> the paired tgt origin tag."""
        return {
            f"freeze_{s}": f"freeze_{t}" for s, t in self.nondet_pairs
        }

    def congruent_register_pairs(self) -> List[Tuple[str, str]]:
        """Cross-function (src reg, tgt reg) pairs with equal VN."""
        by_vn: Dict[VN, List[str]] = {}
        for (side, name), vn in self.numbering.vn.items():
            if side == "src":
                by_vn.setdefault(vn, []).append(name)
        out = []
        for (side, name), vn in self.numbering.vn.items():
            if side == "tgt":
                for src_name in by_vn.get(vn, ()):
                    out.append((src_name, name))
        return out

    def unconditional_pairs(self) -> List[Tuple[str, str]]:
        """Congruent pairs whose membership proof is term-unconditional."""
        uncond = self.numbering.uncond
        return [
            (s, t)
            for s, t in self.congruent_register_pairs()
            if ("src", s) in uncond and ("tgt", t) in uncond
        ]

    # -- consumer: counterexample reports -------------------------------------
    def first_divergence(self) -> Optional[Tuple[str, str, str, str]]:
        """First aligned value pair whose classes diverge.

        Returns ``(src_block, tgt_block, src_reg, tgt_reg)`` for the
        first position (src RPO, instruction order) where two aligned
        instructions compute provably-different-looking values, or
        ``None`` when everything aligned is congruent.
        """
        for a, b in self.alignment.pairs:
            src_insts = [
                i for i in self.src.blocks[a].instructions if getattr(i, "name", None)
            ]
            tgt_insts = [
                i for i in self.tgt.blocks[b].instructions if getattr(i, "name", None)
            ]
            for s, t in zip(src_insts, tgt_insts):
                va = self.numbering.vn.get(("src", s.name))
                vb = self.numbering.vn.get(("tgt", t.name))
                if va is not None and vb is not None and va != vb:
                    return (a, b, s.name, t.name)
        return None

    def describe_divergence(self) -> Optional[str]:
        div = self.first_divergence()
        if div is None:
            return None
        a, b, s, t = div
        detail = ""
        sv = self.numbering.vn.get(("src", s))
        tv = self.numbering.vn.get(("tgt", t))
        if sv is not None and tv is not None and sv[0] == tv[0]:
            detail = f" (same base, offsets differ by {sv[1] - tv[1]})"
        return (
            f"relational: first diverging value pair %{s} (src block {a})"
            f" vs %{t} (tgt block {b}){detail}"
        )


def analyze_relational(
    src: Function,
    tgt: Function,
    memdf_src=None,
    memdf_tgt=None,
) -> RelationalResult:
    """Run the alignment <-> value-numbering fixpoint on one pair."""
    result = None
    alignment = Alignment()
    for _ in range(_ROUNDS):
        numbering = _Numbering()
        pairs: List[Tuple[str, str]] = []
        _number_side(numbering, "src", src, memdf_src, alignment, None, pairs)
        _number_side(numbering, "tgt", tgt, memdf_tgt, alignment, src, pairs)

        def congruent(sv: Value, tv: Value) -> bool:
            a = _value_vn(numbering, "src", sv)
            b = _value_vn(numbering, "tgt", tv)
            return a is not None and a == b

        new_alignment = align_blocks(src, tgt, congruent)
        result = RelationalResult(
            src, tgt, new_alignment, numbering, tuple(pairs)
        )
        if new_alignment.pairs == alignment.pairs and (
            new_alignment.certified == alignment.certified
        ):
            break
        alignment = new_alignment

    STATS.analyses += 1
    STATS.aligned_blocks += len(result.alignment.certified)
    STATS.nondet_pairs += len(result.nondet_pairs)
    STATS.congruent_pairs += sum(
        1 for _ in result.congruent_register_pairs()
    )
    return result


# -- value numbering ----------------------------------------------------------


def _width_of(value_type) -> Optional[int]:
    if isinstance(value_type, IntType):
        return value_type.width
    return None


def _mask(vn_off: int, width: Optional[int]) -> int:
    if width is None:
        return vn_off
    return vn_off & ((1 << width) - 1)


def _value_vn(num: _Numbering, side: str, value: Value) -> Optional[VN]:
    if isinstance(value, Register):
        return num.vn.get((side, value.name))
    if isinstance(value, ConstantInt):
        return (num.const_base(value.type.width), value.value)
    if isinstance(value, GlobalRef):
        return (num.intern(("global", value.name)), 0)
    if isinstance(value, ConstantNull):
        return (num.intern(("null",)), 0)
    if isinstance(value, UndefValue):
        return (num.intern(("undef", str(value.type))), 0)
    if isinstance(value, PoisonValue):
        return (num.intern(("poison", str(value.type))), 0)
    if isinstance(value, ConstantFloat):
        return (num.intern(("cfloat", str(value.type), value.bits)), 0)
    if isinstance(value, ConstantAggregate):
        return (num.intern(("cagg", str(value.type), str(value))), 0)
    return None


def _is_const(num: _Numbering, vn: VN, width: Optional[int]) -> Optional[int]:
    if width is not None and vn[0] == num.const_base(width):
        return _mask(vn[1], width)
    return None


def _fold_const(opcode: str, width: int, a: int, b: int) -> Optional[int]:
    """Exact flag-free constant folding; ``None`` when not total."""
    m = (1 << width) - 1
    if opcode == "add":
        return (a + b) & m
    if opcode == "sub":
        return (a - b) & m
    if opcode == "mul":
        return (a * b) & m
    if opcode == "and":
        return a & b
    if opcode == "or":
        return a | b
    if opcode == "xor":
        return a ^ b
    if opcode in ("shl", "lshr", "ashr") and b < width:
        if opcode == "shl":
            return (a << b) & m
        if opcode == "lshr":
            return a >> b
        sa = a - (1 << width) if a >= 1 << (width - 1) else a
        return (sa >> b) & m
    return None


def _number_side(
    num: _Numbering,
    side: str,
    fn: Function,
    memdf,
    alignment: Alignment,
    src_fn: Optional[Function],
    nondet_pairs: List[Tuple[str, str]],
) -> None:
    """Assign a VN to every register of one side, in RPO."""
    preds = predecessors(fn)
    src_preds = predecessors(src_fn) if src_fn is not None else {}
    # Seed the shared inputs: the encoder gives same-named arguments the
    # same shared SMT variable on both sides, so name-keyed classes are
    # exactly the "meets on the same inputs" contract.  Arguments count
    # as unconditional: any residual nondeterminism (per-use undef
    # readings of an undef argument) manifests as nondet vars in the
    # encoded term, which the union-seed consumer filters on its side.
    for arg in fn.args:
        num.vn[(side, arg.name)] = (num.intern(("arg", arg.name)), 0)
        num.uncond.add((side, arg.name))
    # Freeze pairing state: src freezes available for tgt adoption.
    free_freezes: List[Tuple[VN, str, int]] = []
    if side == "src":
        num._src_freezes = free_freezes  # type: ignore[attr-defined]
    else:
        free_freezes = list(getattr(num, "_src_freezes", []))
    taken = set()

    for label in reverse_postorder(fn):
        block = fn.blocks.get(label)
        if block is None:
            continue
        for inst in block.instructions:
            name = getattr(inst, "name", None)
            if not name:
                continue
            vn = _instruction_vn(
                num,
                side,
                fn,
                label,
                inst,
                memdf,
                alignment,
                src_fn,
                preds,
                src_preds,
                free_freezes,
                taken,
                nondet_pairs,
            )
            if vn is None:
                vn = (num.fresh("opaque", side, name), 0)
            num.vn[(side, name)] = vn
            if _derivation_unconditional(num, side, inst):
                num.uncond.add((side, name))


# Pure value operators whose encoded term is a total function of the
# operand terms.  Load (memory state), Freeze (fresh choice), Phi (path
# condition), Call (havoc) and Alloca (per-side layout address) are
# excluded: their congruence claims are witness-conditional, so they
# must never flow into unconditional e-graph unions.
_PURE_OPS = (
    BinOp,
    ICmp,
    FCmp,
    Select,
    Cast,
    Gep,
    ExtractElement,
    InsertElement,
    ExtractValue,
    InsertValue,
    ShuffleVector,
)


def _value_unconditional(num: _Numbering, side: str, value: Value) -> bool:
    if isinstance(value, Register):
        return (side, value.name) in num.uncond
    if isinstance(value, (ConstantInt, ConstantFloat, ConstantNull, GlobalRef)):
        return True
    if isinstance(value, ConstantAggregate):
        return all(_value_unconditional(num, side, e) for e in value.elems)
    # Undef/Poison literals encode to fresh per-use readings.
    return False


def _pure_operands(inst) -> List[Value]:
    if isinstance(inst, (BinOp, ICmp, FCmp)):
        return [inst.lhs, inst.rhs]
    if isinstance(inst, Select):
        return [inst.cond, inst.on_true, inst.on_false]
    if isinstance(inst, Cast):
        return [inst.operand]
    if isinstance(inst, Gep):
        return [inst.pointer, *inst.indices]
    if isinstance(inst, ExtractElement):
        return [inst.vector, inst.index]
    if isinstance(inst, InsertElement):
        return [inst.vector, inst.element, inst.index]
    if isinstance(inst, ExtractValue):
        return [inst.aggregate]
    if isinstance(inst, InsertValue):
        return [inst.aggregate, inst.element]
    if isinstance(inst, ShuffleVector):
        return [inst.v1, inst.v2]
    return []


def _derivation_unconditional(num: _Numbering, side: str, inst) -> bool:
    """True when the register's term is a pure function of uncond terms."""
    if not isinstance(inst, _PURE_OPS):
        return False
    return all(
        _value_unconditional(num, side, v) for v in _pure_operands(inst)
    )


def _instruction_vn(
    num: _Numbering,
    side: str,
    fn: Function,
    label: str,
    inst,
    memdf,
    alignment: Alignment,
    src_fn: Optional[Function],
    preds: Dict[str, List[str]],
    src_preds: Dict[str, List[str]],
    free_freezes: List[Tuple[VN, str, int]],
    taken: set,
    nondet_pairs: List[Tuple[str, str]],
) -> Optional[VN]:
    look = lambda v: _value_vn(num, side, v)  # noqa: E731

    if isinstance(inst, BinOp):
        width = _width_of(inst.type)
        a, b = look(inst.lhs), look(inst.rhs)
        if a is None or b is None or width is None:
            return None
        ca = _is_const(num, a, width)
        cb = _is_const(num, b, width)
        flags = tuple(sorted(inst.flags)) if inst.flags else ()
        if not flags and ca is not None and cb is not None:
            folded = _fold_const(inst.opcode, width, ca, cb)
            if folded is not None:
                return (num.const_base(width), folded)
        # Identity element: result *is* the surviving operand.
        allones = (1 << width) - 1
        identity = allones if inst.opcode == "and" else _RIGHT_IDENTITY.get(
            inst.opcode
        )
        if cb is not None and identity == cb:
            return a
        if ca is not None and identity == ca and inst.opcode in _COMMUTATIVE:
            return b
        if not flags and inst.opcode == "add":
            # Affine: (x + i) + (y + j) = (x + y) + (i + j).
            if cb is not None:
                return (a[0], _mask(a[1] + cb, width))
            if ca is not None:
                return (b[0], _mask(b[1] + ca, width))
            lo, hi = sorted((a[0], b[0]))
            base = num.intern(("add", width, lo, hi))
            return (base, _mask(a[1] + b[1], width))
        if not flags and inst.opcode == "sub":
            if cb is not None:
                return (a[0], _mask(a[1] - cb, width))
            # (x + i) - (y + j) = (x - y) + (i - j); the sub node is
            # kept even when the bases coincide (no x - x -> 0 fold:
            # per-use undef readings differ).
            base = num.intern(("sub", width, a[0], b[0]))
            return (base, _mask(a[1] - b[1], width))
        ops = [a, b]
        if inst.opcode in _COMMUTATIVE:
            ops.sort()
        return (
            num.intern(("bin", inst.opcode, width, flags, ops[0], ops[1])),
            0,
        )

    if isinstance(inst, ICmp):
        a, b = look(inst.lhs), look(inst.rhs)
        if a is None or b is None:
            return None
        pred = inst.pred
        if pred in _SWAPPED_PRED:
            pred = _SWAPPED_PRED[pred]
            a, b = b, a
        elif pred in ("eq", "ne") and b < a:
            a, b = b, a
        return (num.intern(("icmp", pred, str(inst.lhs.type), a, b)), 0)

    if isinstance(inst, FCmp):
        a, b = look(inst.lhs), look(inst.rhs)
        if a is None or b is None:
            return None
        fmf = tuple(sorted(getattr(inst, "fmf", ()) or ()))
        return (num.intern(("fcmp", inst.pred, fmf, a, b)), 0)

    if isinstance(inst, Select):
        c, t, f = look(inst.cond), look(inst.on_true), look(inst.on_false)
        if c is None or t is None or f is None:
            return None
        # No select c, x, x -> x fold: it forgets the condition's poison.
        return (num.intern(("select", str(inst.type), c, t, f)), 0)

    if isinstance(inst, Cast):
        a = look(inst.operand)
        if a is None:
            return None
        return (
            num.intern(("cast", inst.opcode, str(inst.type), a)),
            0,
        )

    if isinstance(inst, Freeze):
        a = look(inst.operand)
        if side == "src":
            cid = num.fresh("freeze", side, inst.name)
            if a is not None:
                free_freezes.append((a, inst.name, cid))
            return (cid, 0)
        # tgt: adopt the first unpaired src freeze with a congruent
        # operand.  One-to-one: two freezes of the same value may differ,
        # so a src freeze backs at most one tgt freeze.
        if a is not None:
            for i, (vn, src_name, cid) in enumerate(free_freezes):
                if i in taken or vn != a:
                    continue
                taken.add(i)
                nondet_pairs.append((src_name, inst.name))
                return (cid, 0)
        return (num.fresh("freeze", side, inst.name), 0)

    if isinstance(inst, Phi):
        incoming = [(look(v), pl) for v, pl in inst.incoming]
        if any(vn is None for vn, _ in incoming):
            return None
        distinct = {vn for vn, _ in incoming}
        if len(distinct) == 1:
            # phi(x, ..., x): every edge reading can map onto the same
            # partner reading, so the phi collapses to its operand.
            return next(iter(distinct))
        if side == "tgt" and src_fn is not None:
            return _match_tgt_phi(
                num, fn, label, inst, incoming, alignment, src_fn, preds, src_preds
            )
        return None

    if isinstance(inst, Load):
        if memdf is not None:
            fact = memdf.forwards.get(id(inst))
            if fact is not None:
                fwd = _value_vn(num, side, fact.value)
                if fwd is not None:
                    return fwd
        return None

    if isinstance(inst, Alloca):
        if memdf is not None:
            fact = memdf.pointsto.get(inst.name)
            if fact is not None and fact.bids is not None and len(fact.bids) == 1:
                # Same bid => same concrete address on both sides.
                return (num.intern(("alloca", next(iter(fact.bids)))), 0)
        return None

    if isinstance(inst, Gep):
        p = look(inst.pointer)
        idx = [look(i) for i in inst.indices]
        if p is None or any(i is None for i in idx):
            return None
        key = ("gep", bool(inst.inbounds), str(inst.source_type), p, tuple(idx))
        return (num.intern(key), 0)

    if isinstance(inst, ExtractElement):
        v, i = look(inst.vector), look(inst.index)
        if v is None or i is None:
            return None
        return (num.intern(("extractelement", v, i)), 0)

    if isinstance(inst, InsertElement):
        v, e, i = look(inst.vector), look(inst.element), look(inst.index)
        if v is None or e is None or i is None:
            return None
        return (num.intern(("insertelement", v, e, i)), 0)

    if isinstance(inst, ExtractValue):
        a = look(inst.aggregate)
        if a is None:
            return None
        return (num.intern(("extractvalue", a, tuple(inst.indices))), 0)

    if isinstance(inst, InsertValue):
        a, e = look(inst.aggregate), look(inst.element)
        if a is None or e is None:
            return None
        return (num.intern(("insertvalue", a, e, tuple(inst.indices))), 0)

    if isinstance(inst, ShuffleVector):
        if any(m is None for m in inst.mask):
            return None  # undef mask lanes are per-use nondeterministic
        v1, v2 = look(inst.v1), look(inst.v2)
        if v1 is None or v2 is None:
            return None
        return (num.intern(("shuffle", v1, v2, tuple(inst.mask))), 0)

    if isinstance(inst, Call):
        return None  # opaque: havoc'ed result, never congruent

    return None


def _match_tgt_phi(
    num: _Numbering,
    fn: Function,
    label: str,
    inst: Phi,
    incoming: List[Tuple[VN, str]],
    alignment: Alignment,
    src_fn: Function,
    preds: Dict[str, List[str]],
    src_preds: Dict[str, List[str]],
) -> Optional[VN]:
    """Adopt the class of a congruent src phi in the aligned block."""
    cert = dict(alignment.certified)
    src_label = None
    for a, b in alignment.certified:
        if b == label:
            src_label = a
            break
    if src_label is None:
        return None
    tgt_pred_list = preds.get(label, [])
    src_pred_list = src_preds.get(src_label, [])
    if len(tgt_pred_list) != len(src_pred_list):
        return None
    if len(set(tgt_pred_list)) != len(tgt_pred_list):
        return None
    by_label = {pl: vn for vn, pl in incoming}
    if len(by_label) != len(incoming):
        return None
    for cand in src_fn.blocks[src_label].phis():
        src_in = {pl: _value_vn(num, "src", v) for v, pl in cand.incoming}
        if set(src_in) != set(src_pred_list) or None in src_in.values():
            continue
        ok = True
        for p in src_pred_list:
            q = cert.get(p)
            if q is None or q not in by_label or src_in[p] != by_label[q]:
                ok = False
                break
        if ok:
            src_vn = num.vn.get(("src", cand.name))
            if src_vn is not None:
                return src_vn
    return None


# -- helpers for R-relational-equal -------------------------------------------


def _ret_blocks(fn: Function) -> Dict[str, Ret]:
    out: Dict[str, Ret] = {}
    for label, block in fn.blocks.items():
        term = block.terminator
        if isinstance(term, Ret):
            out[label] = term
    return out


def _shared_entry_stores(fn: Function, memdf) -> Optional[List[Store]]:
    """Stores that may touch shared writable memory, iff all in entry.

    Returns ``None`` when a caller-visible store sits outside the entry
    block (its execution would be conditional) or when the function has
    no blocks.
    """
    if not fn.blocks:
        return None
    shared_writable = {
        info.bid for info in memdf.layout.shared_blocks if info.writable
    }
    entry_label = fn.entry.label
    out: List[Store] = []
    for label, block in fn.blocks.items():
        for inst in block.instructions:
            if not isinstance(inst, Store):
                continue
            fact = memdf.pointer_fact(inst.pointer)
            if fact.bids is not None and not (set(fact.bids) & shared_writable):
                continue  # provably local / read-only: caller-invisible
            if label != entry_label:
                return None
            out.append(inst)
    return out
