"""Abstract evaluation of SMT terms with known-bits facts.

This is the *term-level* counterpart of the IR analyses: bitvector terms
get a :class:`~repro.analysis.knownbits.KnownBits` fact, boolean terms a
three-valued ``True``/``False``/``None``.  Variables evaluate to ⊤, so
every fact holds for *all* assignments — a fully-determined bitvector
term really is that constant, a must-true boolean really is valid.
That unconditional soundness is what lets the encoder substitute
constants before bit-blasting and the prescreen discharge queries
without ever touching UB/poison reasoning.

Facts are memoized per interned :class:`~repro.smt.terms.Term`; the
cache registers with :func:`repro.smt.terms.on_reset` so an interning
reset cannot alias stale facts onto recycled term objects (the same
staleness class as ``exists_forall._WIDTH_CACHE``).
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.analysis.knownbits import (
    KnownBits,
    kb_binop,
    kb_concat,
    kb_extract,
    kb_icmp,
    kb_neg,
    kb_not,
    kb_sext,
)
from repro.smt import terms
from repro.smt.terms import Term

TermFact = Union[KnownBits, Optional[bool]]

_TERM_FACTS: Dict[Term, TermFact] = {}


@terms.on_reset
def _clear_term_facts() -> None:
    _TERM_FACTS.clear()


_KB_BINOPS = {
    "bvadd": "add",
    "bvsub": "sub",
    "bvmul": "mul",
    "bvudiv": "udiv",
    "bvurem": "urem",
    "bvsdiv": "sdiv",
    "bvsrem": "srem",
    "bvand": "and",
    "bvor": "or",
    "bvxor": "xor",
    "bvshl": "shl",
    "bvlshr": "lshr",
    "bvashr": "ashr",
}


def _bool3_not(a: Optional[bool]) -> Optional[bool]:
    return None if a is None else not a


def _fact_of(term: Term, arg_facts) -> TermFact:
    op = term.op
    if op == "const":
        if term.is_bool:
            return bool(term.payload)
        return KnownBits.constant(term.payload, term.width)
    if op == "var":
        return None if term.is_bool else KnownBits.top(term.width)
    if op == "not":
        return _bool3_not(arg_facts[0])
    if op == "and":
        if any(f is False for f in arg_facts):
            return False
        if all(f is True for f in arg_facts):
            return True
        return None
    if op == "or":
        if any(f is True for f in arg_facts):
            return True
        if all(f is False for f in arg_facts):
            return False
        return None
    if op == "xor":
        a, b = arg_facts
        if a is None or b is None:
            return None
        return a != b
    if op == "ite":
        cond, then, els = arg_facts
        if cond is True:
            return then
        if cond is False:
            return els
        if then is not None and then == els:
            return then
        return None
    if op == "bvite":
        cond, then, els = arg_facts
        if cond is True:
            return then
        if cond is False:
            return els
        return then.join(els)
    if op == "bveq":
        return kb_icmp("eq", arg_facts[0], arg_facts[1])
    if op == "bvult":
        return kb_icmp("ult", arg_facts[0], arg_facts[1])
    if op == "bvslt":
        return kb_icmp("slt", arg_facts[0], arg_facts[1])
    kb_op = _KB_BINOPS.get(op)
    if kb_op is not None:
        return kb_binop(kb_op, arg_facts[0], arg_facts[1])
    if op == "bvnot":
        return kb_not(arg_facts[0])
    if op == "bvneg":
        return kb_neg(arg_facts[0])
    if op == "concat":
        return kb_concat(arg_facts[0], arg_facts[1])
    if op == "extract":
        hi, lo = term.payload
        return kb_extract(arg_facts[0], hi, lo)
    if op == "sext":
        return kb_sext(arg_facts[0], term.width)
    # Unknown operator: no information.
    return None if term.is_bool else KnownBits.top(term.width)


def term_fact(term: Term) -> TermFact:
    """Abstract value of ``term``: KnownBits for bitvectors, 3-valued
    bool (``True``/``False``/``None``) for booleans."""
    cached = _TERM_FACTS.get(term)
    if cached is not None or term in _TERM_FACTS:
        return cached
    # Iterative postorder; refinement formulas nest deeper than the
    # recursion limit.
    stack = [term]
    while stack:
        t = stack[-1]
        if t in _TERM_FACTS:
            stack.pop()
            continue
        missing = [a for a in t.args if a not in _TERM_FACTS]
        if missing:
            stack.extend(missing)
            continue
        stack.pop()
        _TERM_FACTS[t] = _fact_of(t, [_TERM_FACTS[a] for a in t.args])
    return _TERM_FACTS[term]


def must_true(term: Term) -> bool:
    """True iff ``term`` is valid (holds for every assignment)."""
    return term_fact(term) is True


def must_false(term: Term) -> bool:
    """True iff ``term`` is unsatisfiable (false for every assignment)."""
    return term_fact(term) is False


def known_const(term: Term) -> Optional[int]:
    """The concrete value of a fully-determined bitvector term, if any."""
    if term.is_bool:
        return None
    fact = term_fact(term)
    return fact.value if isinstance(fact, KnownBits) else None
