"""Known-bits analysis (LLVM ValueTracking style).

A :class:`KnownBits` fact records, per bit position, whether the bit is
known to be 0, known to be 1, or unknown.  Transfer functions mirror the
*term semantics* of :mod:`repro.smt.terms` (wrapped arithmetic, shifts
folding to zero at or beyond the width, the division-by-zero folds) so a
fact is valid for every assignment of the underlying SMT encoding, not
just for UB-free executions.  When both operands are fully known the
transfer delegates to the smart constructors' constant folding, which
keeps the two semantics identical by construction.

The same transfer functions back both the IR-level analysis
(:func:`analyze_known_bits`) and the term-level abstract evaluator in
:mod:`repro.analysis.termfacts`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.framework import RegisterAnalysis, analyze_registers
from repro.ir.function import Function
from repro.ir.instructions import BinOp, Cast, Freeze, ICmp, Select
from repro.ir.types import IntType
from repro.ir.values import ConstantInt
from repro.smt import terms


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass(frozen=True)
class KnownBits:
    """Per-bit knowledge about a ``width``-bit value."""

    width: int
    zeros: int = 0  # mask of bits known to be 0
    ones: int = 0  # mask of bits known to be 1

    @staticmethod
    def top(width: int) -> "KnownBits":
        return KnownBits(width)

    @staticmethod
    def constant(value: int, width: int) -> "KnownBits":
        value &= _mask(width)
        return KnownBits(width, zeros=~value & _mask(width), ones=value)

    @property
    def is_constant(self) -> bool:
        return (self.zeros | self.ones) == _mask(self.width)

    @property
    def value(self) -> Optional[int]:
        return self.ones if self.is_constant else None

    @property
    def umin(self) -> int:
        return self.ones

    @property
    def umax(self) -> int:
        return _mask(self.width) & ~self.zeros

    def join(self, other: "KnownBits") -> "KnownBits":
        assert self.width == other.width
        return KnownBits(
            self.width, zeros=self.zeros & other.zeros, ones=self.ones & other.ones
        )

    def agrees_with(self, value: int) -> bool:
        """True iff a concrete ``value`` is compatible with this fact."""
        value &= _mask(self.width)
        return (value & self.zeros) == 0 and (value & self.ones) == self.ones


# -- transfer functions -------------------------------------------------------
#
# Each takes KnownBits operands and returns KnownBits of the result.  All
# of them first try exact constant folding through the interned-term
# smart constructors so the semantics cannot drift from the encoder's.

_TERM_BINOP = {
    "add": terms.bv_add,
    "sub": terms.bv_sub,
    "mul": terms.bv_mul,
    "udiv": terms.bv_udiv,
    "urem": terms.bv_urem,
    "sdiv": terms.bv_sdiv,
    "srem": terms.bv_srem,
    "and": terms.bv_and,
    "or": terms.bv_or,
    "xor": terms.bv_xor,
    "shl": terms.bv_shl,
    "lshr": terms.bv_lshr,
    "ashr": terms.bv_ashr,
}


def concrete_binop(op: str, x: int, y: int, width: int) -> int:
    """Fold ``x op y`` with exactly the term-DSL semantics."""
    folded = _TERM_BINOP[op](
        terms.bv_const(x, width), terms.bv_const(y, width)
    )
    assert folded.op == "const"
    return folded.payload


def kb_binop(op: str, a: KnownBits, b: KnownBits) -> KnownBits:
    w = a.width
    if a.is_constant and b.is_constant:
        return KnownBits.constant(concrete_binop(op, a.value, b.value, w), w)
    if op == "and":
        return KnownBits(w, zeros=a.zeros | b.zeros, ones=a.ones & b.ones)
    if op == "or":
        return KnownBits(w, zeros=a.zeros & b.zeros, ones=a.ones | b.ones)
    if op == "xor":
        known = (a.zeros | a.ones) & (b.zeros | b.ones)
        value = (a.ones ^ b.ones) & known
        return KnownBits(w, zeros=known & ~value & _mask(w), ones=value)
    if op in ("add", "sub"):
        return _kb_addsub(a, b, subtract=(op == "sub"))
    if op == "mul":
        # Trailing zeros add up; nothing else is tracked.
        tz = _trailing_zeros(a) + _trailing_zeros(b)
        if tz >= w:
            return KnownBits.constant(0, w)
        return KnownBits(w, zeros=_mask(min(tz, w)), ones=0)
    if op == "shl" and b.is_constant:
        sh = b.value
        if sh >= w:
            return KnownBits.constant(0, w)
        return KnownBits(
            w,
            zeros=((a.zeros << sh) | _mask(sh)) & _mask(w),
            ones=(a.ones << sh) & _mask(w),
        )
    if op == "lshr" and b.is_constant:
        sh = b.value
        if sh >= w:
            return KnownBits.constant(0, w)
        high = _mask(w) & ~(_mask(w) >> sh)
        return KnownBits(w, zeros=(a.zeros >> sh) | high, ones=a.ones >> sh)
    if op == "ashr" and b.is_constant:
        sh = b.value
        sign_bit = 1 << (w - 1)
        if sh >= w:
            # Term semantics: replicate the sign bit everywhere.
            if a.zeros & sign_bit:
                return KnownBits.constant(0, w)
            if a.ones & sign_bit:
                return KnownBits.constant(_mask(w), w)
            return KnownBits.top(w)
        high = _mask(w) & ~(_mask(w) >> sh)
        zeros = a.zeros >> sh
        ones = a.ones >> sh
        if a.zeros & sign_bit:
            zeros |= high
        elif a.ones & sign_bit:
            ones |= high
        else:
            high = 0
        return KnownBits(w, zeros=zeros & _mask(w), ones=ones & _mask(w))
    if op == "udiv" and b.is_constant and b.value not in (0, None):
        # result <= x / lb: known leading zeros survive.
        lead = _leading_zeros(a)
        extra = (b.value.bit_length() - 1) if b.value else 0
        lz = min(w, lead + extra)
        return KnownBits(w, zeros=_mask(w) & ~(_mask(w) >> lz), ones=0)
    if op == "urem" and b.is_constant and b.value not in (0, None):
        bound = b.value - 1
        lz = w - bound.bit_length()
        return KnownBits(w, zeros=_mask(w) & ~(_mask(w) >> lz), ones=0)
    return KnownBits.top(w)


def _kb_addsub(a: KnownBits, b: KnownBits, subtract: bool) -> KnownBits:
    """Ripple-carry propagation of known bits through add/sub."""
    w = a.width
    if subtract:
        # a - b == a + ~b + 1: flip b's knowledge and seed the carry.
        b = KnownBits(w, zeros=b.ones, ones=b.zeros)
        carry_one, carry_zero = True, False
    else:
        carry_one, carry_zero = False, True
    zeros = ones = 0
    for i in range(w):
        bit = 1 << i
        a_known = bool((a.zeros | a.ones) & bit)
        b_known = bool((b.zeros | b.ones) & bit)
        if not (a_known and b_known and (carry_one or carry_zero)):
            # Unknown inputs poison the carry chain from here up.
            carry_one = carry_zero = False
            continue
        av = bool(a.ones & bit)
        bv = bool(b.ones & bit)
        cv = carry_one
        total = int(av) + int(bv) + int(cv)
        if total & 1:
            ones |= bit
        else:
            zeros |= bit
        carry_one = total >= 2
        carry_zero = not carry_one
    return KnownBits(w, zeros=zeros, ones=ones)


def _trailing_zeros(a: KnownBits) -> int:
    count = 0
    for i in range(a.width):
        if a.zeros & (1 << i):
            count += 1
        else:
            break
    return count


def _leading_zeros(a: KnownBits) -> int:
    count = 0
    for i in reversed(range(a.width)):
        if a.zeros & (1 << i):
            count += 1
        else:
            break
    return count


def kb_zext(a: KnownBits, width: int) -> KnownBits:
    ext = _mask(width) & ~_mask(a.width)
    return KnownBits(width, zeros=a.zeros | ext, ones=a.ones)


def kb_sext(a: KnownBits, width: int) -> KnownBits:
    sign_bit = 1 << (a.width - 1)
    ext = _mask(width) & ~_mask(a.width)
    zeros, ones = a.zeros, a.ones
    if zeros & sign_bit:
        zeros |= ext
    elif ones & sign_bit:
        ones |= ext
    return KnownBits(width, zeros=zeros, ones=ones)


def kb_extract(a: KnownBits, hi: int, lo: int) -> KnownBits:
    width = hi - lo + 1
    return KnownBits(
        width, zeros=(a.zeros >> lo) & _mask(width), ones=(a.ones >> lo) & _mask(width)
    )


def kb_concat(hi: KnownBits, lo: KnownBits) -> KnownBits:
    width = hi.width + lo.width
    return KnownBits(
        width,
        zeros=(hi.zeros << lo.width) | lo.zeros,
        ones=(hi.ones << lo.width) | lo.ones,
    )


def kb_not(a: KnownBits) -> KnownBits:
    return KnownBits(a.width, zeros=a.ones, ones=a.zeros)


def kb_neg(a: KnownBits) -> KnownBits:
    return _kb_addsub(KnownBits.constant(0, a.width), a, subtract=True)


def kb_icmp(pred: str, a: KnownBits, b: KnownBits) -> Optional[bool]:
    """Decide an integer comparison from known bits, if possible."""
    if a.is_constant and b.is_constant:
        folded = _ICMP_TERM[pred](
            terms.bv_const(a.value, a.width), terms.bv_const(b.value, b.width)
        )
        return bool(folded.payload) if folded.op == "const" else None
    if pred in ("eq", "ne"):
        conflict = (a.ones & b.zeros) | (a.zeros & b.ones)
        if conflict:
            return pred == "ne"
        return None
    if pred in ("ult", "ugt", "ule", "uge"):
        lhs_lo, lhs_hi = a.umin, a.umax
        rhs_lo, rhs_hi = b.umin, b.umax
        if pred == "ugt":
            lhs_lo, lhs_hi, rhs_lo, rhs_hi = rhs_lo, rhs_hi, lhs_lo, lhs_hi
            pred = "ult"
        if pred == "uge":
            lhs_lo, lhs_hi, rhs_lo, rhs_hi = rhs_lo, rhs_hi, lhs_lo, lhs_hi
            pred = "ule"
        if pred == "ult":
            if lhs_hi < rhs_lo:
                return True
            if lhs_lo >= rhs_hi:
                return False
        else:  # ule
            if lhs_hi <= rhs_lo:
                return True
            if lhs_lo > rhs_hi:
                return False
    return None


_ICMP_TERM = {
    "eq": terms.bv_eq,
    "ne": lambda x, y: terms.bool_not(terms.bv_eq(x, y)),
    "ult": terms.bv_ult,
    "ule": terms.bv_ule,
    "ugt": lambda x, y: terms.bv_ult(y, x),
    "uge": lambda x, y: terms.bv_ule(y, x),
    "slt": terms.bv_slt,
    "sle": terms.bv_sle,
    "sgt": lambda x, y: terms.bv_slt(y, x),
    "sge": lambda x, y: terms.bv_sle(y, x),
}


# -- the IR-level analysis ----------------------------------------------------


class KnownBitsAnalysis(RegisterAnalysis):
    """Forward known-bits over integer registers; others stay ``None``."""

    def top(self):
        return None

    def join(self, a, b):
        if a is None or b is None or a.width != b.width:
            return None
        return a.join(b)

    def fact_of_argument(self, arg):
        if isinstance(arg.type, IntType):
            return KnownBits.top(arg.type.width)
        return None

    def fact_of_constant(self, value):
        if isinstance(value, ConstantInt) and isinstance(value.type, IntType):
            return KnownBits.constant(value.value, value.type.width)
        return None

    def transfer(self, inst, env):
        ty = getattr(inst, "type", None)
        if not isinstance(ty, IntType):
            return None
        w = ty.width
        if isinstance(inst, BinOp):
            a = self.value_fact(inst.lhs, env)
            b = self.value_fact(inst.rhs, env)
            if a is None or b is None or a.width != w or b.width != w:
                return None
            return kb_binop(inst.opcode, a, b)
        if isinstance(inst, ICmp):
            lhs_ty = getattr(inst.lhs, "type", None)
            if not isinstance(lhs_ty, IntType):
                return None
            a = self.value_fact(inst.lhs, env)
            b = self.value_fact(inst.rhs, env)
            if a is None or b is None or a.width != b.width:
                return KnownBits.top(1)
            decided = kb_icmp(inst.pred, a, b)
            if decided is None:
                return KnownBits.top(1)
            return KnownBits.constant(int(decided), 1)
        if isinstance(inst, Select):
            t = self.value_fact(inst.on_true, env)
            f = self.value_fact(inst.on_false, env)
            return self.join(t, f)
        if isinstance(inst, Cast):
            src_ty = getattr(inst.operand, "type", None)
            if not isinstance(src_ty, IntType):
                return None
            a = self.value_fact(inst.operand, env)
            if a is None or a.width != src_ty.width:
                return None
            if inst.opcode == "zext":
                return kb_zext(a, w)
            if inst.opcode == "sext":
                return kb_sext(a, w)
            if inst.opcode == "trunc":
                return kb_extract(a, w - 1, 0)
            if inst.opcode == "bitcast" and a.width == w:
                return a
            return None
        if isinstance(inst, Freeze):
            # freeze of poison/undef may take any value: a typed top (so
            # downstream transfers still fire), never the operand's fact.
            return KnownBits.top(w)
        return None


def analyze_known_bits(fn: Function) -> Dict[str, Optional[KnownBits]]:
    """Known bits for every integer register of ``fn`` (None = no info)."""
    return analyze_registers(fn, KnownBitsAnalysis())
