"""Static analysis over the IR: dataflow facts, linting, prescreening.

The package has three layers (see DESIGN.md):

* :mod:`repro.analysis.framework` — a generic worklist dataflow solver,
  with :mod:`repro.analysis.knownbits`, :mod:`repro.analysis.range`, and
  :mod:`repro.analysis.poison` as the concrete analyses;
* :mod:`repro.analysis.verify` — the IR verifier/linter behind the
  ``alive-lint`` console script and the harness's pre-verification gate;
* :mod:`repro.analysis.termfacts` / :mod:`repro.analysis.prescreen` —
  abstract evaluation of SMT terms and the solver-bypass rules used by
  :mod:`repro.refinement.check`;
* :mod:`repro.analysis.pointsto` / :mod:`repro.analysis.memdf` — the
  memory-aware layer: block-provenance facts for every pointer SSA
  value and the store/load dataflow (forwarding, clobber sets, access
  classification) feeding the memory prescreen rules and the encoder's
  aliasing-case-split pruning.
"""

from repro.analysis.framework import (
    DataflowAnalysis,
    LivenessAnalysis,
    RegisterAnalysis,
    analyze_registers,
    solve,
)
from repro.analysis.knownbits import KnownBits, analyze_known_bits
from repro.analysis.memdf import STATS as MEMDF_STATS
from repro.analysis.memdf import MemDF, analyze_memdf
from repro.analysis.pointsto import (
    PointsToFact,
    analyze_pointsto,
    assign_alloca_bids,
)
from repro.analysis.poison import analyze_poison, returns_poison_free
from repro.analysis.prescreen import STATS as PRESCREEN_STATS
from repro.analysis.prescreen import Prescreener, memdf_rule_hits
from repro.analysis.range import IntRange, analyze_ranges
from repro.analysis.verify import (
    LINT_STATS,
    LintDiagnostic,
    lint_function,
    lint_module,
)

__all__ = [
    "DataflowAnalysis",
    "RegisterAnalysis",
    "LivenessAnalysis",
    "analyze_registers",
    "solve",
    "KnownBits",
    "analyze_known_bits",
    "IntRange",
    "analyze_ranges",
    "analyze_poison",
    "returns_poison_free",
    "PointsToFact",
    "analyze_pointsto",
    "assign_alloca_bids",
    "MemDF",
    "analyze_memdf",
    "MEMDF_STATS",
    "Prescreener",
    "PRESCREEN_STATS",
    "memdf_rule_hits",
    "LINT_STATS",
    "LintDiagnostic",
    "lint_function",
    "lint_module",
]
