"""Unsigned/signed integer range analysis with widening.

Facts are inclusive unsigned intervals ``[umin, umax]``; the signed view
is derived (exact when the interval does not straddle the sign flip).
Transfer functions follow the term semantics of :mod:`repro.smt.terms`
(wrapped arithmetic — an operation that may wrap returns the full
range), so facts hold for every assignment of the SMT encoding.

Unrolled loop chains produce long phi chains (``i``, ``i+1``, ``i+2``,
...) whose joins would otherwise iterate once per loop trip; the
analysis widens to the full range after a few visits of the same block
(:attr:`repro.analysis.framework.DataflowAnalysis.widen_after`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.framework import RegisterAnalysis, analyze_registers
from repro.analysis.knownbits import concrete_binop
from repro.ir.function import Function
from repro.ir.instructions import BinOp, Cast, Freeze, ICmp, Select
from repro.ir.types import IntType
from repro.ir.values import ConstantInt


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass(frozen=True)
class IntRange:
    """An inclusive unsigned interval over ``width``-bit values."""

    width: int
    umin: int
    umax: int

    @staticmethod
    def full(width: int) -> "IntRange":
        return IntRange(width, 0, _mask(width))

    @staticmethod
    def constant(value: int, width: int) -> "IntRange":
        value &= _mask(width)
        return IntRange(width, value, value)

    @property
    def is_full(self) -> bool:
        return self.umin == 0 and self.umax == _mask(self.width)

    @property
    def is_constant(self) -> bool:
        return self.umin == self.umax

    @property
    def smin(self) -> int:
        """Signed lower bound (exact unless the range straddles the flip)."""
        half = 1 << (self.width - 1)
        if self.umax < half or self.umin >= half:
            return self.umin - (1 << self.width) if self.umin >= half else self.umin
        return -half

    @property
    def smax(self) -> int:
        half = 1 << (self.width - 1)
        if self.umax < half or self.umin >= half:
            return self.umax - (1 << self.width) if self.umax >= half else self.umax
        return half - 1

    def join(self, other: "IntRange") -> "IntRange":
        assert self.width == other.width
        return IntRange(
            self.width, min(self.umin, other.umin), max(self.umax, other.umax)
        )

    def contains(self, value: int) -> bool:
        return self.umin <= (value & _mask(self.width)) <= self.umax


def range_binop(op: str, a: IntRange, b: IntRange) -> IntRange:
    """Sound interval transfer matching the term-DSL fold semantics."""
    w = a.width
    mask = _mask(w)
    if a.is_constant and b.is_constant:
        return IntRange.constant(concrete_binop(op, a.umin, b.umin, w), w)
    if op == "add":
        if a.umax + b.umax <= mask:
            return IntRange(w, a.umin + b.umin, a.umax + b.umax)
        return IntRange.full(w)
    if op == "sub":
        if a.umin >= b.umax:
            return IntRange(w, a.umin - b.umax, a.umax - b.umin)
        return IntRange.full(w)
    if op == "mul":
        if a.umax * b.umax <= mask:
            return IntRange(w, a.umin * b.umin, a.umax * b.umax)
        return IntRange.full(w)
    if op == "and":
        return IntRange(w, 0, min(a.umax, b.umax))
    if op == "or":
        hi = (1 << max(a.umax.bit_length(), b.umax.bit_length())) - 1
        return IntRange(w, max(a.umin, b.umin), min(mask, hi))
    if op == "xor":
        hi = (1 << max(a.umax.bit_length(), b.umax.bit_length())) - 1
        return IntRange(w, 0, min(mask, hi))
    if op == "udiv":
        if b.umin >= 1:
            return IntRange(w, a.umin // b.umax, a.umax // b.umin)
        return IntRange.full(w)  # division by zero folds to all-ones
    if op == "urem":
        if b.umin >= 1:
            return IntRange(w, 0, min(a.umax, b.umax - 1))
        return IntRange(w, 0, a.umax)  # x urem 0 folds to x
    if op == "shl":
        if b.umax < w and a.umax << b.umax <= mask:
            return IntRange(w, a.umin << b.umin, a.umax << b.umax)
        return IntRange.full(w)
    if op == "lshr":
        lo = 0 if b.umax >= w else a.umin >> b.umax
        return IntRange(w, lo, a.umax >> min(b.umin, w))
    return IntRange.full(w)


def range_icmp(pred: str, a: IntRange, b: IntRange) -> Optional[bool]:
    """Decide a comparison from unsigned/signed bounds, if possible."""
    unsigned: Dict[str, Tuple[int, int, int, int]] = {
        "ult": (a.umin, a.umax, b.umin, b.umax),
        "ugt": (b.umin, b.umax, a.umin, a.umax),
        "slt": (a.smin, a.smax, b.smin, b.smax),
        "sgt": (b.smin, b.smax, a.smin, a.smax),
    }
    strict = unsigned.get(pred)
    if strict is not None:
        lhs_lo, lhs_hi, rhs_lo, rhs_hi = strict
        if lhs_hi < rhs_lo:
            return True
        if lhs_lo >= rhs_hi:
            return False
        return None
    weak: Dict[str, Tuple[int, int, int, int]] = {
        "ule": (a.umin, a.umax, b.umin, b.umax),
        "uge": (b.umin, b.umax, a.umin, a.umax),
        "sle": (a.smin, a.smax, b.smin, b.smax),
        "sge": (b.smin, b.smax, a.smin, a.smax),
    }
    entry = weak.get(pred)
    if entry is not None:
        lhs_lo, lhs_hi, rhs_lo, rhs_hi = entry
        if lhs_hi <= rhs_lo:
            return True
        if lhs_lo > rhs_hi:
            return False
        return None
    if pred == "eq" or pred == "ne":
        if a.umax < b.umin or b.umax < a.umin:
            return pred == "ne"
        if a.is_constant and b.is_constant and a.umin == b.umin:
            return pred == "eq"
    return None


class RangeAnalysis(RegisterAnalysis):
    """Forward interval analysis over integer registers."""

    def top(self):
        return None

    def join(self, a, b):
        if a is None or b is None or a.width != b.width:
            return None
        return a.join(b)

    def widen_fact(self, old, new):
        if old is None or new is None or old.width != new.width:
            return None
        # Widen each moving bound straight to its extreme.
        umin = old.umin if new.umin >= old.umin else 0
        umax = old.umax if new.umax <= old.umax else _mask(old.width)
        return IntRange(old.width, umin, umax)

    def fact_of_argument(self, arg):
        if isinstance(arg.type, IntType):
            return IntRange.full(arg.type.width)
        return None

    def fact_of_constant(self, value):
        if isinstance(value, ConstantInt) and isinstance(value.type, IntType):
            return IntRange.constant(value.value, value.type.width)
        return None

    def transfer(self, inst, env):
        ty = getattr(inst, "type", None)
        if not isinstance(ty, IntType):
            return None
        w = ty.width
        if isinstance(inst, BinOp):
            a = self.value_fact(inst.lhs, env)
            b = self.value_fact(inst.rhs, env)
            if a is None or b is None or a.width != w or b.width != w:
                return None
            return range_binop(inst.opcode, a, b)
        if isinstance(inst, ICmp):
            lhs_ty = getattr(inst.lhs, "type", None)
            if not isinstance(lhs_ty, IntType):
                return None
            a = self.value_fact(inst.lhs, env)
            b = self.value_fact(inst.rhs, env)
            if a is None or b is None or a.width != b.width:
                return IntRange.full(1)
            decided = range_icmp(inst.pred, a, b)
            if decided is None:
                return IntRange.full(1)
            return IntRange.constant(int(decided), 1)
        if isinstance(inst, Select):
            return self.join(
                self.value_fact(inst.on_true, env),
                self.value_fact(inst.on_false, env),
            )
        if isinstance(inst, Cast):
            src_ty = getattr(inst.operand, "type", None)
            if not isinstance(src_ty, IntType):
                return None
            a = self.value_fact(inst.operand, env)
            if a is None or a.width != src_ty.width:
                return None
            if inst.opcode == "zext":
                return IntRange(w, a.umin, a.umax)
            if inst.opcode == "trunc":
                if a.umax <= _mask(w):
                    return IntRange(w, a.umin, a.umax)
                return IntRange.full(w)
            if inst.opcode == "bitcast" and a.width == w:
                return a
            return None
        if isinstance(inst, Freeze):
            # freeze of poison/undef may take any value: a typed top (so
            # downstream transfers still fire), never the operand's fact.
            return IntRange.full(w)
        return None


def analyze_ranges(fn: Function) -> Dict[str, Optional[IntRange]]:
    """Unsigned interval for every integer register (None = no info)."""
    return analyze_registers(fn, RangeAnalysis())
