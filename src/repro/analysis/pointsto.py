"""Flow-sensitive points-to/provenance analysis over memory-layout blocks.

Each pointer-typed SSA value is mapped to an abstract location: the set
of :class:`~repro.semantics.memory.MemoryLayout` block-ids it may carry
(``None`` meaning "any block") plus a concrete byte-offset interval
(``None`` meaning "any offset").  The domain rides on the
:mod:`repro.analysis.framework` worklist solver; joins union the bid
sets and hull the offset intervals, and widening collapses the offset
interval (the bid lattice is finite, so it needs no acceleration).

Soundness contract (relied on by :mod:`repro.analysis.memdf`, the
prescreen rules, and the encoder's aliasing-case-split pruning): for
every execution that satisfies the encoder's precondition (pointer
arguments carry ``bid == 0 ∨ bid == own-block``) and in which the
analyzed value is *defined* (not poison, not an unresolved undef
reading), the value's concrete (bid, offset) lies inside the abstract
location.  Values the analysis cannot track — loaded pointers, call
results, int-to-pointer casts — map to ⊤, never to a smaller set.

Block numbering for allocas is assigned *syntactically* here (reverse
postorder, instruction order) via :func:`assign_alloca_bids`, and the
encoder uses the same assignment, so the facts and the SMT encoding
agree by construction.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.analysis.framework import RegisterAnalysis, analyze_registers
from repro.ir.cfg import reverse_postorder
from repro.ir.function import Function
from repro.ir.instructions import Alloca, Gep, Load, Select
from repro.ir.types import ArrayType, IntType, PointerType, VectorType, byte_size
from repro.ir.values import ConstantInt, ConstantNull, GlobalRef, Register
from repro.semantics.memory import MemoryLayout
from repro.smt import terms


@dataclass(frozen=True)
class PointsToFact:
    """Abstract location: candidate block-ids × byte-offset interval.

    ``bids is None`` means any block (⊤); ``off is None`` means any
    offset.  ``off`` is a closed interval ``(lo, hi)`` of byte offsets
    measured from the block base, in Python ints (GEPs can go negative).
    """

    bids: Optional[FrozenSet[int]]
    off: Optional[Tuple[int, int]] = None

    @property
    def is_top(self) -> bool:
        return self.bids is None

    def shifted(self, delta: Optional[int]) -> "PointsToFact":
        """The fact after adding a (possibly unknown) byte delta."""
        if delta is None or self.off is None:
            return PointsToFact(self.bids, None)
        return PointsToFact(self.bids, (self.off[0] + delta, self.off[1] + delta))

    def join(self, other: "PointsToFact") -> "PointsToFact":
        if self.bids is None or other.bids is None:
            bids = None
        else:
            bids = self.bids | other.bids
        if self.off is None or other.off is None:
            off = None
        else:
            off = (
                min(self.off[0], other.off[0]),
                max(self.off[1], other.off[1]),
            )
        return PointsToFact(bids, off)

    def may_overlap(self, other: "PointsToFact", nbytes: int, other_nbytes: int) -> bool:
        """May an ``nbytes`` access at self overlap an ``other_nbytes``
        access at ``other``?

        Accesses through the null block (bid 0) are UB, so bid 0 never
        witnesses an overlap between two *executed, defined* accesses.
        """
        if self.bids is None or other.bids is None:
            return True
        common = (self.bids & other.bids) - {0}
        if not common:
            return False
        if self.off is None or other.off is None:
            return True
        # Same candidate block: disjoint iff the byte ranges cannot touch.
        return not (
            self.off[1] + nbytes <= other.off[0]
            or other.off[1] + other_nbytes <= self.off[0]
        )


TOP = PointsToFact(None, None)


def assign_alloca_bids(fn: Function, layout: MemoryLayout) -> Dict[str, int]:
    """Deterministic alloca → block-id assignment shared with the encoder.

    Allocas are numbered from ``layout.first_local_bid()`` in reverse
    postorder, instruction order — the same order the encoder walks, so
    the analysis and the SMT encoding name the same blocks.  Allocas in
    unreachable blocks get no bid (the encoder never reaches them).
    """
    bids: Dict[str, int] = {}
    next_bid = layout.first_local_bid()
    for label in reverse_postorder(fn):
        for inst in fn.blocks[label].instructions:
            if isinstance(inst, Alloca):
                bids[inst.name] = next_bid
                next_bid += 1
    return bids


class PointsToAnalysis(RegisterAnalysis):
    """The provenance domain over :class:`PointsToFact` (see module doc)."""

    def __init__(self, fn: Function, layout: MemoryLayout) -> None:
        self.layout = layout
        self.alloca_bids = assign_alloca_bids(fn, layout)
        self.shared_bids: Dict[str, int] = {
            info.name: info.bid for info in layout.shared_blocks
        }

    def top(self) -> PointsToFact:
        return TOP

    def join(self, a: PointsToFact, b: PointsToFact) -> PointsToFact:
        return a.join(b)

    def widen_fact(self, old: PointsToFact, new: PointsToFact) -> PointsToFact:
        joined = old.join(new)
        if joined.off is not None and old.off is not None and joined.off != old.off:
            # The bid lattice is finite but offsets are not: collapse the
            # interval once it keeps growing.
            return PointsToFact(joined.bids, None)
        return joined

    def fact_of_argument(self, arg) -> PointsToFact:
        if isinstance(arg.type, PointerType):
            bid = self.shared_bids.get(f"%{arg.name}")
            if bid is not None:
                # The encoder's precondition pins a defined pointer arg to
                # null or its own block; the offset is caller-chosen.
                return PointsToFact(frozenset({0, bid}), None)
        return TOP

    def fact_of_constant(self, value) -> PointsToFact:
        if isinstance(value, ConstantNull):
            return PointsToFact(frozenset({0}), (0, 0))
        if isinstance(value, GlobalRef):
            bid = self.shared_bids.get(f"@{value.name}")
            if bid is not None:
                return PointsToFact(frozenset({bid}), (0, 0))
        return TOP

    def transfer(self, inst, env: Dict[str, PointsToFact]) -> PointsToFact:
        if isinstance(inst, Alloca):
            bid = self.alloca_bids.get(inst.name)
            if bid is not None:
                return PointsToFact(frozenset({bid}), (0, 0))
            return TOP
        if isinstance(inst, Gep):
            base = self.value_fact(inst.pointer, env)
            return base.shifted(_gep_delta(inst))
        if isinstance(inst, Select):
            return self.value_fact(inst.on_true, env).join(
                self.value_fact(inst.on_false, env)
            )
        if isinstance(inst, Load):
            # Loaded pointers carry provenance the domain does not track.
            return TOP
        return TOP


def _gep_delta(inst: Gep) -> Optional[int]:
    """Total byte delta of a GEP when every index is a constant."""
    total = 0
    scale = byte_size(inst.source_type)
    src = inst.source_type
    for idx_value in inst.indices:
        if not isinstance(idx_value, ConstantInt):
            return None
        idx = idx_value.value
        ty = idx_value.type
        if isinstance(ty, IntType) and idx >= 1 << (ty.width - 1):
            idx -= 1 << ty.width
        total += idx * scale
        if isinstance(src, (ArrayType, VectorType)):
            src = src.elem
            scale = byte_size(src)
    return total


# Facts are memoized per (function, layout) pair: the encoder, the memory
# dataflow pass, and the prescreen all consume the same run.  Function
# objects are unhashable, so the table is keyed by id() with a weakref
# guard against id reuse, and registered with the term-intern reset hook
# so warm-pool workers can never leak facts across tests.
_POINTSTO_CACHE: Dict[int, Tuple["weakref.ref", MemoryLayout, Dict[str, PointsToFact]]] = {}


@terms.on_reset
def _clear_pointsto_cache() -> None:
    _POINTSTO_CACHE.clear()


def analyze_pointsto(
    fn: Function, layout: MemoryLayout
) -> Dict[str, PointsToFact]:
    """Fixpoint register → :class:`PointsToFact` map for ``fn``."""
    cached = _POINTSTO_CACHE.get(id(fn))
    if cached is not None and cached[0]() is fn and cached[1] is layout:
        return cached[2]
    facts = analyze_registers(fn, PointsToAnalysis(fn, layout))
    _POINTSTO_CACHE[id(fn)] = (weakref.ref(fn), layout, facts)
    return facts
