"""IR verifier/linter: SSA, type, and CFG well-formedness checks.

Errors are properties a sound encoder must be able to assume (defs
dominate uses, phi entries match predecessors, operands have the types
the opcode requires); the verification harness gates on them so
malformed input surfaces as a precise diagnostic instead of an opaque
``EncodeError``/CRASH deep inside the encoder.  Warnings flag suspect
but encodable IR: unreachable blocks and certain-UB/always-poison
instructions like ``udiv %x, 0``.

Also exported as the ``alive-lint`` console script (see ``main``).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ir.cfg import reachable_blocks
from repro.ir.dominators import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Br,
    Cast,
    FBinOp,
    FCmp,
    Gep,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
)
from repro.ir.module import Module
from repro.ir.types import FloatType, IntType, PointerType, VoidType
from repro.ir.values import ConstantInt, Register, Value

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class LintDiagnostic:
    """One finding; always names the function, block, and instruction."""

    level: str  # ERROR or WARNING
    code: str  # stable machine-readable kind, e.g. "phi-missing-pred"
    function: str
    block: Optional[str]
    instruction: Optional[str]  # printed form of the offending instruction
    message: str

    def __str__(self) -> str:
        where = f"@{self.function}"
        if self.block is not None:
            where += f", block %{self.block}"
        text = f"{self.level}[{self.code}] {where}: {self.message}"
        if self.instruction is not None:
            text += f"\n    --> {self.instruction}"
        return text


@dataclass
class LintStats:
    """Module-level counters; the suite snapshots deltas per test."""

    functions: int = 0
    errors: int = 0
    warnings: int = 0

    def reset(self) -> None:
        self.functions = self.errors = self.warnings = 0


LINT_STATS = LintStats()


class _FunctionLinter:
    def __init__(self, fn: Function, module: Optional[Module] = None):
        self.fn = fn
        self.module = module
        self.diags: List[LintDiagnostic] = []

    def report(
        self,
        level: str,
        code: str,
        message: str,
        block: Optional[str] = None,
        inst: Optional[Instruction] = None,
    ) -> None:
        self.diags.append(
            LintDiagnostic(
                level=level,
                code=code,
                function=self.fn.name,
                block=block,
                instruction=repr(inst) if inst is not None else None,
                message=message,
            )
        )

    # -- CFG shape -----------------------------------------------------------
    def check_cfg(self) -> bool:
        """Structural checks; returns False if the CFG is too broken for
        the dominance pass to run at all."""
        fn = self.fn
        ok = True
        for label in getattr(fn, "duplicate_labels", ()):
            self.report(
                ERROR,
                "dup-block-label",
                f"block label %{label} is defined more than once "
                f"(the later definition silently replaced the earlier one)",
                block=label,
            )
            ok = False
        for label, block in fn.blocks.items():
            if block.terminator is None:
                self.report(
                    ERROR,
                    "no-terminator",
                    f"block %{label} does not end in a terminator",
                    block=label,
                    inst=block.instructions[-1] if block.instructions else None,
                )
                ok = False
            for inst in block.instructions[:-1]:
                if inst.is_terminator():
                    self.report(
                        ERROR,
                        "terminator-position",
                        f"terminator in the middle of block %{label}",
                        block=label,
                        inst=inst,
                    )
                    ok = False
            seen_non_phi = False
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    if seen_non_phi:
                        self.report(
                            ERROR,
                            "phi-position",
                            f"phi after a non-phi instruction in block %{label}",
                            block=label,
                            inst=inst,
                        )
                else:
                    seen_non_phi = True
            for succ in block.successors():
                if succ not in fn.blocks:
                    self.report(
                        ERROR,
                        "bad-target",
                        f"branch targets unknown block %{succ}",
                        block=label,
                        inst=block.terminator,
                    )
                    ok = False
        entry_label = next(iter(self.fn.blocks))
        preds = fn.predecessors()
        if preds[entry_label]:
            self.report(
                ERROR,
                "entry-pred",
                f"entry block %{entry_label} has predecessors "
                f"({', '.join('%' + p for p in preds[entry_label])})",
                block=entry_label,
            )
        for label, block in fn.blocks.items():
            expected = preds[label]
            for phi in block.phis():
                have = [b for _, b in phi.incoming]
                if len(have) != len(expected):
                    self.report(
                        ERROR,
                        "phi-entry-count",
                        f"phi %{phi.name} has {len(have)} incoming "
                        f"entr{'y' if len(have) == 1 else 'ies'} but block "
                        f"%{label} has {len(expected)} predecessor"
                        f"{'' if len(expected) == 1 else 's'}",
                        block=label,
                        inst=phi,
                    )
                for pred in expected:
                    if pred not in have:
                        self.report(
                            ERROR,
                            "phi-missing-pred",
                            f"phi %{phi.name} has no entry for predecessor "
                            f"%{pred} of block %{label}",
                            block=label,
                            inst=phi,
                        )
                seen: set = set()
                for _, b in phi.incoming:
                    if b not in expected:
                        self.report(
                            ERROR,
                            "phi-extra-pred",
                            f"phi %{phi.name} has an entry for %{b}, which is "
                            f"not a predecessor of block %{label}",
                            block=label,
                            inst=phi,
                        )
                    elif b in seen:
                        self.report(
                            ERROR,
                            "phi-duplicate-pred",
                            f"phi %{phi.name} lists predecessor %{b} twice",
                            block=label,
                            inst=phi,
                        )
                    seen.add(b)
        return ok

    # -- SSA form ------------------------------------------------------------
    def check_ssa(self) -> None:
        fn = self.fn
        arg_names = {a.name for a in fn.args}
        def_site: Dict[str, tuple] = {}  # name -> (label, index, inst)
        for label, block in fn.blocks.items():
            for idx, inst in enumerate(block.instructions):
                name = getattr(inst, "name", None)
                if name is None:
                    continue
                if name in arg_names:
                    self.report(
                        ERROR,
                        "duplicate-def",
                        f"%{name} redefines a function argument",
                        block=label,
                        inst=inst,
                    )
                elif name in def_site:
                    self.report(
                        ERROR,
                        "duplicate-def",
                        f"%{name} is defined more than once "
                        f"(first in block %{def_site[name][0]})",
                        block=label,
                        inst=inst,
                    )
                else:
                    def_site[name] = (label, idx, inst)

        reachable = reachable_blocks(fn)
        try:
            dom = DominatorTree(fn)
        except (KeyError, IndexError):  # degenerate CFG already reported
            return

        def check_use(
            name: str, use_label: str, use_idx: int, inst: Instruction
        ) -> None:
            if name in arg_names:
                return
            site = def_site.get(name)
            if site is None:
                self.report(
                    ERROR,
                    "undefined-value",
                    f"use of undefined value %{name}",
                    block=use_label,
                    inst=inst,
                )
                return
            def_label, def_idx, _ = site
            if def_label == use_label:
                dominated = def_idx < use_idx
            elif def_label in reachable and use_label in reachable:
                dominated = dom.dominates(def_label, use_label)
            else:
                return  # unreachable code is only warned about
            if not dominated:
                self.report(
                    ERROR,
                    "dominance",
                    f"use of %{name} in block %{use_label} is not dominated "
                    f"by its definition in block %{def_label}",
                    block=use_label,
                    inst=inst,
                )

        for label, block in fn.blocks.items():
            for idx, inst in enumerate(block.instructions):
                if isinstance(inst, Phi):
                    # A phi use happens on the incoming edge: the def must
                    # dominate the *predecessor* block's exit.
                    for value, pred in inst.incoming:
                        if isinstance(value, Register) and pred in fn.blocks:
                            check_use(
                                value.name,
                                pred,
                                len(fn.blocks[pred].instructions),
                                inst,
                            )
                    continue
                for op in inst.operands:
                    if isinstance(op, Register):
                        check_use(op.name, label, idx, inst)

    # -- types ---------------------------------------------------------------
    def _operand_type(self, value: Value):
        return getattr(value, "type", None)

    def _def_type(self, value: Value):
        """The type ``value``'s definition carries (None if untracked)."""
        if not isinstance(value, Register):
            return None
        cached = getattr(self, "_def_types", None)
        if cached is None:
            cached = {a.name: a.type for a in self.fn.args}
            for block in self.fn.blocks.values():
                for inst in block.instructions:
                    name = getattr(inst, "name", None)
                    ty = getattr(inst, "type", None)
                    if name is not None and ty is not None:
                        cached.setdefault(name, ty)
            self._def_types = cached
        return cached.get(value.name)

    def _type_mismatch(
        self,
        label: str,
        inst: Instruction,
        what: str,
        expected,
        actual,
    ) -> None:
        self.report(
            ERROR,
            "type-mismatch",
            f"{what} has type {actual}, expected {expected}",
            block=label,
            inst=inst,
        )

    def check_types(self) -> None:
        fn = self.fn
        for label, block in fn.blocks.items():
            for inst in block.instructions:
                self._check_inst_types(label, inst)
        self._check_use_def_types()

    def _check_use_def_types(self) -> None:
        """Every register use must carry the type of its definition.

        The parser types a use from its annotation at the use site
        (``add i8 %w`` makes ``%w`` an i8 there), so a def/use width
        mismatch is invisible to the per-instruction checks above.
        """
        fn = self.fn
        def_types = {a.name: a.type for a in fn.args}
        for block in fn.blocks.values():
            for inst in block.instructions:
                name = getattr(inst, "name", None)
                ty = getattr(inst, "type", None)
                if name is not None and ty is not None:
                    def_types.setdefault(name, ty)
        for label, block in fn.blocks.items():
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    uses = [v for v, _ in inst.incoming]
                else:
                    uses = list(inst.operands)
                for op in uses:
                    if not isinstance(op, Register):
                        continue
                    declared = def_types.get(op.name)
                    if declared is not None and op.type != declared:
                        self._type_mismatch(
                            label, inst, f"operand %{op.name}", declared, op.type
                        )

    def _check_inst_types(self, label: str, inst: Instruction) -> None:
        fn = self.fn
        if isinstance(inst, (BinOp, FBinOp)):
            for what, op in (("lhs", inst.lhs), ("rhs", inst.rhs)):
                ty = self._operand_type(op)
                if ty is not None and ty != inst.type:
                    self._type_mismatch(
                        label, inst, f"{inst.opcode} {what} operand", inst.type, ty
                    )
            return
        if isinstance(inst, (ICmp, FCmp)):
            lhs_ty = self._operand_type(inst.lhs)
            rhs_ty = self._operand_type(inst.rhs)
            if lhs_ty is not None and rhs_ty is not None and lhs_ty != rhs_ty:
                self._type_mismatch(
                    label, inst, f"{inst.pred} rhs operand", lhs_ty, rhs_ty
                )
            if isinstance(inst, ICmp):
                if lhs_ty is not None and isinstance(lhs_ty, (FloatType, VoidType)):
                    self._type_mismatch(
                        label, inst, "icmp operand", "integer or pointer", lhs_ty
                    )
            return
        if isinstance(inst, Select):
            cond_ty = self._operand_type(inst.cond)
            if cond_ty is not None and cond_ty != IntType(1):
                self._type_mismatch(label, inst, "select condition", "i1", cond_ty)
            for what, op in (("true", inst.on_true), ("false", inst.on_false)):
                ty = self._operand_type(op)
                if ty is not None and ty != inst.type:
                    self._type_mismatch(
                        label, inst, f"select {what} arm", inst.type, ty
                    )
            return
        if isinstance(inst, Phi):
            for value, pred in inst.incoming:
                ty = self._operand_type(value)
                if ty is not None and ty != inst.type:
                    self._type_mismatch(
                        label, inst, f"phi entry from %{pred}", inst.type, ty
                    )
            return
        if isinstance(inst, Br):
            if inst.cond is not None:
                ty = self._operand_type(inst.cond)
                if ty is not None and ty != IntType(1):
                    self._type_mismatch(label, inst, "branch condition", "i1", ty)
            return
        if isinstance(inst, Switch):
            ty = self._operand_type(inst.value)
            if ty is not None and not isinstance(ty, IntType):
                self._type_mismatch(label, inst, "switch value", "integer", ty)
            return
        if isinstance(inst, Ret):
            want = fn.return_type
            if inst.value is None:
                if not isinstance(want, VoidType):
                    self._type_mismatch(label, inst, "return value", want, "void")
            else:
                ty = self._operand_type(inst.value)
                if isinstance(want, VoidType):
                    self._type_mismatch(label, inst, "return value", "void", ty)
                elif ty is not None and ty != want:
                    self._type_mismatch(label, inst, "return value", want, ty)
            return
        if isinstance(inst, (Load, Store, Gep)):
            ptr = inst.pointer
            # The parser annotates the use site as ptr regardless of the
            # operand's definition, so resolve the defined type first.
            ty = self._def_type(ptr) or self._operand_type(ptr)
            if ty is not None and not isinstance(ty, PointerType):
                if isinstance(inst, Gep):
                    # Dedicated memory-rule code: pointer arithmetic on a
                    # non-pointer has no block provenance at all.
                    self.report(
                        ERROR,
                        "gep-non-pointer",
                        f"gep pointer operand has type {ty}, expected ptr",
                        block=label,
                        inst=inst,
                    )
                else:
                    self._type_mismatch(
                        label, inst, "pointer operand", "ptr", ty
                    )
            if isinstance(inst, Gep):
                for i, idx in enumerate(inst.indices):
                    ity = self._operand_type(idx)
                    if ity is not None and not isinstance(ity, IntType):
                        self._type_mismatch(
                            label, inst, f"gep index {i}", "integer", ity
                        )
            return
        if isinstance(inst, Cast):
            src_ty = self._operand_type(inst.operand)
            if src_ty is None:
                return
            if inst.opcode in ("zext", "sext", "trunc"):
                if not isinstance(src_ty, IntType) or not isinstance(
                    inst.type, IntType
                ):
                    self._type_mismatch(
                        label, inst, f"{inst.opcode} operand", "integer", src_ty
                    )
                elif inst.opcode == "trunc":
                    if inst.type.width > src_ty.width:
                        self._type_mismatch(
                            label,
                            inst,
                            "trunc destination",
                            f"width <= {src_ty.width}",
                            inst.type,
                        )
                elif inst.type.width < src_ty.width:
                    self._type_mismatch(
                        label,
                        inst,
                        f"{inst.opcode} destination",
                        f"width >= {src_ty.width}",
                        inst.type,
                    )
            elif inst.opcode == "bitcast":
                try:
                    src_bits = src_ty.bit_width
                    dst_bits = inst.type.bit_width
                except ValueError:
                    return  # pointer widths are a memory-config choice
                if src_bits != dst_bits:
                    self._type_mismatch(
                        label,
                        inst,
                        "bitcast operand",
                        f"{dst_bits} bits",
                        f"{src_bits} bits",
                    )
            return

    # -- warnings ------------------------------------------------------------
    def check_warnings(self) -> None:
        fn = self.fn
        reachable = reachable_blocks(fn)
        for label, block in fn.blocks.items():
            if label not in reachable:
                self.report(
                    WARNING,
                    "unreachable-block",
                    f"block %{label} is unreachable from the entry",
                    block=label,
                )
            for inst in block.instructions:
                if not isinstance(inst, BinOp):
                    continue
                rhs = inst.rhs
                if not isinstance(rhs, ConstantInt):
                    continue
                if inst.opcode in ("udiv", "urem", "sdiv", "srem") and rhs.value == 0:
                    self.report(
                        WARNING,
                        "div-by-zero",
                        f"{inst.opcode} by constant zero is immediate UB",
                        block=label,
                        inst=inst,
                    )
                elif (
                    inst.opcode in ("shl", "lshr", "ashr")
                    and isinstance(inst.type, IntType)
                    and rhs.value >= inst.type.width
                ):
                    self.report(
                        WARNING,
                        "shift-overflow",
                        f"shift amount {rhs.value} is >= the bit width "
                        f"{inst.type.width}, so the result is always poison",
                        block=label,
                        inst=inst,
                    )

    # -- memory rules (points-to backed) -------------------------------------
    def check_memory(self) -> None:
        """Provenance-based rules over :mod:`repro.analysis.pointsto` facts.

        * ``access-oob`` (ERROR): a load/store whose width exceeds the
          declared size of *every* candidate pointee block — certain UB
          if executed.  Only reported for alloca/global provenance:
          pointer-argument blocks have a model-chosen size
          (``MemoryConfig.arg_block_bytes``), so an overflow there is a
          model artifact, not an IR defect.
        * ``dangling-local`` (WARNING): returning a pointer that can only
          point into the function's own allocas — the blocks' lifetime
          ends at the return, so the caller receives a dangling pointer.
          A warning, not an error: the IR is encodable (the paper's §8.5
          escaped-local scenarios rely on it).
        """
        from repro.analysis.memdf import analyze_memdf
        from repro.semantics.memory import MemoryConfig, build_layout
        from repro.ir.instructions import Alloca

        fn = self.fn
        try:
            pointer_args = [
                a.name for a in fn.args if isinstance(a.type, PointerType)
            ]
            num_allocas = sum(
                1 for i in fn.instructions() if isinstance(i, Alloca)
            )
            globals_ = dict(self.module.globals) if self.module else {}
            layout = build_layout(
                globals_, pointer_args, num_allocas, MemoryConfig()
            )
            mdf = analyze_memdf(fn, layout)
        except Exception:  # noqa: BLE001 — lint must not crash on odd IR
            return
        arg_bids = {
            info.bid
            for info in layout.shared_blocks
            if info.name.startswith("%")
        }
        first_local = layout.first_local_bid()
        for label, block in fn.blocks.items():
            for inst in block.instructions:
                if isinstance(inst, (Load, Store)):
                    fact = mdf.access.get(id(inst))
                    if (
                        fact is not None
                        and fact.oob
                        and fact.pts.bids is not None
                        and not (fact.pts.bids & arg_bids)
                    ):
                        self.report(
                            ERROR,
                            "access-oob",
                            f"{fact.nbytes}-byte access exceeds the "
                            "declared size of every block the pointer "
                            "can reference",
                            block=label,
                            inst=inst,
                        )
                elif isinstance(inst, Ret) and inst.value is not None:
                    fact = mdf.pointer_fact(inst.value)
                    if (
                        isinstance(
                            self._operand_type(inst.value), PointerType
                        )
                        and fact.bids is not None
                        and fact.bids
                        and all(b >= first_local for b in fact.bids)
                    ):
                        self.report(
                            WARNING,
                            "dangling-local",
                            "returned pointer can only reference this "
                            "function's own allocas, whose lifetime ends "
                            "at the return",
                            block=label,
                            inst=inst,
                        )


def lint_function(fn: Function, module: Optional[Module] = None) -> List[LintDiagnostic]:
    """All diagnostics for one function (empty for declarations)."""
    LINT_STATS.functions += 1
    if fn.is_declaration:
        return []
    linter = _FunctionLinter(fn, module)
    cfg_ok = linter.check_cfg()
    if cfg_ok:
        linter.check_ssa()
    linter.check_types()
    linter.check_warnings()
    if cfg_ok and not any(d.level == ERROR for d in linter.diags):
        # The provenance rules run the dataflow solver; only meaningful
        # (and safe) on IR that already passed the structural checks.
        linter.check_memory()
    LINT_STATS.errors += sum(1 for d in linter.diags if d.level == ERROR)
    LINT_STATS.warnings += sum(1 for d in linter.diags if d.level == WARNING)
    return linter.diags


def lint_module(module: Module) -> List[LintDiagnostic]:
    out: List[LintDiagnostic] = []
    for fn in module.functions.values():
        out.extend(lint_function(fn, module))
    return out


def errors_only(diags: List[LintDiagnostic]) -> List[LintDiagnostic]:
    return [d for d in diags if d.level == ERROR]


# -- console entry point (`alive-lint`) ---------------------------------------


def _lint_corpus() -> int:
    from repro.ir.parser import parse_module
    from repro.suite.unittests import build_corpus

    failures = 0
    for test in build_corpus():
        diags = lint_module(parse_module(test.ir))
        for diag in diags:
            print(f"{test.name}: {diag}")
        failures += sum(1 for d in diags if d.level == ERROR)
    print(
        f"linted {LINT_STATS.functions} functions: "
        f"{LINT_STATS.errors} errors, {LINT_STATS.warnings} warnings"
    )
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="alive-lint",
        description="Static well-formedness checks for the IR dialect "
        "(SSA dominance, types, CFG shape).",
    )
    parser.add_argument("files", nargs="*", help="IR files to lint")
    parser.add_argument(
        "--corpus",
        action="store_true",
        help="lint the generated unit-test corpus instead of files",
    )
    parser.add_argument(
        "--werror",
        action="store_true",
        help="treat warnings as errors for the exit code",
    )
    args = parser.parse_args(argv)
    if not args.files and not args.corpus:
        parser.error("nothing to lint: pass IR files or --corpus")

    status = 0
    if args.corpus:
        status = max(status, _lint_corpus())
    if args.files:
        from repro.ir.parser import ParseError, parse_module

        for path in args.files:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    module = parse_module(handle.read())
            except (OSError, ParseError) as exc:
                print(f"{path}: error: {exc}")
                status = 1
                continue
            for diag in lint_module(module):
                print(f"{path}: {diag}")
                if diag.level == ERROR or args.werror:
                    status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
