"""Solver-bypass prescreening of refinement queries.

Each refinement check is an exists-forall query ``∃O. φ ∧ ∀N. ¬ψ`` whose
UNSAT outcome means "check passed".  Cheap static facts can decide many
of them without bit-blasting:

* **R-phi-false** — φ is false for every assignment (term-level
  known-bits, :mod:`repro.analysis.termfacts`): no candidate
  counterexample exists, the check passes.
* **R-psi-true** — ψ is valid: ``¬ψ`` is unsatisfiable for every choice
  of the universals, the check passes.  This also covers the
  "known-bits prove ``bv_eq`` of matching defs" case: the abstract
  evaluator folds ``bveq`` of two fully-determined equal values to True.
* **R-poison-free** — for the *return-poison* check, the IR poison
  taint proves every ``ret`` operand of the unrolled target poison-free.
  φ of that check conjoins ``¬ub_tgt``, and the taint transfer relation
  mirrors the encoder's poison semantics under ``¬ub`` (``noundef``
  arguments add ``isundef ∨ ispoison`` to the UB terms, flagged
  arithmetic is never proven, shifts need an in-range amount), so
  φ's ``tgt_poison`` conjunct is unsatisfiable.
* **R-const-ret** — for the *return-value* check, both sides provably
  return the same constant and the target is poison-free; with trivial
  source precondition/domain and no calls, ψ holds for every universal
  choice.
* **R-sat-witness** — for the check-1 satisfiability probe (a plain SAT
  call, not exists-forall), concretely evaluating the preconditions
  under an all-zeros or all-ones assignment yields True: the formula is
  satisfiable by witness, so the preconditions are not vacuous.

Three rules consume :mod:`repro.analysis.memdf` facts (gated behind
``VerifyOptions.memdf``; the facts are absent when it is off):

* **R-oob-ub** — the source's entry block contains a load/store that is
  provably out of bounds for *every* candidate (bid, offset), so with no
  calls the source is UB on every input: ``ub_src'`` is valid under φ's
  precondition and ψ's ``ub'`` disjunct discharges any exists-forall
  check.
* **R-load-forward** — both sides' (unique) return value resolves to the
  same constant or the same argument reading through store-to-load
  forwarding chains, reducing the *return-value* memory query to a value
  fact: choosing the primed undef reading equal to the target's makes
  the refinement clause valid (UB-free executions read the forwarded
  bytes; all failure paths land in ψ's ``ub'`` disjunct).
* **R-alias-disjoint** — for the *memory* check: neither side's stores
  can touch a caller-visible writable block (their clobber sets are
  disjoint from the shared blocks — e.g. all stores hit local allocas),
  so both final memories equal the initial one and the per-byte
  refinement clauses are valid; the witness that passed the
  return-domain check (which always precedes the memory check in the
  query sequence) satisfies ψ.

Every rule may only *prove* (discharge a query the solver would have
answered UNSAT, or witness SAT for the satcheck); none may refute, so a
prescreen hit can never flip a FAIL verdict to a pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis import termfacts
from repro.analysis.poison import returns_poison_free
from repro.ir.function import Function
from repro.ir.instructions import Ret
from repro.ir.values import ConstantInt
from repro.smt import terms
from repro.smt.terms import FALSE, TRUE, BoolTerm, Term


@dataclass
class PrescreenStats:
    """Module-level counters; the suite snapshots deltas per test."""

    hits: int = 0
    misses: int = 0
    by_rule: Dict[str, int] = field(default_factory=dict)

    def hit(self, rule: str) -> None:
        self.hits += 1
        self.by_rule[rule] = self.by_rule.get(rule, 0) + 1

    def miss(self) -> None:
        self.misses += 1

    def reset(self) -> None:
        self.hits = self.misses = 0
        self.by_rule.clear()


STATS = PrescreenStats()

#: The rules driven by memory-dataflow facts (PR 9); the suite tracks
#: their hits separately so the CLI summary can show memdf leverage.
MEMDF_RULES = ("oob-ub", "load-forward", "alias-disjoint")

#: The rules driven by the relational product-CFG analysis (PR 10).
RELATIONAL_RULES = ("relational-equal", "relational-equal-mem")


def memdf_rule_hits() -> int:
    """Total hits of the memdf-driven rules since the last reset."""
    return sum(STATS.by_rule.get(rule, 0) for rule in MEMDF_RULES)


def relational_rule_hits() -> int:
    """Total hits of the relational rules since the last reset."""
    return sum(STATS.by_rule.get(rule, 0) for rule in RELATIONAL_RULES)


def _all_ones_env(term: Term) -> Dict[str, int]:
    """name → all-ones/True for every variable of ``term``.

    All-ones satisfies the NaN-pattern preconditions that argument-undef
    seeds produce, which an all-zeros witness falsifies.
    """
    env: Dict[str, int] = {}
    stack = [term]
    seen = set()
    while stack:
        t = stack.pop()
        if t in seen:
            continue
        seen.add(t)
        if t.op == "var":
            env[t.payload] = True if t.is_bool else (1 << t.width) - 1
        else:
            stack.extend(t.args)
    return env


class Prescreener:
    """Per-verification fact holder consulted by the refinement checker.

    IR analyses run lazily on the *unrolled* functions (the ones that
    were encoded), at most once per verification job.
    """

    def __init__(
        self,
        src_unrolled: Function,
        tgt_unrolled: Function,
        memdf_src=None,
        memdf_tgt=None,
        relational=None,
    ) -> None:
        self.src = src_unrolled
        self.tgt = tgt_unrolled
        # Memory-dataflow facts (repro.analysis.memdf.MemDF) for the same
        # unrolled functions; None when VerifyOptions.memdf is off.
        self.memdf_src = memdf_src
        self.memdf_tgt = memdf_tgt
        # Relational congruence facts (repro.analysis.relational) for the
        # same pair; None when VerifyOptions.relational is off.
        self.relational = relational
        self._tgt_ret_poison_free: Optional[bool] = None
        self._const_rets: Optional[tuple] = None  # (src_const, tgt_const)

    # -- lazy IR facts -------------------------------------------------------
    def tgt_returns_poison_free(self) -> bool:
        if self._tgt_ret_poison_free is None:
            self._tgt_ret_poison_free = returns_poison_free(self.tgt)
        return self._tgt_ret_poison_free

    def _ret_constant(self, fn: Function, kb_facts) -> Optional[int]:
        """The single constant every ``ret`` of ``fn`` returns, if any."""
        value: Optional[int] = None
        saw_ret = False
        for block in fn.blocks.values():
            term = block.terminator
            if not isinstance(term, Ret) or term.value is None:
                continue
            saw_ret = True
            if isinstance(term.value, ConstantInt):
                const: Optional[int] = term.value.value
            else:
                name = getattr(term.value, "name", None)
                fact = kb_facts.get(name) if name is not None else None
                const = fact.value if fact is not None else None
            if const is None or (value is not None and const != value):
                return None
            value = const
        return value if saw_ret else None

    def const_rets(self) -> tuple:
        if self._const_rets is None:
            from repro.analysis.knownbits import analyze_known_bits

            self._const_rets = (
                self._ret_constant(self.src, analyze_known_bits(self.src)),
                self._ret_constant(self.tgt, analyze_known_bits(self.tgt)),
            )
        return self._const_rets

    # -- rules ---------------------------------------------------------------
    def screen_sat(self, formula: BoolTerm) -> bool:
        """True iff ``formula`` is proven satisfiable (check 1 passes)."""
        try:
            if terms.evaluate(formula, {}):
                STATS.hit("sat-witness")
                return True
            if terms.evaluate(formula, _all_ones_env(formula)):
                STATS.hit("sat-witness")
                return True
        except (RecursionError, OverflowError):
            pass
        STATS.miss()
        return False

    def screen_query(
        self,
        name: str,
        phi: BoolTerm,
        psi: BoolTerm,
        src_enc=None,
        tgt_enc=None,
    ) -> bool:
        """True iff the query is discharged (the check provably passes).

        ``psi`` must already include the environment-consistency axioms —
        validity of the full right-hand side is what makes ``∀N.¬ψ``
        unsatisfiable regardless of the quantifier split.
        """
        try:
            if phi is FALSE or termfacts.must_false(phi):
                STATS.hit("phi-false")
                return True
            if self._screen_oob_ub(src_enc, tgt_enc):
                STATS.hit("oob-ub")
                return True
            if psi is TRUE or termfacts.must_true(psi):
                STATS.hit("psi-true")
                return True
            if name == "return-poison" and self.tgt_returns_poison_free():
                STATS.hit("poison-free")
                return True
            if name == "return-value" and self._screen_const_ret(
                src_enc, tgt_enc
            ):
                STATS.hit("const-ret")
                return True
            if name == "return-value" and self._screen_load_forward(
                src_enc, tgt_enc
            ):
                STATS.hit("load-forward")
                return True
            if name in ("return-value", "return-poison") and (
                self._screen_relational_equal(src_enc, tgt_enc)
            ):
                STATS.hit("relational-equal")
                return True
        except (RecursionError, OverflowError):
            pass
        STATS.miss()
        return False

    def _screen_const_ret(self, src_enc, tgt_enc) -> bool:
        """R-const-ret; see the module docstring for the soundness argument.

        Guards: trivial source precondition/sink/return-domain (so the
        primed ψ prefix is the literal TRUE), no calls on either side (so
        pairing and environment-consistency are trivial), and both sides
        return one proven-equal integer constant with the target
        poison-free under φ's ``¬ub_tgt``.
        """
        if src_enc is None or tgt_enc is None:
            return False
        if src_enc.pre is not TRUE or src_enc.sink is not FALSE:
            return False
        if src_enc.ret_domain is not TRUE:
            return False
        if src_enc.calls or tgt_enc.calls:
            return False
        src_const, tgt_const = self.const_rets()
        if src_const is None or src_const != tgt_const:
            return False
        return self.tgt_returns_poison_free()

    # -- memdf-driven rules (PR 9) -------------------------------------------
    def _no_calls(self, src_enc, tgt_enc) -> bool:
        """No calls on either side: call pairing and the environment
        consistency axioms are the literal TRUE, so ψ reduces to
        ``pre' ∧ ¬sink' ∧ (ub' ∨ ...)`` over shared and primed vars."""
        if src_enc is None or tgt_enc is None:
            return False
        if src_enc.calls or tgt_enc.calls:
            return False
        return not (
            self.memdf_src is None
            or self.memdf_tgt is None
            or self.memdf_src.has_calls
            or self.memdf_tgt.has_calls
        )

    def _screen_oob_ub(self, src_enc, tgt_enc) -> bool:
        """R-oob-ub; see the module docstring.

        Guards: an entry-block access of the source is provably OOB for
        every candidate block (its UB term is valid: a poison/undef
        pointer trips the access's own UB disjunct, and a defined pointer
        lands in the abstract location, every member of which rejects the
        access), no calls (entry instructions then execute on every
        path), and no unroll sinks (``¬sink'`` is the literal TRUE).
        φ of every check implies the shared-variable precondition that
        the points-to facts rely on, so ψ's ``ub'`` disjunct is valid.
        """
        if not self._no_calls(src_enc, tgt_enc):
            return False
        if src_enc.sink is not FALSE:
            return False
        return bool(self.memdf_src.entry_oob)

    def _screen_load_forward(self, src_enc, tgt_enc) -> bool:
        """R-load-forward; see the module docstring.

        Guards: no calls, trivial source sink/return-domain (the primed
        domain conjunct of ψ is the literal TRUE), and both sides resolve
        their unique return to the *same* symbol — a constant, or the
        same integer argument — through must-alias store-to-load
        forwarding chains.  For an argument symbol the primed undef
        reading is set equal to the target's reading (a legal witness:
        the primed reading variables occur existentially); forwarded
        bytes equal the stored reading in every UB-free execution, so
        the value-refinement clause holds, and executions where any
        involved access misbehaves satisfy ψ through ``ub'``.
        """
        if not self._no_calls(src_enc, tgt_enc):
            return False
        if src_enc.sink is not FALSE or src_enc.ret_domain is not TRUE:
            return False
        src_sym = self.memdf_src.resolve_return()
        if src_sym is None:
            return False
        return src_sym == self.memdf_tgt.resolve_return()

    def screen_memory(self, src_enc, tgt_enc) -> bool:
        """Discharge the whole memory check before ``mem_ref`` is built.

        Invoked by the refinement checker ahead of the per-byte clause
        construction: when it fires, the memory check is proven without
        encoding a single byte comparison.  Only hits are counted — a
        miss falls through to the normal query path, which does its own
        hit/miss accounting.
        """
        if self._screen_alias_disjoint(src_enc, tgt_enc):
            STATS.hit("alias-disjoint")
            return True
        if self._screen_relational_mem(src_enc, tgt_enc):
            STATS.hit("relational-equal-mem")
            return True
        return False

    # -- relational rules (PR 10) ----------------------------------------------
    def _relational_guards(self, src_enc, tgt_enc) -> bool:
        """Shared guards for the R-relational-equal family.

        Trivial source precondition/sink/return-domain (the primed ψ
        prefix is the literal TRUE and ``dom'`` holds), a trivial target
        sink, and no calls on either side (call pairing and environment
        consistency are trivial, and call results would be opaque
        anyway).  Under these, a congruence claim "tgt value sits in
        src's class" licenses the witness that maps every primed src
        nondet reading onto its paired tgt reading, making value *and*
        poison coincide; executions where the facts' UB-freedom caveat
        fails satisfy ψ through its ``ub'`` disjunct (src side) or
        contradict φ's ``¬ub_tgt`` (tgt side).
        """
        if self.relational is None or src_enc is None or tgt_enc is None:
            return False
        if src_enc.pre is not TRUE or src_enc.sink is not FALSE:
            return False
        if tgt_enc.sink is not FALSE:
            return False
        if src_enc.ret_domain is not TRUE:
            return False
        return not (src_enc.calls or tgt_enc.calls)

    def _screen_relational_equal(self, src_enc, tgt_enc) -> bool:
        """R-relational-equal: every return site pairs with an aligned,
        congruent target return.  Congruence is value- and poison-exact
        under the witness pairing, so the return-poison implication
        (``t_poison → s_poison'``) and the value-refinement clause
        (``s_poison' ∨ (¬t_poison ∧ s_val' = t_val)``) are both valid."""
        if not self._relational_guards(src_enc, tgt_enc):
            return False
        return self.relational.ret_congruent()

    def _screen_relational_mem(self, src_enc, tgt_enc) -> bool:
        """R-relational-equal-mem: the caller-visible store sequences are
        congruent pairwise in the (unconditionally executed) entry
        blocks, so both sides leave byte-identical shared memory under
        the witness pairing and the per-byte refinement clauses hold
        without encoding them.  Needs memdf points-to facts to separate
        caller-visible stores from local ones."""
        if not self._relational_guards(src_enc, tgt_enc):
            return False
        if self.memdf_src is None or self.memdf_tgt is None:
            return False
        if self.memdf_src.has_calls or self.memdf_tgt.has_calls:
            return False
        if not (self.memdf_src.clobbered or self.memdf_tgt.clobbered):
            return False  # no stores at all: R-alias-disjoint territory
        return self.relational.store_effects_congruent(
            self.memdf_src, self.memdf_tgt
        )

    def _screen_alias_disjoint(self, src_enc, tgt_enc) -> bool:
        """R-alias-disjoint; see the module docstring.

        Guards: no calls, and both sides' abstract clobber sets are
        disjoint from the caller-visible writable blocks.  Then every
        store in an UB-free execution hits a local (or null ⇒ UB) block,
        final shared memory equals initial shared memory on both sides,
        and the per-byte refinement clauses compare a shared variable
        with itself.  The memory check runs only after the return-domain
        check passed, whose witness supplies ψ's ``pre' ∧ (ub' ∨ dom')``
        prefix for every φ model.
        """
        if not self._no_calls(src_enc, tgt_enc):
            return False
        if not (self.memdf_src.clobbered or self.memdf_tgt.clobbered):
            # No stores anywhere: ψ is trivial for cheaper reasons, and
            # crediting this rule would just inflate its counter.
            return False
        src_clobber = self.memdf_src.clobbered_shared_writable()
        tgt_clobber = self.memdf_tgt.clobbered_shared_writable()
        return src_clobber == frozenset() and tgt_clobber == frozenset()
