"""Solver-bypass prescreening of refinement queries.

Each refinement check is an exists-forall query ``∃O. φ ∧ ∀N. ¬ψ`` whose
UNSAT outcome means "check passed".  Cheap static facts can decide many
of them without bit-blasting:

* **R-phi-false** — φ is false for every assignment (term-level
  known-bits, :mod:`repro.analysis.termfacts`): no candidate
  counterexample exists, the check passes.
* **R-psi-true** — ψ is valid: ``¬ψ`` is unsatisfiable for every choice
  of the universals, the check passes.  This also covers the
  "known-bits prove ``bv_eq`` of matching defs" case: the abstract
  evaluator folds ``bveq`` of two fully-determined equal values to True.
* **R-poison-free** — for the *return-poison* check, the IR poison
  taint proves every ``ret`` operand of the unrolled target poison-free.
  φ of that check conjoins ``¬ub_tgt``, and the taint transfer relation
  mirrors the encoder's poison semantics under ``¬ub`` (``noundef``
  arguments add ``isundef ∨ ispoison`` to the UB terms, flagged
  arithmetic is never proven, shifts need an in-range amount), so
  φ's ``tgt_poison`` conjunct is unsatisfiable.
* **R-const-ret** — for the *return-value* check, both sides provably
  return the same constant and the target is poison-free; with trivial
  source precondition/domain and no calls, ψ holds for every universal
  choice.
* **R-sat-witness** — for the check-1 satisfiability probe (a plain SAT
  call, not exists-forall), concretely evaluating the preconditions
  under an all-zeros or all-ones assignment yields True: the formula is
  satisfiable by witness, so the preconditions are not vacuous.

Every rule may only *prove* (discharge a query the solver would have
answered UNSAT, or witness SAT for the satcheck); none may refute, so a
prescreen hit can never flip a FAIL verdict to a pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis import termfacts
from repro.analysis.poison import returns_poison_free
from repro.ir.function import Function
from repro.ir.instructions import Ret
from repro.ir.values import ConstantInt
from repro.smt import terms
from repro.smt.terms import FALSE, TRUE, BoolTerm, Term


@dataclass
class PrescreenStats:
    """Module-level counters; the suite snapshots deltas per test."""

    hits: int = 0
    misses: int = 0
    by_rule: Dict[str, int] = field(default_factory=dict)

    def hit(self, rule: str) -> None:
        self.hits += 1
        self.by_rule[rule] = self.by_rule.get(rule, 0) + 1

    def miss(self) -> None:
        self.misses += 1

    def reset(self) -> None:
        self.hits = self.misses = 0
        self.by_rule.clear()


STATS = PrescreenStats()


def _all_ones_env(term: Term) -> Dict[str, int]:
    """name → all-ones/True for every variable of ``term``.

    All-ones satisfies the NaN-pattern preconditions that argument-undef
    seeds produce, which an all-zeros witness falsifies.
    """
    env: Dict[str, int] = {}
    stack = [term]
    seen = set()
    while stack:
        t = stack.pop()
        if t in seen:
            continue
        seen.add(t)
        if t.op == "var":
            env[t.payload] = True if t.is_bool else (1 << t.width) - 1
        else:
            stack.extend(t.args)
    return env


class Prescreener:
    """Per-verification fact holder consulted by the refinement checker.

    IR analyses run lazily on the *unrolled* functions (the ones that
    were encoded), at most once per verification job.
    """

    def __init__(self, src_unrolled: Function, tgt_unrolled: Function) -> None:
        self.src = src_unrolled
        self.tgt = tgt_unrolled
        self._tgt_ret_poison_free: Optional[bool] = None
        self._const_rets: Optional[tuple] = None  # (src_const, tgt_const)

    # -- lazy IR facts -------------------------------------------------------
    def tgt_returns_poison_free(self) -> bool:
        if self._tgt_ret_poison_free is None:
            self._tgt_ret_poison_free = returns_poison_free(self.tgt)
        return self._tgt_ret_poison_free

    def _ret_constant(self, fn: Function, kb_facts) -> Optional[int]:
        """The single constant every ``ret`` of ``fn`` returns, if any."""
        value: Optional[int] = None
        saw_ret = False
        for block in fn.blocks.values():
            term = block.terminator
            if not isinstance(term, Ret) or term.value is None:
                continue
            saw_ret = True
            if isinstance(term.value, ConstantInt):
                const: Optional[int] = term.value.value
            else:
                name = getattr(term.value, "name", None)
                fact = kb_facts.get(name) if name is not None else None
                const = fact.value if fact is not None else None
            if const is None or (value is not None and const != value):
                return None
            value = const
        return value if saw_ret else None

    def const_rets(self) -> tuple:
        if self._const_rets is None:
            from repro.analysis.knownbits import analyze_known_bits

            self._const_rets = (
                self._ret_constant(self.src, analyze_known_bits(self.src)),
                self._ret_constant(self.tgt, analyze_known_bits(self.tgt)),
            )
        return self._const_rets

    # -- rules ---------------------------------------------------------------
    def screen_sat(self, formula: BoolTerm) -> bool:
        """True iff ``formula`` is proven satisfiable (check 1 passes)."""
        try:
            if terms.evaluate(formula, {}):
                STATS.hit("sat-witness")
                return True
            if terms.evaluate(formula, _all_ones_env(formula)):
                STATS.hit("sat-witness")
                return True
        except (RecursionError, OverflowError):
            pass
        STATS.miss()
        return False

    def screen_query(
        self,
        name: str,
        phi: BoolTerm,
        psi: BoolTerm,
        src_enc=None,
        tgt_enc=None,
    ) -> bool:
        """True iff the query is discharged (the check provably passes).

        ``psi`` must already include the environment-consistency axioms —
        validity of the full right-hand side is what makes ``∀N.¬ψ``
        unsatisfiable regardless of the quantifier split.
        """
        try:
            if phi is FALSE or termfacts.must_false(phi):
                STATS.hit("phi-false")
                return True
            if psi is TRUE or termfacts.must_true(psi):
                STATS.hit("psi-true")
                return True
            if name == "return-poison" and self.tgt_returns_poison_free():
                STATS.hit("poison-free")
                return True
            if name == "return-value" and self._screen_const_ret(
                src_enc, tgt_enc
            ):
                STATS.hit("const-ret")
                return True
        except (RecursionError, OverflowError):
            pass
        STATS.miss()
        return False

    def _screen_const_ret(self, src_enc, tgt_enc) -> bool:
        """R-const-ret; see the module docstring for the soundness argument.

        Guards: trivial source precondition/sink/return-domain (so the
        primed ψ prefix is the literal TRUE), no calls on either side (so
        pairing and environment-consistency are trivial), and both sides
        return one proven-equal integer constant with the target
        poison-free under φ's ``¬ub_tgt``.
        """
        if src_enc is None or tgt_enc is None:
            return False
        if src_enc.pre is not TRUE or src_enc.sink is not FALSE:
            return False
        if src_enc.ret_domain is not TRUE:
            return False
        if src_enc.calls or tgt_enc.calls:
            return False
        src_const, tgt_const = self.const_rets()
        if src_const is None or src_const != tgt_const:
            return False
        return self.tgt_returns_poison_free()
