"""Memory dataflow on top of the points-to domain.

Consumes :mod:`repro.analysis.pointsto` facts and derives, per function:

* **store-to-load forwarding** — a load that provably returns the value
  of an earlier store (same must-location, no intervening may-aliasing
  write or call in the block);
* **clobber sets** — the set of block-ids any store may write (``None``
  when a store or call escapes the domain);
* **access classification** — loads/stores that are provably
  out-of-bounds for *every* candidate (bid, offset), or provably
  in-bounds for all of them;
* **dead stores** — a store overwritten by a covering same-location
  store with no intervening observer.

The facts feed three consumers: the prescreen rules ``R-alias-disjoint``
/ ``R-load-forward`` / ``R-oob-ub`` in :mod:`repro.analysis.prescreen`,
the encoder's aliasing-case-split pruning in
:mod:`repro.semantics.encoder`, and the memory-refinement block skip in
:mod:`repro.refinement.check`.  All of them are gated behind
``VerifyOptions.memdf`` and may only *strengthen* what the solver would
prove anyway — never change a verdict.

Soundness: every fact holds for executions satisfying the encoder
precondition in which the involved pointers are defined; executions
where a pointer is poison/undef make the access UB, which every
refinement query masks through its ``ub`` disjunct.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.pointsto import (
    PointsToFact,
    analyze_pointsto,
    assign_alloca_bids,
)
from repro.ir.function import Function
from repro.ir.instructions import Alloca, Call, Load, Ret, Store
from repro.ir.types import IntType, byte_size
from repro.ir.values import ConstantInt, GlobalRef, Register
from repro.semantics.memory import MemoryLayout
from repro.smt import terms


@dataclass
class MemdfStats:
    """Module-level counters; the suite snapshots deltas per test."""

    analyses: int = 0
    forwards: int = 0
    dead_stores: int = 0
    oob_accesses: int = 0
    narrowed_accesses: int = 0  # encoder accesses with a pruned case-split
    block_skips: int = 0  # (access × block) pairs dropped from encodings
    refine_skips: int = 0  # memory-refinement blocks skipped via clobber facts

    def reset(self) -> None:
        self.analyses = 0
        self.forwards = 0
        self.dead_stores = 0
        self.oob_accesses = 0
        self.narrowed_accesses = 0
        self.block_skips = 0
        self.refine_skips = 0


STATS = MemdfStats()


@dataclass(frozen=True)
class AccessFact:
    """Classification of one load/store against its candidate blocks."""

    pts: PointsToFact
    nbytes: int
    oob: bool  # provably out of bounds for every candidate (⇒ UB if executed)
    inbounds: bool  # provably in bounds for every candidate


@dataclass(frozen=True)
class ForwardFact:
    """A load that provably returns ``store``'s operand value."""

    store: Store
    value: object  # the stored ir.values.Value


@dataclass
class MemDF:
    """All memory-dataflow facts for one (unrolled) function."""

    fn: Function
    layout: MemoryLayout
    pointsto: Dict[str, PointsToFact]
    access: Dict[int, AccessFact] = field(default_factory=dict)  # id(inst)
    forwards: Dict[int, ForwardFact] = field(default_factory=dict)  # id(load)
    dead_stores: FrozenSet[int] = frozenset()  # id(store)
    clobbered: Optional[FrozenSet[int]] = frozenset()  # None = may write anything
    has_calls: bool = False
    entry_oob: bool = False  # an always-executed entry-block access is OOB

    # -- consumer queries -----------------------------------------------------
    def pointer_fact(self, value) -> PointsToFact:
        """Abstract location of a pointer operand (⊤ when untracked)."""
        if isinstance(value, Register):
            fact = self.pointsto.get(value.name)
            if fact is not None:
                return fact
        elif isinstance(value, GlobalRef):
            for info in self.layout.shared_blocks:
                if info.name == f"@{value.name}":
                    return PointsToFact(frozenset({info.bid}), (0, 0))
        from repro.ir.values import ConstantNull

        if isinstance(value, ConstantNull):
            return PointsToFact(frozenset({0}), (0, 0))
        from repro.analysis.pointsto import TOP

        return TOP

    def clobbered_shared_writable(self) -> Optional[FrozenSet[int]]:
        """Caller-visible writable bids any store may touch (None = ⊤)."""
        if self.clobbered is None:
            return None
        shared = frozenset(
            info.bid
            for info in self.layout.shared_blocks
            if info.writable
        )
        return self.clobbered & shared

    def resolve_return(self) -> Optional[Tuple]:
        """The function's return value as a symbol, when provable.

        Returns ``("const", value, width)`` or ``("arg", name, type-str)``
        when the (unique) returned value provably equals that symbol in
        every UB-free execution — following store-to-load forwarding
        chains — else ``None``.
        """
        rets = [
            inst
            for block in self.fn.blocks.values()
            for inst in block.instructions
            if isinstance(inst, Ret)
        ]
        if len(rets) != 1 or rets[0].value is None:
            return None
        return self._resolve_value(rets[0].value, depth=8)

    def _resolve_value(self, value, depth: int) -> Optional[Tuple]:
        if depth <= 0:
            return None
        if isinstance(value, ConstantInt):
            ty = value.type
            if isinstance(ty, IntType):
                return ("const", value.value & ((1 << ty.width) - 1), ty.width)
            return None
        if not isinstance(value, Register):
            return None
        for arg in self.fn.args:
            if arg.name == value.name:
                if isinstance(arg.type, IntType):
                    return ("arg", arg.name, str(arg.type))
                return None
        definer = self._def_map().get(value.name)
        if isinstance(definer, Load):
            fwd = self.forwards.get(id(definer))
            if fwd is not None:
                return self._resolve_value(fwd.value, depth - 1)
        return None

    def _def_map(self) -> Dict[str, object]:
        cached = getattr(self, "_defs", None)
        if cached is None:
            cached = {}
            for block in self.fn.blocks.values():
                for inst in block.instructions:
                    name = getattr(inst, "name", None)
                    if name is not None:
                        cached[name] = inst
            self._defs = cached
        return cached


def _block_sizes(fn: Function, layout: MemoryLayout) -> Dict[int, int]:
    sizes = {info.bid: info.size for info in layout.shared_blocks}
    alloca_bids = assign_alloca_bids(fn, layout)
    for block in fn.blocks.values():
        for inst in block.instructions:
            if isinstance(inst, Alloca) and inst.name in alloca_bids:
                sizes[alloca_bids[inst.name]] = byte_size(inst.allocated_type)
    return sizes


def _classify(
    pts: PointsToFact, nbytes: int, sizes: Dict[int, int]
) -> Tuple[bool, bool]:
    """(provably-oob, provably-inbounds) of an ``nbytes`` access."""
    if pts.bids is None or not pts.bids:
        return False, False
    oob = True
    inbounds = True
    for bid in pts.bids:
        size = sizes.get(bid)
        if bid == 0 or size is None:
            inbounds = False  # null or unknown block: never provably valid
            continue
        if size < nbytes:
            inbounds = False
            continue
        if pts.off is None:
            # Some offset fits, so not provably OOB; not provably in
            # bounds either (the offset is caller-chosen).
            oob = False
            inbounds = False
            continue
        lo, hi = pts.off
        if hi < 0 or lo > size - nbytes:
            inbounds = False
            continue
        oob = False
        if lo < 0 or hi > size - nbytes:
            inbounds = False
    return oob, inbounds


@dataclass
class _Avail:
    """One forwardable store while scanning a block."""

    store: Store
    pts: PointsToFact
    nbytes: int
    observed: bool = False  # a later may-read saw this store's bytes


def _loc_key(value, pts: PointsToFact) -> Optional[Tuple]:
    """Must-location key: two accesses with equal keys touch the same
    (bid, offset) whenever both execute without UB."""
    if (
        pts.bids is not None
        and len(pts.bids) == 1
        and 0 not in pts.bids
        and pts.off is not None
        and pts.off[0] == pts.off[1]
    ):
        (bid,) = tuple(pts.bids)
        return ("c", bid, pts.off[0])
    if isinstance(value, Register):
        return ("r", value.name)
    if isinstance(value, GlobalRef):
        return ("g", value.name)
    return None


def analyze_memdf(fn: Function, layout: MemoryLayout) -> MemDF:
    """All memory-dataflow facts for ``fn`` (memoized per function)."""
    cached = _MEMDF_CACHE.get(id(fn))
    if cached is not None and cached[0]() is fn and cached[1].layout is layout:
        return cached[1]
    mdf = _analyze(fn, layout)
    _MEMDF_CACHE[id(fn)] = (weakref.ref(fn), mdf)
    return mdf


def _analyze(fn: Function, layout: MemoryLayout) -> MemDF:
    STATS.analyses += 1
    pointsto = analyze_pointsto(fn, layout)
    mdf = MemDF(fn=fn, layout=layout, pointsto=pointsto)
    sizes = _block_sizes(fn, layout)
    clobbered: Optional[set] = set()
    dead: set = set()
    entry_label = next(iter(fn.blocks)) if fn.blocks else None

    for label, block in fn.blocks.items():
        avail: Dict[Tuple, _Avail] = {}
        for inst in block.non_phi_instructions():
            if isinstance(inst, Call):
                mdf.has_calls = True
                clobbered = None  # calls may write anything
                for entry in avail.values():
                    entry.observed = True
                avail.clear()
                continue
            if isinstance(inst, Store):
                pts = mdf.pointer_fact(inst.pointer)
                nbytes = byte_size(inst.value.type)
                oob, inbounds = _classify(pts, nbytes, sizes)
                mdf.access[id(inst)] = AccessFact(pts, nbytes, oob, inbounds)
                if oob:
                    STATS.oob_accesses += 1
                    if label == entry_label:
                        mdf.entry_oob = True
                if clobbered is not None:
                    if pts.bids is None:
                        clobbered = None
                    else:
                        clobbered |= pts.bids
                key = _loc_key(inst.pointer, pts)
                # A covering same-location store makes the previous one
                # dead if nothing observed it in between.
                prev = avail.get(key) if key is not None else None
                if (
                    prev is not None
                    and not prev.observed
                    and nbytes >= prev.nbytes
                ):
                    dead.add(id(prev.store))
                    STATS.dead_stores += 1
                # Any may-aliasing store invalidates forwardable entries.
                for k in list(avail):
                    if k == key:
                        continue
                    entry = avail[k]
                    if pts.may_overlap(entry.pts, nbytes, entry.nbytes):
                        del avail[k]
                if key is not None:
                    avail[key] = _Avail(inst, pts, nbytes)
                continue
            if isinstance(inst, Load):
                pts = mdf.pointer_fact(inst.pointer)
                nbytes = byte_size(inst.type)
                oob, inbounds = _classify(pts, nbytes, sizes)
                mdf.access[id(inst)] = AccessFact(pts, nbytes, oob, inbounds)
                if oob:
                    STATS.oob_accesses += 1
                    if label == entry_label:
                        mdf.entry_oob = True
                key = _loc_key(inst.pointer, pts)
                entry = avail.get(key) if key is not None else None
                if (
                    entry is not None
                    and inst.type == entry.store.value.type
                ):
                    mdf.forwards[id(inst)] = ForwardFact(
                        entry.store, entry.store.value
                    )
                    STATS.forwards += 1
                # Loads observe every store they may read from.
                for other in avail.values():
                    if pts.may_overlap(other.pts, nbytes, other.nbytes):
                        other.observed = True
                continue
        # Values still available at the block exit are observable later.
        for entry in avail.values():
            entry.observed = True

    mdf.dead_stores = frozenset(dead)
    mdf.clobbered = None if clobbered is None else frozenset(clobbered)
    return mdf


_MEMDF_CACHE: Dict[int, Tuple["weakref.ref", MemDF]] = {}


@terms.on_reset
def _clear_memdf_cache() -> None:
    _MEMDF_CACHE.clear()
