"""Product-CFG block alignment between the unrolled src and tgt functions.

Relational reasoning over a (src, tgt) pair starts from a *block
alignment*: a partial bijection between the two CFGs such that paired
executions (same inputs, nondeterminism resolved by the witness pairing)
visit aligned blocks in lockstep.  The construction is structure-guided
in the style of the product programs of Rose & Bansal: starting from the
``(entry, entry)`` pair we follow matching terminators — unconditional
branches align their targets, conditional branches align true-with-true
and false-with-false when the branch conditions are congruent (the
congruence oracle is supplied by the caller; ``repro.analysis.relational``
closes the loop by iterating value numbering and alignment), and
switches align case-wise when the scrutinees are congruent and the case
lists agree.  On a terminator mismatch the walk falls back to the
cross-product: the two subtrees are left unaligned and downstream
consumers treat every (src, tgt) block combination as possible.

Because phi congruence in the relational value numbering relies on the
lockstep invariant ("control is in src block A iff it is in tgt block
B, and it arrived via corresponding edges"), an aligned pair is only
*certified* when every predecessor edge on either side is matched by a
corresponding predecessor edge on the other.  Pairs discovered by
lockstep that fail this closure (e.g. one side has an extra edge from a
region that did not align) are demoted to *heuristic* pairs: still
useful for counterexample reports, never used for semantic claims.
The unrolled CFGs are acyclic, so a single reverse-postorder sweep
computes the certification fixpoint exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.cfg import predecessors, reverse_postorder
from repro.ir.function import Function
from repro.ir.instructions import Br, Ret, Switch, Unreachable
from repro.ir.values import Value

# Oracle deciding whether a src value and a tgt value are known equal.
CongruenceOracle = Callable[[Value, Value], bool]


@dataclass(frozen=True)
class Alignment:
    """A partial bijection between src and tgt basic blocks.

    ``pairs`` lists every aligned (src_label, tgt_label) pair in src
    reverse postorder; ``certified`` is the subset satisfying the
    lockstep closure described in the module docstring.  Only certified
    pairs may back semantic claims (phi congruence, aligned-store
    matching); the rest exist for diagnostics.
    """

    pairs: Tuple[Tuple[str, str], ...] = ()
    certified: Tuple[Tuple[str, str], ...] = ()
    src_to_tgt: Dict[str, str] = field(default_factory=dict)
    tgt_to_src: Dict[str, str] = field(default_factory=dict)

    @property
    def certified_src_to_tgt(self) -> Dict[str, str]:
        return dict(self.certified)

    def is_certified(self, src_label: str, tgt_label: str) -> bool:
        return (src_label, tgt_label) in set(self.certified)


def _succ_pairs(
    src_block, tgt_block, congruent: CongruenceOracle
) -> Optional[List[Tuple[str, str]]]:
    """Corresponding successor-label pairs of two aligned blocks.

    Returns ``None`` when the terminators do not correspond (the
    cross-product fallback: no lockstep claim past this pair).
    """
    s, t = src_block.terminator, tgt_block.terminator
    if isinstance(s, Br) and isinstance(t, Br):
        if s.cond is None and t.cond is None:
            return [(s.true_label, t.true_label)]
        if s.cond is not None and t.cond is not None:
            if congruent(s.cond, t.cond):
                return [
                    (s.true_label, t.true_label),
                    (s.false_label, t.false_label),
                ]
        return None
    if isinstance(s, Switch) and isinstance(t, Switch):
        if not congruent(s.value, t.value):
            return None
        if [v for v, _ in s.cases] != [v for v, _ in t.cases]:
            return None
        out = [(s.default_label, t.default_label)]
        out.extend((sl, tl) for (_, sl), (_, tl) in zip(s.cases, t.cases))
        return out
    if isinstance(s, (Ret, Unreachable)) and isinstance(t, (Ret, Unreachable)):
        return []  # leaf pair: nothing further to align
    return None


def align_blocks(
    src: Function, tgt: Function, congruent: CongruenceOracle
) -> Alignment:
    """Compute the lockstep block alignment of ``src`` and ``tgt``."""
    if not src.blocks or not tgt.blocks:
        return Alignment()

    src_to_tgt: Dict[str, str] = {}
    tgt_to_src: Dict[str, str] = {}
    entry_pair = (src.entry.label, tgt.entry.label)
    worklist: List[Tuple[str, str]] = [entry_pair]
    while worklist:
        a, b = worklist.pop()
        if src_to_tgt.get(a) == b and tgt_to_src.get(b) == a:
            continue  # already aligned
        if a in src_to_tgt or b in tgt_to_src:
            continue  # bijection conflict: leave the later candidate out
        src_to_tgt[a] = b
        tgt_to_src[b] = a
        succ = _succ_pairs(src.blocks[a], tgt.blocks[b], congruent)
        if succ:
            worklist.extend(succ)

    # Certification sweep: a pair is certified when it is the entry pair
    # or every predecessor edge on both sides runs between certified
    # pairs with corresponding successor slots.  RPO over the acyclic
    # unrolled CFG visits predecessors first, so one pass suffices.
    src_preds = predecessors(src)
    tgt_preds = predecessors(tgt)
    certified: Dict[str, str] = {}
    pairs_in_order: List[Tuple[str, str]] = []
    for a in reverse_postorder(src):
        b = src_to_tgt.get(a)
        if b is None:
            continue
        pairs_in_order.append((a, b))
        if (a, b) == entry_pair:
            certified[a] = b
            continue
        if _edges_correspond(
            src, tgt, a, b, src_preds, tgt_preds, certified, congruent
        ):
            certified[a] = b

    return Alignment(
        pairs=tuple(pairs_in_order),
        certified=tuple((a, b) for a, b in pairs_in_order if certified.get(a) == b),
        src_to_tgt=dict(src_to_tgt),
        tgt_to_src=dict(tgt_to_src),
    )


def _edges_correspond(
    src: Function,
    tgt: Function,
    a: str,
    b: str,
    src_preds: Dict[str, List[str]],
    tgt_preds: Dict[str, List[str]],
    certified: Dict[str, str],
    congruent: CongruenceOracle,
) -> bool:
    """Every edge into ``a`` matches an edge into ``b`` and vice versa."""
    sp = src_preds.get(a, [])
    tp = tgt_preds.get(b, [])
    if len(sp) != len(tp) or len(set(sp)) != len(sp) or len(set(tp)) != len(tp):
        return False
    for p in sp:
        q = certified.get(p)
        if q is None or q not in tp:
            return False
        succ = _succ_pairs(src.blocks[p], tgt.blocks[q], congruent)
        if succ is None or (a, b) not in succ:
            return False
    # The pred maps are injective (certified is a bijection restricted
    # from src_to_tgt), so matching counts + forward coverage implies
    # the reverse direction is covered as well.
    covered = {certified.get(p) for p in sp}
    return covered == set(tp)
