"""Poison/undef taint analysis: conservatively prove values poison-free.

The fact for a register is a single bit: ``True`` means *every* UB-free
execution of the function computes a non-poison value for it.  The rules
mirror the poison semantics of :mod:`repro.semantics.encoder`:

* constants (including ``undef``) are poison-free; ``poison`` is not;
* an argument is poison-free only when marked ``noundef`` (a poison
  argument then triggers immediate UB, so UB-free executions see a
  defined value);
* ``freeze`` is always poison-free (that is its purpose);
* flag-carrying arithmetic (``nsw``/``nuw``/``exact``) may create
  poison and is never proven;
* shifts are poison-free only when the shift amount provably stays
  below the bit width (constant or range fact);
* ``udiv``/``urem``/``sdiv``/``srem`` propagate their operands' facts —
  a zero divisor is immediate UB, not poison;
* loads, calls, geps and floating-point operations are conservatively
  treated as possibly-poison.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.framework import RegisterAnalysis, analyze_registers
from repro.analysis.range import IntRange, analyze_ranges
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Cast,
    Freeze,
    ICmp,
    Ret,
    Select,
)
from repro.ir.types import IntType
from repro.ir.values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    GlobalRef,
    PoisonValue,
    UndefValue,
)

_SHIFT_OPS = {"shl", "lshr", "ashr"}
_INT_CASTS = {"zext", "sext", "trunc"}


class PoisonAnalysis(RegisterAnalysis):
    """Forward must-analysis; fact True = proven poison-free."""

    def __init__(self, ranges: Optional[Dict[str, Optional[IntRange]]] = None):
        self.ranges = ranges or {}

    def top(self):
        return False  # unknown producers may be poison

    def join(self, a, b):
        return bool(a) and bool(b)

    def fact_of_argument(self, arg):
        return isinstance(arg, Argument) and "noundef" in arg.attrs

    def fact_of_constant(self, value):
        if isinstance(value, PoisonValue):
            return False
        if isinstance(
            value, (ConstantInt, ConstantFloat, ConstantNull, UndefValue, GlobalRef)
        ):
            return True
        return False

    def _shift_in_bounds(self, inst: BinOp) -> bool:
        ty = inst.type
        if not isinstance(ty, IntType):
            return False
        if isinstance(inst.rhs, ConstantInt):
            return inst.rhs.value < ty.width
        name = getattr(inst.rhs, "name", None)
        fact = self.ranges.get(name) if name is not None else None
        return fact is not None and fact.umax < ty.width

    def transfer(self, inst, env):
        if isinstance(inst, Freeze):
            return True
        if isinstance(inst, Alloca):
            return True
        if isinstance(inst, BinOp):
            if inst.flags:
                return False
            ops_pf = self.value_fact(inst.lhs, env) and self.value_fact(
                inst.rhs, env
            )
            if inst.opcode in _SHIFT_OPS:
                return ops_pf and self._shift_in_bounds(inst)
            return ops_pf
        if isinstance(inst, ICmp):
            return self.value_fact(inst.lhs, env) and self.value_fact(
                inst.rhs, env
            )
        if isinstance(inst, Select):
            return (
                self.value_fact(inst.cond, env)
                and self.value_fact(inst.on_true, env)
                and self.value_fact(inst.on_false, env)
            )
        if isinstance(inst, Cast):
            if inst.opcode in _INT_CASTS:
                return self.value_fact(inst.operand, env)
            if inst.opcode == "bitcast":
                src_ty = getattr(inst.operand, "type", None)
                if isinstance(src_ty, IntType) and isinstance(inst.type, IntType):
                    return self.value_fact(inst.operand, env)
            return False
        return False


def analyze_poison(
    fn: Function, ranges: Optional[Dict[str, Optional[IntRange]]] = None
) -> Dict[str, bool]:
    """Poison-free fact per register; pass range facts to prove shifts."""
    if ranges is None:
        ranges = analyze_ranges(fn)
    return analyze_registers(fn, PoisonAnalysis(ranges))


def returns_poison_free(
    fn: Function, facts: Optional[Dict[str, bool]] = None
) -> bool:
    """True iff every ``ret`` operand of ``fn`` is proven poison-free.

    Vacuously False for void returns or declarations (there is nothing
    to prove a poison-refinement query about).
    """
    if fn.is_declaration:
        return False
    if facts is None:
        facts = analyze_poison(fn)
    analysis = PoisonAnalysis()
    saw_ret = False
    for block in fn.blocks.values():
        term = block.terminator
        if not isinstance(term, Ret) or term.value is None:
            continue
        saw_ret = True
        name = getattr(term.value, "name", None)
        if name is not None:
            if not facts.get(name, False):
                return False
        elif not analysis.fact_of_constant(term.value):
            return False
    return saw_ret
