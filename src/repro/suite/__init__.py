"""Evaluation substrate: the corpora behind the paper's experiments.

* :mod:`repro.suite.unittests` — the "LLVM unit test suite" analogue: IR
  transformation test cases with pass pipelines (§8.2);
* :mod:`repro.suite.genir` — seeded random IR generator used to scale the
  corpora;
* :mod:`repro.suite.apps` — synthetic "single-file applications" named
  after the paper's five benchmarks (§8.4, Figure 7);
* :mod:`repro.suite.knownbugs` — the §8.5 catalogue of independently
  reported miscompilations, with expected detectability.
"""

from repro.suite.unittests import UNIT_TESTS, UnitTest
from repro.suite.knownbugs import KNOWN_BUGS, KnownBug

__all__ = ["UNIT_TESTS", "UnitTest", "KNOWN_BUGS", "KnownBug"]
