"""Harness that runs corpora through the TV plugin and classifies outcomes.

This is the analogue of the paper's lit-based monitoring setup (§8.2):
for each unit test, run the (possibly buggy) pipeline and validate each
changed pass; aggregate verdicts and bucket refinement failures by the
injected defect's §8.2 category.

The runner is fault-tolerant: every test executes inside a containment
boundary, so a parser crash, an encoder ``RecursionError`` or a
``MemoryError`` in one test is recorded as a per-test ``CRASH``/``OOM``
outcome and the corpus run continues.  With a journal path, per-test
outcomes are appended to a JSONL file as the run progresses and a
re-invocation resumes from it, re-running only unfinished tests.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Union

from repro.analysis import memdf as analysis_memdf
from repro.analysis import prescreen
from repro.analysis import relational as analysis_relational
from repro.analysis import verify as lint_verify
from repro.egraph import simplify as egraph_simplify
from repro.engine import qcache
from repro.harness import faults
from repro.harness.deadline import DeadlineExceeded
from repro.harness.degrade import DegradationLadder
from repro.harness.faults import FaultPlan
from repro.harness.isolation import diagnostic_from, run_verification_job
from repro.harness.journal import RunJournal
from repro.ir.parser import parse_module
from repro.refinement.check import Verdict, VerifyOptions
from repro.smt import solver as smt_solver
from repro.suite.unittests import UnitTest
from repro.tv.plugin import validate_pipeline
from repro.tv.report import Tally


@dataclass
class TestRecord:
    """One test's journaled outcome — everything resume needs to replay."""

    __test__ = False  # not a pytest class, despite the name

    test: str
    verdicts: Dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0
    skipped_unchanged: int = 0
    category: Optional[str] = None
    detected: bool = False
    missed: bool = False
    clean_failure: bool = False
    degradations: List[str] = field(default_factory=list)
    diagnostic: Optional[Dict[str, object]] = None
    # Engine statistics: query-cache hits/misses and solver checks spent
    # on this test, plus the worker pid for parallel runs (None = in-process).
    qcache_hits: int = 0
    qcache_misses: int = 0
    solver_checks: int = 0
    worker: Optional[int] = None
    # Static-analysis statistics: refinement queries discharged/attempted
    # by the solver-bypass prescreen, and lint diagnostics seen while
    # gating this test's verification jobs.
    prescreen_hits: int = 0
    prescreen_misses: int = 0
    lint_errors: int = 0
    lint_warnings: int = 0
    # Certification statistics (certify mode): UNSAT proofs the checker
    # accepted / rejected during this test, UNSAT answers left unchecked
    # (certify off), and core literals over all UNSAT answers.
    certified_unsat: int = 0
    cert_failures: int = 0
    unchecked_unsat: int = 0
    core_lits: int = 0
    # E-graph statistics: queries discharged outright by saturation,
    # terms the extractor failed to improve, and terms it shrank —
    # plus aggregate per-phase wall-clock (prescreen/egraph/encode/solve).
    egraph_proved: int = 0
    egraph_misses: int = 0
    egraph_shrunk: int = 0
    # Memory-dataflow statistics (VerifyOptions.memdf): queries
    # discharged by the R-oob-ub/R-load-forward/R-alias-disjoint rules
    # (a subset of prescreen_hits), accesses whose encoding dropped at
    # least one aliasing case-split, and the total (access x block)
    # pairs pruned from the encodings.
    memdf_rule_hits: int = 0
    memdf_narrowed: int = 0
    memdf_block_skips: int = 0
    # Relational-analysis statistics (VerifyOptions.relational): queries
    # discharged by the R-relational-equal rules (a subset of
    # prescreen_hits), forall-var -> tgt-term witness pairs contributed
    # to the CEGAR seeds, and certified aligned block pairs.
    relational_rule_hits: int = 0
    relational_seed_pairs: int = 0
    relational_aligned_blocks: int = 0
    phase_times: Dict[str, float] = field(default_factory=dict)

    def count(self, verdict: Verdict) -> None:
        self.verdicts[verdict.value] = self.verdicts.get(verdict.value, 0) + 1

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "TestRecord":
        return cls(
            test=data["test"],
            verdicts=dict(data.get("verdicts", {})),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            skipped_unchanged=int(data.get("skipped_unchanged", 0)),
            category=data.get("category"),
            detected=bool(data.get("detected", False)),
            missed=bool(data.get("missed", False)),
            clean_failure=bool(data.get("clean_failure", False)),
            degradations=list(data.get("degradations", [])),
            diagnostic=data.get("diagnostic"),
            qcache_hits=int(data.get("qcache_hits", 0)),
            qcache_misses=int(data.get("qcache_misses", 0)),
            solver_checks=int(data.get("solver_checks", 0)),
            worker=data.get("worker"),
            prescreen_hits=int(data.get("prescreen_hits", 0)),
            prescreen_misses=int(data.get("prescreen_misses", 0)),
            lint_errors=int(data.get("lint_errors", 0)),
            lint_warnings=int(data.get("lint_warnings", 0)),
            certified_unsat=int(data.get("certified_unsat", 0)),
            cert_failures=int(data.get("cert_failures", 0)),
            unchecked_unsat=int(data.get("unchecked_unsat", 0)),
            core_lits=int(data.get("core_lits", 0)),
            egraph_proved=int(data.get("egraph_proved", 0)),
            egraph_misses=int(data.get("egraph_misses", 0)),
            egraph_shrunk=int(data.get("egraph_shrunk", 0)),
            memdf_rule_hits=int(data.get("memdf_rule_hits", 0)),
            memdf_narrowed=int(data.get("memdf_narrowed", 0)),
            memdf_block_skips=int(data.get("memdf_block_skips", 0)),
            relational_rule_hits=int(data.get("relational_rule_hits", 0)),
            relational_seed_pairs=int(data.get("relational_seed_pairs", 0)),
            relational_aligned_blocks=int(
                data.get("relational_aligned_blocks", 0)
            ),
            phase_times={
                str(k): float(v)
                for k, v in dict(data.get("phase_times", {})).items()
            },
        )


@dataclass
class SuiteOutcome:
    tally: Tally = field(default_factory=Tally)
    violations_by_category: Dict[str, int] = field(default_factory=dict)
    detected: List[str] = field(default_factory=list)  # test names with bugs caught
    missed: List[str] = field(default_factory=list)  # injected bugs not caught
    clean_failures: List[str] = field(default_factory=list)  # false alarms
    crashed: List[str] = field(default_factory=list)  # tests the harness contained
    solver_unsound: List[str] = field(default_factory=list)  # rejected certificates
    records: List[TestRecord] = field(default_factory=list)
    resumed: int = 0  # tests replayed from the journal instead of re-run
    # Parallel runs: worker pid -> that worker's final query-cache
    # counters (per-shard load bytes/entries, LRU evictions, hit rate),
    # so cache-tier wins are measurable per worker, not inferred.
    worker_cache: Dict[int, dict] = field(default_factory=dict)

    def summary_rows(self) -> List[Dict[str, object]]:
        return [
            {"category": cat, "violations": n}
            for cat, n in sorted(self.violations_by_category.items())
        ]


def run_suite(
    tests: List[UnitTest],
    options: Optional[VerifyOptions] = None,
    inject_bugs: bool = True,
    batch: int = 1,
    *,
    journal: Optional[Union[str, RunJournal]] = None,
    fault_plan: Optional[FaultPlan] = None,
    ladder: Optional[DegradationLadder] = None,
    jobs: int = 1,
    query_cache: Optional[Union[str, "qcache.QueryCache"]] = None,
    cache_shards: int = 1,
    task_batch: Optional[int] = None,
    warm_pool: Optional["object"] = None,
) -> SuiteOutcome:
    """Validate every test; returns outcome statistics.

    With ``inject_bugs`` the per-test buggy pass variant is switched on,
    reproducing a compiler with the §8.2 defect classes; without it the
    same corpus measures the zero-false-alarm property.

    ``journal`` (a path or :class:`RunJournal`) makes the run crash-safe
    and resumable: already-journaled tests are replayed, not re-run.
    ``ladder`` enables degraded retries of TIMEOUT/OOM jobs.
    ``fault_plan`` is the test-only fault-injection hook.

    ``jobs > 1`` fans unfinished tests out to a process pool (see
    :mod:`repro.engine.pool`); tallies, journal contents and record order
    are identical to a sequential run.  ``task_batch`` overrides how many
    tests are shipped per worker task (default: pool-chosen, ~4 tasks per
    worker).  ``query_cache`` (a path or a
    :class:`~repro.engine.qcache.QueryCache`) short-circuits structurally
    repeated solver queries; with ``jobs > 1`` each worker gets its own
    cache instance over the same on-disk file, if any.  ``cache_shards``
    splits that file into digest-routed shard files so each worker loads
    and appends only its owned slice (see :mod:`repro.engine.qcache`).
    ``warm_pool`` (a started :class:`repro.engine.warmpool.WarmPool`)
    replaces the per-run process pool with persistent pre-forked workers
    whose interned term universe and in-memory cache tier stay warm
    across runs; verdicts are identical either way.
    """
    options = options or VerifyOptions(timeout_s=30.0)
    if isinstance(journal, (str, bytes)) or hasattr(journal, "__fspath__"):
        journal = RunJournal(journal)
    # The parent only loads the cache file(s) when it will run tests
    # itself: for pooled runs it needs the path, not the entries.
    cache: Optional[qcache.QueryCache] = None
    cache_path: Optional[str] = None
    cache_configured = query_cache is not None
    if isinstance(query_cache, qcache.QueryCache):
        cache = query_cache
        cache_path = cache.path
    elif query_cache is not None:
        cache_path = os.fspath(query_cache) or None
    outcome = SuiteOutcome()

    pending = [
        t for t in tests if journal is None or not journal.is_done(t.name)
    ]
    pooled = warm_pool is not None or (jobs > 1 and len(pending) > 1)
    if pooled and pending:
        if warm_pool is not None:
            fresh = warm_pool.run(
                pending,
                options,
                inject_bugs,
                batch,
                journal=journal,
                ladder=ladder,
                task_batch=task_batch,
            )
            outcome.worker_cache = dict(warm_pool.worker_cache)
        else:
            from repro.engine.pool import run_parallel

            fresh, outcome.worker_cache = run_parallel(
                pending,
                options,
                inject_bugs,
                batch,
                jobs=jobs,
                journal=journal,
                fault_plan=fault_plan,
                ladder=ladder,
                cache_enabled=cache_configured,
                cache_path=cache_path,
                cache_shards=cache_shards,
                task_batch=task_batch,
            )
        # ``fresh`` is in ``pending`` order; consume it positionally so
        # duplicate test names cannot collapse onto one record.
        k = 0
        for test in tests:
            if k < len(pending) and test is pending[k]:
                record = fresh[k]
                k += 1
            else:
                record = TestRecord.from_json(journal.get(test.name))
                outcome.resumed += 1
            _merge_record(outcome, record)
        _merge_worker_cache(outcome)
        return outcome

    if cache is None and cache_configured:
        cache = qcache.QueryCache(cache_path, shards=cache_shards)
    with faults.activate(fault_plan), qcache.activate(cache):
        for test in tests:
            if journal is not None and journal.is_done(test.name):
                record = TestRecord.from_json(journal.get(test.name))
                outcome.resumed += 1
            else:
                record = _run_one_test(test, options, inject_bugs, batch, ladder)
                if journal is not None:
                    journal.record(record.to_json())
            _merge_record(outcome, record)
    if cache is not None:
        outcome.worker_cache = {os.getpid(): cache.counters()}
        _merge_worker_cache(outcome)
    return outcome


def _run_one_test(
    test: UnitTest,
    options: VerifyOptions,
    inject_bugs: bool,
    batch: int,
    ladder: Optional[DegradationLadder],
) -> TestRecord:
    """Run one test inside the containment boundary; never raises
    (except KeyboardInterrupt/SystemExit, which must abort the run so the
    journal-based resume can take over)."""
    record = TestRecord(test=test.name, category=test.category)
    cache = qcache.active()
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0
    checks0 = smt_solver.TELEMETRY.checks
    certified0 = smt_solver.TELEMETRY.certified
    cert_failed0 = smt_solver.TELEMETRY.cert_failed
    unchecked0 = smt_solver.TELEMETRY.unchecked_unsat
    core_lits0 = smt_solver.TELEMETRY.core_lits
    ps_hits0, ps_misses0 = prescreen.STATS.hits, prescreen.STATS.misses
    lint_errors0 = lint_verify.LINT_STATS.errors
    lint_warnings0 = lint_verify.LINT_STATS.warnings
    eg0 = egraph_simplify.STATS
    eg_proved0, eg_shrunk0 = eg0.proved, eg0.shrunk
    eg_misses0 = eg0.unchanged
    memdf_hits0 = prescreen.memdf_rule_hits()
    memdf_narrowed0 = analysis_memdf.STATS.narrowed_accesses
    memdf_skips0 = analysis_memdf.STATS.block_skips
    rel_hits0 = prescreen.relational_rule_hits()
    rel_seeds0 = analysis_relational.STATS.seed_pairs
    rel_aligned0 = analysis_relational.STATS.aligned_blocks
    start = time.monotonic()
    try:
        with faults.current_test(test.name):
            _evaluate_test(test, options, inject_bugs, batch, ladder, record)
    except (KeyboardInterrupt, SystemExit):
        raise
    except MemoryError as exc:
        record.count(Verdict.OOM)
        record.diagnostic = diagnostic_from(exc)
    except DeadlineExceeded as exc:
        record.count(Verdict.TIMEOUT)
        record.diagnostic = diagnostic_from(exc)
    except Exception as exc:  # noqa: BLE001 — crash isolation per test
        record.count(Verdict.CRASH)
        record.diagnostic = diagnostic_from(exc)
    record.elapsed_s = time.monotonic() - start
    if cache is not None:
        record.qcache_hits = cache.hits - hits0
        record.qcache_misses = cache.misses - misses0
    record.solver_checks = smt_solver.TELEMETRY.checks - checks0
    record.certified_unsat = smt_solver.TELEMETRY.certified - certified0
    record.cert_failures = smt_solver.TELEMETRY.cert_failed - cert_failed0
    record.unchecked_unsat = smt_solver.TELEMETRY.unchecked_unsat - unchecked0
    record.core_lits = smt_solver.TELEMETRY.core_lits - core_lits0
    record.prescreen_hits = prescreen.STATS.hits - ps_hits0
    record.prescreen_misses = prescreen.STATS.misses - ps_misses0
    record.lint_errors = lint_verify.LINT_STATS.errors - lint_errors0
    record.lint_warnings = lint_verify.LINT_STATS.warnings - lint_warnings0
    eg = egraph_simplify.STATS
    record.egraph_proved = eg.proved - eg_proved0
    record.egraph_misses = eg.unchanged - eg_misses0
    record.egraph_shrunk = eg.shrunk - eg_shrunk0
    record.memdf_rule_hits = prescreen.memdf_rule_hits() - memdf_hits0
    record.memdf_narrowed = (
        analysis_memdf.STATS.narrowed_accesses - memdf_narrowed0
    )
    record.memdf_block_skips = analysis_memdf.STATS.block_skips - memdf_skips0
    record.relational_rule_hits = prescreen.relational_rule_hits() - rel_hits0
    record.relational_seed_pairs = (
        analysis_relational.STATS.seed_pairs - rel_seeds0
    )
    record.relational_aligned_blocks = (
        analysis_relational.STATS.aligned_blocks - rel_aligned0
    )
    return record


def _evaluate_test(
    test: UnitTest,
    options: VerifyOptions,
    inject_bugs: bool,
    batch: int,
    ladder: Optional[DegradationLadder],
    record: TestRecord,
) -> None:
    pass_options = {}
    if inject_bugs and test.bug_option is not None:
        pass_options[test.bug_option] = True
    faults.maybe_fault("parse")
    if inject_bugs and test.buggy_target is not None:
        # FileCheck-style test: the buggy expected output is explicit.
        sm = parse_module(test.ir)
        tm = parse_module(test.buggy_target)
        result = run_verification_job(
            sm.definitions()[0], tm.definitions()[0], sm, tm, options, ladder=ladder
        )
        record.count(result.verdict)
        _add_phase_times(record, result.phase_times)
        record.degradations.extend(result.degradations)
        if result.diagnostic is not None:
            record.diagnostic = result.diagnostic
        if result.verdict is Verdict.INCORRECT:
            record.detected = True
        else:
            record.missed = True
        return
    module = parse_module(test.ir)
    report = validate_pipeline(
        module, list(test.pipeline), options, pass_options, batch=batch, ladder=ladder
    )
    for rec in report.records:
        record.count(rec.result.verdict)
        _add_phase_times(record, rec.result.phase_times)
        record.degradations.extend(rec.result.degradations)
        if rec.result.verdict is Verdict.CRASH and record.diagnostic is None:
            record.diagnostic = rec.result.diagnostic
    record.skipped_unchanged = report.tally.skipped_unchanged
    bug_injected = inject_bugs and test.bug_option is not None
    found = bool(report.failures())
    if found:
        if bug_injected:
            record.detected = True
        else:
            record.clean_failure = True
            record.category = None
    elif bug_injected:
        record.missed = True


def _add_phase_times(record: TestRecord, phase_times: Dict[str, float]) -> None:
    for phase, seconds in (phase_times or {}).items():
        record.phase_times[phase] = record.phase_times.get(phase, 0.0) + seconds


def outcome_from_records(records: List[TestRecord]) -> SuiteOutcome:
    """Aggregate per-test records into a :class:`SuiteOutcome`.

    This is how results that were produced *elsewhere* — by `alive-serve`
    workers, a replayed journal, or any other record source — get the
    same tallies and classification a local :func:`run_suite` produces.
    """
    outcome = SuiteOutcome()
    for record in records:
        _merge_record(outcome, record)
    return outcome


def _merge_worker_cache(outcome: SuiteOutcome) -> None:
    """Fold per-worker cache counters into the tally's load totals."""
    for counters in outcome.worker_cache.values():
        outcome.tally.qcache_load_entries += int(counters.get("load_entries", 0))
        outcome.tally.qcache_load_bytes += int(counters.get("load_bytes", 0))
        outcome.tally.qcache_evictions += int(counters.get("evictions", 0))


def _merge_record(outcome: SuiteOutcome, record: TestRecord) -> None:
    outcome.records.append(record)
    for verdict_value, count in record.verdicts.items():
        verdict = Verdict(verdict_value)
        for _ in range(count):
            outcome.tally.add_verdict(verdict)
    outcome.tally.total_time_s += record.elapsed_s
    outcome.tally.skipped_unchanged += record.skipped_unchanged
    outcome.tally.qcache_hits += record.qcache_hits
    outcome.tally.qcache_misses += record.qcache_misses
    outcome.tally.prescreen_hits += record.prescreen_hits
    outcome.tally.prescreen_misses += record.prescreen_misses
    outcome.tally.lint_errors += record.lint_errors
    outcome.tally.lint_warnings += record.lint_warnings
    outcome.tally.certified_unsat += record.certified_unsat
    outcome.tally.cert_failures += record.cert_failures
    outcome.tally.core_lits += record.core_lits
    outcome.tally.egraph_proved += record.egraph_proved
    outcome.tally.egraph_shrunk += record.egraph_shrunk
    outcome.tally.egraph_misses += record.egraph_misses
    outcome.tally.memdf_rule_hits += record.memdf_rule_hits
    outcome.tally.memdf_narrowed += record.memdf_narrowed
    outcome.tally.memdf_block_skips += record.memdf_block_skips
    outcome.tally.relational_rule_hits += record.relational_rule_hits
    outcome.tally.relational_seed_pairs += record.relational_seed_pairs
    outcome.tally.relational_aligned_blocks += record.relational_aligned_blocks
    for phase, seconds in record.phase_times.items():
        outcome.tally.phase_time_s[phase] = (
            outcome.tally.phase_time_s.get(phase, 0.0) + seconds
        )
    if record.verdicts.get(Verdict.CRASH.value):
        outcome.crashed.append(record.test)
    if record.verdicts.get(Verdict.SOLVER_UNSOUND.value):
        outcome.solver_unsound.append(record.test)
    if record.detected:
        category = record.category or "uncategorized"
        outcome.violations_by_category[category] = (
            outcome.violations_by_category.get(category, 0) + 1
        )
        outcome.detected.append(record.test)
    elif record.clean_failure:
        # paper: failures due to Alive2/tests themselves, not the compiler
        outcome.violations_by_category["tool-or-test"] = (
            outcome.violations_by_category.get("tool-or-test", 0) + 1
        )
        outcome.clean_failures.append(record.test)
    if record.missed:
        outcome.missed.append(record.test)
