"""Harness that runs corpora through the TV plugin and classifies outcomes.

This is the analogue of the paper's lit-based monitoring setup (§8.2):
for each unit test, run the (possibly buggy) pipeline and validate each
changed pass; aggregate verdicts and bucket refinement failures by the
injected defect's §8.2 category.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.parser import parse_module
from repro.refinement.check import Verdict, VerifyOptions
from repro.suite.unittests import UnitTest
from repro.tv.plugin import validate_pipeline
from repro.tv.report import Tally, ValidationReport


@dataclass
class SuiteOutcome:
    tally: Tally = field(default_factory=Tally)
    violations_by_category: Dict[str, int] = field(default_factory=dict)
    detected: List[str] = field(default_factory=list)  # test names with bugs caught
    missed: List[str] = field(default_factory=list)  # injected bugs not caught
    clean_failures: List[str] = field(default_factory=list)  # false alarms

    def summary_rows(self) -> List[Dict[str, object]]:
        return [
            {"category": cat, "violations": n}
            for cat, n in sorted(self.violations_by_category.items())
        ]


def run_suite(
    tests: List[UnitTest],
    options: Optional[VerifyOptions] = None,
    inject_bugs: bool = True,
    batch: int = 1,
) -> SuiteOutcome:
    """Validate every test; returns outcome statistics.

    With ``inject_bugs`` the per-test buggy pass variant is switched on,
    reproducing a compiler with the §8.2 defect classes; without it the
    same corpus measures the zero-false-alarm property.
    """
    options = options or VerifyOptions(timeout_s=30.0)
    outcome = SuiteOutcome()
    for test in tests:
        pass_options = {}
        if inject_bugs and test.bug_option is not None:
            pass_options[test.bug_option] = True
        if inject_bugs and test.buggy_target is not None:
            # FileCheck-style test: the buggy expected output is explicit.
            from repro.refinement.check import verify_refinement

            sm = parse_module(test.ir)
            tm = parse_module(test.buggy_target)
            result = verify_refinement(
                sm.definitions()[0], tm.definitions()[0], sm, tm, options
            )
            outcome.tally.add(result)
            if result.verdict is Verdict.INCORRECT:
                outcome.violations_by_category[test.category] = (
                    outcome.violations_by_category.get(test.category, 0) + 1
                )
                outcome.detected.append(test.name)
            else:
                outcome.missed.append(test.name)
            continue
        module = parse_module(test.ir)
        report = validate_pipeline(
            module, list(test.pipeline), options, pass_options, batch=batch
        )
        for record in report.records:
            outcome.tally.add(record.result)
        outcome.tally.skipped_unchanged += report.tally.skipped_unchanged
        bug_injected = inject_bugs and test.bug_option is not None
        found = bool(report.failures())
        if found:
            category = test.category if bug_injected else None
            if category is None:
                category = "tool-or-test"  # paper: failures due to Alive2/tests
                if not bug_injected:
                    outcome.clean_failures.append(test.name)
            outcome.violations_by_category[category] = (
                outcome.violations_by_category.get(category, 0) + 1
            )
            if bug_injected:
                outcome.detected.append(test.name)
        elif bug_injected:
            outcome.missed.append(test.name)
    return outcome
