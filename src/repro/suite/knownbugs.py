"""The §8.5 experiment: independently-known miscompilations.

A catalogue of (source, target) pairs modelling intra-procedural LLVM
miscompilations that were reported publicly.  For each bug we record
whether bounded TV is expected to detect it, and — for the misses — the
reason (the same three the paper found: unroll bound too small, infinite
loops, and calls not modifying escaped locals), plus a *manually tweaked*
variant that brings the bug within reach, mirroring §8.5's follow-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class KnownBug:
    name: str
    src: str
    tgt: str
    detectable: bool
    miss_reason: Optional[str] = None  # "unroll-bound" | "infinite-loop" | "escaped-local"
    # §8.5: the paper manually changed missed tests (smaller loops, escape
    # to globals) and re-checked; this is that variant when it exists.
    tweaked_src: Optional[str] = None
    tweaked_tgt: Optional[str] = None


def _fn(body: str, sig: str = "i8 @f(i8 %a, i8 %b)") -> str:
    return f"define {sig} {{\n{body}\n}}"


KNOWN_BUGS: List[KnownBug] = [
    # ---- detectable: peephole / poison bugs ------------------------------
    KnownBug(
        "select-to-and",
        _fn("entry:\n  %r = select i1 %x, i1 %y, i1 false\n  ret i1 %r",
            "i1 @f(i1 %x, i1 %y)"),
        _fn("entry:\n  %r = and i1 %x, %y\n  ret i1 %r", "i1 @f(i1 %x, i1 %y)"),
        detectable=True,
    ),
    KnownBug(
        "select-to-or",
        _fn("entry:\n  %r = select i1 %x, i1 true, i1 %y\n  ret i1 %r",
            "i1 @f(i1 %x, i1 %y)"),
        _fn("entry:\n  %r = or i1 %x, %y\n  ret i1 %r", "i1 @f(i1 %x, i1 %y)"),
        detectable=True,
    ),
    KnownBug(
        "nsw-introduced",
        _fn("entry:\n  %r = add i8 %a, %b\n  ret i8 %r"),
        _fn("entry:\n  %r = add nsw i8 %a, %b\n  ret i8 %r"),
        detectable=True,
    ),
    KnownBug(
        "nsw-reassociation",
        _fn(
            "entry:\n  %s1 = add nsw i8 %a, %b\n  %s2 = add nsw i8 %s1, %c\n"
            "  %s3 = add nsw i8 %s2, %d\n  ret i8 %s3",
            "i8 @f(i8 %a, i8 %b, i8 %c, i8 %d)",
        ),
        _fn(
            "entry:\n  %p1 = add nsw i8 %a, %c\n  %p2 = add nsw i8 %b, %d\n"
            "  %s = add nsw i8 %p1, %p2\n  ret i8 %s",
            "i8 @f(i8 %a, i8 %b, i8 %c, i8 %d)",
        ),
        detectable=True,
    ),
    KnownBug(
        "mul2-to-add-undef",
        _fn("entry:\n  %r = mul i8 %a, 2\n  ret i8 %r", "i8 @f(i8 %a)"),
        _fn("entry:\n  %r = add i8 %a, %a\n  ret i8 %r", "i8 @f(i8 %a)"),
        detectable=True,
    ),
    KnownBug(
        "wrong-icmp-fold",
        _fn("entry:\n  %c = icmp ult i8 %a, 128\n  ret i1 %c", "i1 @f(i8 %a)"),
        _fn("entry:\n  ret i1 true", "i1 @f(i8 %a)"),
        detectable=True,
    ),
    KnownBug(
        "branch-introduced-on-maybe-undef",
        _fn("entry:\n  %z = zext i1 %c to i8\n  ret i8 %z", "i8 @f(i1 %c)"),
        _fn(
            "entry:\n  br i1 %c, label %t, label %e\nt:\n  ret i8 1\n"
            "e:\n  ret i8 0",
            "i8 @f(i1 %c)",
        ),
        detectable=True,
    ),
    KnownBug(
        "freeze-removed",
        _fn(
            "entry:\n  %f = freeze i8 %a\n  %r = add i8 %f, %f\n  ret i8 %r",
            "i8 @f(i8 %a)",
        ),
        _fn("entry:\n  %r = add i8 %a, %a\n  ret i8 %r", "i8 @f(i8 %a)"),
        detectable=True,
    ),
    KnownBug(
        "fadd-pos-zero-identity",
        _fn("entry:\n  %r = fadd half %x, 0.0\n  ret half %r", "half @f(half %x)"),
        _fn("entry:\n  ret half %x", "half @f(half %x)"),
        detectable=True,
    ),
    KnownBug(
        "fast-math-nnan-introduced",
        _fn("entry:\n  %r = fadd half %x, %y\n  ret half %r", "half @f(half %x, half %y)"),
        _fn("entry:\n  %r = fadd nnan half %x, %y\n  ret half %r", "half @f(half %x, half %y)"),
        detectable=True,
    ),
    KnownBug(
        "shuffle-lane-swap",
        _fn(
            "entry:\n  %s = shufflevector <2 x i8> %v, <2 x i8> poison, <2 x i8> <i8 1, i8 0>\n"
            "  ret <2 x i8> %s",
            "<2 x i8> @f(<2 x i8> %v)",
        ),
        _fn("entry:\n  ret <2 x i8> %v", "<2 x i8> @f(<2 x i8> %v)"),
        detectable=True,
    ),
    KnownBug(
        "store-dropped",
        _fn("entry:\n  store i8 9, ptr %p\n  ret void", "void @f(ptr %p)"),
        _fn("entry:\n  ret void", "void @f(ptr %p)"),
        detectable=True,
    ),
    KnownBug(
        "store-wrong-value",
        _fn("entry:\n  store i8 1, ptr %p\n  ret void", "void @f(ptr %p)"),
        _fn("entry:\n  store i8 255, ptr %p\n  ret void", "void @f(ptr %p)"),
        detectable=True,
    ),
    KnownBug(
        # GVN-style store-to-load forwarding across a may-alias store:
        # %q is a second provenance of %p's bytes, so the store through
        # %q clobbers what %b re-reads — forwarding %a is illegal.
        "load-forwarded-across-may-alias-store",
        _fn(
            "entry:\n  %q = getelementptr i8, ptr %p, i8 0\n"
            "  %a = load i8, ptr %p\n  store i8 %v, ptr %q\n"
            "  %b = load i8, ptr %p\n  ret i8 %b",
            "i8 @f(ptr %p, i8 %v)",
        ),
        _fn(
            "entry:\n  %q = getelementptr i8, ptr %p, i8 0\n"
            "  %a = load i8, ptr %p\n  store i8 %v, ptr %q\n"
            "  ret i8 %a",
            "i8 @f(ptr %p, i8 %v)",
        ),
        detectable=True,
    ),
    KnownBug(
        # DSE that trusts syntactic pointer equality: the deleted store
        # is still live through %q (a zero-offset gep of %p), so the
        # intervening load observes it.
        "dead-store-live-through-second-provenance",
        _fn(
            "entry:\n  %q = getelementptr i8, ptr %p, i8 0\n"
            "  store i8 %v, ptr %p\n  %l = load i8, ptr %q\n"
            "  store i8 9, ptr %p\n  ret i8 %l",
            "i8 @f(ptr %p, i8 %v)",
        ),
        _fn(
            "entry:\n  %q = getelementptr i8, ptr %p, i8 0\n"
            "  %l = load i8, ptr %q\n"
            "  store i8 9, ptr %p\n  ret i8 %l",
            "i8 @f(ptr %p, i8 %v)",
        ),
        detectable=True,
    ),
    KnownBug(
        "division-ub-removed-guard",
        _fn(
            "entry:\n  %z = icmp eq i8 %b, 0\n  br i1 %z, label %s, label %d\n"
            "s:\n  ret i8 0\nd:\n  %q = udiv i8 %a, %b\n  ret i8 %q"
        ),
        _fn("entry:\n  %q = udiv i8 %a, %b\n  ret i8 %q"),
        detectable=True,
    ),
    # ---- missed: loop bound too small (paper: needed ~2^16 iterations) ----
    KnownBug(
        "wrong-after-many-iterations",
        _fn(
            "entry:\n  br label %h\n"
            "h:\n  %i = phi i8 [ 0, %entry ], [ %i2, %b ]\n"
            "  %c = icmp ult i8 %i, %n\n  br i1 %c, label %b, label %x\n"
            "b:\n  %i2 = add i8 %i, 1\n  br label %h\n"
            "x:\n  ret i8 %i",
            "i8 @f(i8 %n)",
        ),
        # Wrong only when the loop runs more than `unroll` iterations:
        _fn(
            "entry:\n  %big = icmp ugt i8 %n, 64\n"
            "  br i1 %big, label %bad, label %ok\n"
            "bad:\n  ret i8 0\nok:\n  ret i8 %n",
            "i8 @f(i8 %n)",
        ),
        detectable=False,
        miss_reason="unroll-bound",
        # §8.5 tweak: make the loop exit after fewer iterations.
        tweaked_src=_fn(
            "entry:\n  br label %h\n"
            "h:\n  %i = phi i8 [ 0, %entry ], [ %i2, %b ]\n"
            "  %c = icmp ult i8 %i, %n\n  br i1 %c, label %b, label %x\n"
            "b:\n  %i2 = add i8 %i, 1\n  br label %h\n"
            "x:\n  ret i8 %i",
            "i8 @f(i8 %n)",
        ),
        tweaked_tgt=_fn(
            "entry:\n  %big = icmp ugt i8 %n, 2\n"
            "  br i1 %big, label %bad, label %ok\n"
            "bad:\n  ret i8 0\nok:\n  ret i8 %n",
            "i8 @f(i8 %n)",
        ),
    ),
    # ---- missed: infinite loop (unsupported under bounded TV) --------------
    KnownBug(
        "infinite-loop-removed",
        _fn(
            "entry:\n  br label %spin\n"
            "spin:\n  br label %spin",
            "i8 @f(i8 %a)",
        ),
        _fn("entry:\n  ret i8 0", "i8 @f(i8 %a)"),
        detectable=False,
        miss_reason="infinite-loop",
    ),
    # ---- missed: escaped locals not modified by calls (§8.5's five) --------
    KnownBug(
        "escaped-local-clobbered-1",
        "declare void @ext(ptr)\n\n"
        + _fn(
            "entry:\n  %s = alloca i8\n  store i8 1, ptr %s\n"
            "  call void @ext(ptr %s)\n  %v = load i8, ptr %s\n  ret i8 %v",
            "i8 @f()",
        ),
        "declare void @ext(ptr)\n\n"
        + _fn(
            "entry:\n  %s = alloca i8\n  store i8 1, ptr %s\n"
            "  call void @ext(ptr %s)\n  ret i8 1",
            "i8 @f()",
        ),
        detectable=False,
        miss_reason="escaped-local",
        # §8.5 tweak: escape through a global instead of a local.
        tweaked_src="@g = global i8 0\ndeclare void @ext(ptr)\n\n"
        + _fn(
            "entry:\n  store i8 1, ptr @g\n  call void @ext(ptr @g)\n"
            "  %v = load i8, ptr @g\n  ret i8 %v",
            "i8 @f()",
        ),
        tweaked_tgt="@g = global i8 0\ndeclare void @ext(ptr)\n\n"
        + _fn(
            "entry:\n  store i8 1, ptr @g\n  call void @ext(ptr @g)\n"
            "  ret i8 1",
            "i8 @f()",
        ),
    ),
    KnownBug(
        "escaped-local-clobbered-2",
        "declare void @ext(ptr)\n\n"
        + _fn(
            "entry:\n  %s = alloca i8\n  store i8 5, ptr %s\n"
            "  call void @ext(ptr %s)\n  %v = load i8, ptr %s\n"
            "  %r = add i8 %v, 1\n  ret i8 %r",
            "i8 @f()",
        ),
        "declare void @ext(ptr)\n\n"
        + _fn(
            "entry:\n  %s = alloca i8\n  store i8 5, ptr %s\n"
            "  call void @ext(ptr %s)\n  ret i8 6",
            "i8 @f()",
        ),
        detectable=False,
        miss_reason="escaped-local",
    ),
]
