"""The "LLVM unit test suite" analogue (§8.2).

A corpus of IR transformation test cases: each case carries the IR, the
pass pipeline to run, and (optionally) the pass option that injects a
§8.2-class defect together with its expected category.  The monitoring
harness runs every case through the TV plugin and classifies the
detected refinement failures — experiment E1 in DESIGN.md regenerates
the paper's violation breakdown from exactly this corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.suite.genir import GenConfig, generate_module
from repro.ir.printer import print_module


@dataclass(frozen=True)
class UnitTest:
    name: str
    ir: str
    pipeline: tuple
    # Pass option that injects a defect, and the §8.2 category it belongs
    # to; None for tests expected to validate cleanly.
    bug_option: Optional[str] = None
    category: Optional[str] = None
    # Some historical miscompilations are easier to state as an explicit
    # buggy *output* than to re-implement inside a pass: when set, the
    # harness validates ir -> buggy_target directly (a FileCheck-style
    # test whose expected output encodes the bug).
    buggy_target: Optional[str] = None


def _t(name, ir, pipeline, bug_option=None, category=None, buggy_target=None) -> UnitTest:
    return UnitTest(name, ir, tuple(pipeline), bug_option, category, buggy_target)


_HANDWRITTEN: List[UnitTest] = [
    # ---- instsimplify family (clean) --------------------------------------
    _t(
        "simplify-max-pattern",
        """
        define i1 @max1(i8 %x, i8 %y) {
        entry:
          %c = icmp sgt i8 %x, %y
          %m = select i1 %c, i8 %x, i8 %y
          %r = icmp slt i8 %m, %x
          ret i1 %r
        }
        """,
        ["instsimplify", "dce"],
    ),
    _t(
        "simplify-algebra",
        """
        define i8 @f(i8 %a, i8 %b) {
        entry:
          %x = add i8 %a, 0
          %y = mul i8 %x, 1
          %z = xor i8 %y, %y
          %w = or i8 %z, %b
          ret i8 %w
        }
        """,
        ["instsimplify", "dce"],
    ),
    _t(
        "simplify-sub-self",
        """
        define i8 @f(i8 %a) {
        entry:
          %d = sub i8 %a, %a
          %r = add i8 %d, 1
          ret i8 %r
        }
        """,
        ["instsimplify"],
    ),
    # ---- instcombine family -------------------------------------------------
    _t(
        "combine-add-self",
        "define i8 @f(i8 %a) {\nentry:\n  %x = add i8 %a, %a\n  ret i8 %x\n}",
        ["instcombine"],
    ),
    _t(
        "combine-mul-pow2",
        "define i8 @f(i8 %a) {\nentry:\n  %x = mul i8 %a, 16\n  ret i8 %x\n}",
        ["instcombine"],
    ),
    _t(
        "combine-udiv-pow2",
        "define i8 @f(i8 %a) {\nentry:\n  %x = udiv i8 %a, 4\n  ret i8 %x\n}",
        ["instcombine"],
    ),
    _t(
        "combine-urem-pow2",
        "define i8 @f(i8 %a) {\nentry:\n  %x = urem i8 %a, 8\n  ret i8 %x\n}",
        ["instcombine"],
    ),
    _t(
        "combine-select-bool",
        "define i1 @f(i1 %c) {\nentry:\n  %r = select i1 %c, i1 true, i1 false\n  ret i1 %r\n}",
        ["instcombine"],
    ),
    _t(
        "combine-zext-trunc",
        """
        define i8 @f(i8 %a) {
        entry:
          %t = trunc i8 %a to i4
          %z = zext i4 %t to i8
          ret i8 %z
        }
        """,
        ["instcombine"],
    ),
    # ---- the §8.2 bug classes ----------------------------------------------
    _t(
        "bug-select-to-and",
        """
        define i1 @f(i1 %x, i1 %y) {
        entry:
          %r = select i1 %x, i1 %y, i1 false
          ret i1 %r
        }
        """,
        ["instcombine"],
        bug_option="bug:select-to-and-or",
        category="select-ub",
    ),
    _t(
        "bug-select-to-or",
        """
        define i1 @f(i1 %x, i1 %y) {
        entry:
          %r = select i1 %x, i1 true, i1 %y
          ret i1 %r
        }
        """,
        ["instcombine"],
        bug_option="bug:select-to-and-or",
        category="select-ub",
    ),
    _t(
        "bug-nsw-reassoc",
        """
        define i8 @f(i8 %a, i8 %b, i8 %c, i8 %d) {
        entry:
          %s1 = add nsw i8 %a, %b
          %s2 = add nsw i8 %s1, %c
          %s3 = add nsw i8 %s2, %d
          ret i8 %s3
        }
        """,
        ["reassociate"],
        bug_option="bug:nsw-reassoc",
        category="arithmetic",
    ),
    _t(
        "bug-gvn-flags",
        """
        define i8 @f(i8 %a) {
        entry:
          %x = add nsw i8 %a, 1
          %y = add i8 %a, 1
          ret i8 %y
        }
        """,
        ["gvn"],
        bug_option="bug:gvn-flags",
        category="arithmetic",
    ),
    _t(
        "bug-fadd-zero",
        """
        define half @f(half %a, half %b) {
        entry:
          %c = fmul nsz half %a, %b
          %r = fadd half %c, 0.0
          ret half %r
        }
        """,
        ["instcombine"],
        bug_option="bug:fadd-zero",
        category="fast-math",
    ),
    _t(
        "bug-speculate-branch",
        """
        define i8 @f(i1 %c) {
        entry:
          %r = select i1 %c, i8 1, i8 2
          ret i8 %r
        }
        """,
        ["simplifycfg"],
        bug_option="bug:speculate-branch",
        category="branch-on-undef",
    ),
    _t(
        "bug-undef-shift",
        """
        define i8 @f(i8 %x) {
        entry:
          %r = shl i8 undef, %x
          %s = or i8 %r, 1
          ret i8 %s
        }
        """,
        ["instcombine"],
        bug_option="bug:undef-shift",
        category="undef-input",
    ),
    _t(
        "bug-licm-div",
        """
        define i8 @f(i8 %n, i8 %k) {
        entry:
          br label %header
        header:
          %i = phi i8 [ 0, %entry ], [ %i2, %body ]
          %c = icmp ult i8 %i, %n
          br i1 %c, label %body, label %exit
        body:
          %q = udiv i8 9, %k
          %i2 = add i8 %i, 1
          br label %header
        exit:
          ret i8 %i
        }
        """,
        ["licm"],
        bug_option="bug:licm-speculate-div",
        category="loop-memory",
    ),
    _t(
        # %q is a zero-offset gep of %p, so the store through %q clobbers
        # the bytes %b re-reads; the buggy load elimination forwards %a
        # across it anyway.
        "bug-gvn-alias-forward",
        """
        define i8 @f(ptr %p, i8 %v) {
        entry:
          %q = getelementptr i8, ptr %p, i8 0
          %a = load i8, ptr %p
          store i8 %v, ptr %q
          %b = load i8, ptr %p
          ret i8 %b
        }
        """,
        ["gvn"],
        bug_option="bug:gvn-alias-forward",
        category="memory",
    ),
    _t(
        # The first store is observed by the load through %q (a second
        # provenance of the same bytes); the buggy DSE deletes it because
        # the load's pointer is syntactically different.
        "bug-gvn-dse-alias",
        """
        define i8 @f(ptr %p, i8 %v) {
        entry:
          %q = getelementptr i8, ptr %p, i8 0
          store i8 %v, ptr %p
          %l = load i8, ptr %q
          store i8 9, ptr %p
          ret i8 %l
        }
        """,
        ["gvn"],
        bug_option="bug:gvn-dse-alias",
        category="memory",
    ),
    # ---- historical miscompilations stated as explicit outputs -------------
    _t(
        "bug-shuffle-lane-drop",
        """
        define <2 x i8> @f(<2 x i8> %v) {
        entry:
          %s = shufflevector <2 x i8> %v, <2 x i8> poison, <2 x i8> <i8 1, i8 0>
          ret <2 x i8> %s
        }
        """,
        ["instcombine"],
        category="vector",
        buggy_target="""
        define <2 x i8> @f(<2 x i8> %v) {
        entry:
          ret <2 x i8> %v
        }
        """,
    ),
    _t(
        "bug-vector-insert-wrong-lane",
        """
        define <2 x i8> @f(<2 x i8> %v, i8 %x) {
        entry:
          %r = insertelement <2 x i8> %v, i8 %x, i8 0
          ret <2 x i8> %r
        }
        """,
        ["instcombine"],
        category="vector",
        buggy_target="""
        define <2 x i8> @f(<2 x i8> %v, i8 %x) {
        entry:
          %r = insertelement <2 x i8> %v, i8 %x, i8 1
          ret <2 x i8> %r
        }
        """,
    ),
    _t(
        "bug-dse-observable-store",
        """
        define void @f(ptr %p, i8 %v) {
        entry:
          store i8 %v, ptr %p
          store i8 1, ptr %p
          store i8 %v, ptr %p
          ret void
        }
        """,
        ["gvn"],
        category="memory",
        buggy_target="""
        define void @f(ptr %p, i8 %v) {
        entry:
          store i8 1, ptr %p
          ret void
        }
        """,
    ),
    _t(
        "bug-load-forward-across-clobber",
        """
        declare void @ext(ptr)

        define i8 @f(ptr %p) {
        entry:
          store i8 3, ptr %p
          call void @ext(ptr %p)
          %v = load i8, ptr %p
          ret i8 %v
        }
        """,
        ["gvn"],
        category="memory",
        buggy_target="""
        declare void @ext(ptr)

        define i8 @f(ptr %p) {
        entry:
          store i8 3, ptr %p
          call void @ext(ptr %p)
          ret i8 3
        }
        """,
    ),
    _t(
        "bug-bitcast-rematerialization",
        """
        define i8 @f(half %x) {
        entry:
          %i = bitcast half %x to i8
          %r = xor i8 %i, %i
          ret i8 %r
        }
        """,
        ["gvn"],
        category="fp-bitcast",
        buggy_target="""
        define i8 @f(half %x) {
        entry:
          %i1 = bitcast half %x to i8
          %i2 = bitcast half %x to i8
          %r = xor i8 %i1, %i2
          ret i8 %r
        }
        """,
    ),
    # ---- memory / mem2reg / gvn (clean) -------------------------------------
    _t(
        "mem2reg-diamond",
        """
        define i8 @f(i1 %c, i8 %v) {
        entry:
          %slot = alloca i8
          store i8 %v, ptr %slot
          br i1 %c, label %then, label %else
        then:
          store i8 42, ptr %slot
          br label %join
        else:
          br label %join
        join:
          %r = load i8, ptr %slot
          ret i8 %r
        }
        """,
        ["mem2reg", "simplifycfg"],
    ),
    _t(
        "gvn-redundant-load",
        """
        define i8 @f(ptr %p) {
        entry:
          %v1 = load i8, ptr %p
          %v2 = load i8, ptr %p
          %s = add i8 %v1, %v2
          ret i8 %s
        }
        """,
        ["gvn"],
    ),
    _t(
        "gvn-store-forward",
        """
        define i8 @f(ptr %p, i8 %v) {
        entry:
          store i8 %v, ptr %p
          %l = load i8, ptr %p
          ret i8 %l
        }
        """,
        ["gvn"],
    ),
    _t(
        # Symbolic-provenance store: the select keeps the stored block
        # abstract, but both candidates are locals, so caller-visible
        # memory (%p's block) is provably untouched and the memory check
        # is discharged by the R-alias-disjoint prescreen rule.
        "select-of-allocas-store",
        """
        define i8 @f(ptr %p, i1 %c, i8 %v) {
        entry:
          %a = alloca i8
          %b = alloca i8
          %q = select i1 %c, ptr %a, ptr %b
          store i8 %v, ptr %q
          %r = load i8, ptr %q
          ret i8 %r
        }
        """,
        ["gvn"],
    ),
    _t(
        # The access is wider than every candidate block (the scaled-down
        # model gives argument blocks 4 bytes), so the source is UB on
        # every path and R-oob-ub discharges all checks.
        "entry-oob-access",
        """
        define i64 @f(ptr %p) {
        entry:
          %v = load i64, ptr %p
          %w = add i64 %v, 0
          ret i64 %w
        }
        """,
        ["instsimplify"],
    ),
    # ---- cfg (clean) ---------------------------------------------------------
    _t(
        "cfg-diamond-to-select",
        """
        define i8 @f(i1 %c) {
        entry:
          br i1 %c, label %a, label %b
        a:
          br label %join
        b:
          br label %join
        join:
          %r = phi i8 [ 1, %a ], [ 2, %b ]
          ret i8 %r
        }
        """,
        ["simplifycfg"],
    ),
    _t(
        "cfg-constant-branch",
        """
        define i8 @f(i8 %x) {
        entry:
          br i1 true, label %a, label %b
        a:
          ret i8 %x
        b:
          ret i8 0
        }
        """,
        ["simplifycfg"],
    ),
    # ---- vectors (clean) ------------------------------------------------------
    _t(
        "vector-add",
        """
        define <2 x i8> @f(<2 x i8> %v) {
        entry:
          %r = add <2 x i8> %v, <i8 1, i8 1>
          ret <2 x i8> %r
        }
        """,
        ["instsimplify"],
    ),
    # ---- freeze / undef (clean) ------------------------------------------------
    _t(
        "freeze-even",
        """
        define i8 @f(i8 %a) {
        entry:
          %f = freeze i8 %a
          %r = add i8 %f, %f
          ret i8 %r
        }
        """,
        ["instcombine"],
    ),
    # ---- more peepholes and CFG patterns (clean) ------------------------------
    _t(
        "simplify-icmp-tautologies",
        """
        define i1 @f(i8 %a) {
        entry:
          %c1 = icmp ule i8 %a, %a
          %c2 = icmp ult i8 %a, %a
          %r = xor i1 %c1, %c2
          ret i1 %r
        }
        """,
        ["instsimplify"],
    ),
    _t(
        "switch-dispatch",
        """
        define i8 @f(i8 %x) {
        entry:
          switch i8 %x, label %d [ i8 0, label %a i8 1, label %b ]
        a:
          ret i8 10
        b:
          ret i8 20
        d:
          ret i8 30
        }
        """,
        ["simplifycfg", "dce"],
    ),
    _t(
        "gep-chain",
        """
        define i8 @f(ptr %p, i8 %i) {
        entry:
          %q = getelementptr i8, ptr %p, i8 1
          %r = getelementptr i8, ptr %q, i8 1
          %v = load i8, ptr %r
          ret i8 %v
        }
        """,
        ["gvn", "instsimplify"],
    ),
    _t(
        "phi-constant-merge",
        """
        define i8 @f(i1 %c) {
        entry:
          br i1 %c, label %a, label %b
        a:
          br label %join
        b:
          br label %join
        join:
          %x = phi i8 [ 7, %a ], [ 7, %b ]
          ret i8 %x
        }
        """,
        ["simplifycfg", "instsimplify", "dce"],
    ),
    _t(
        "freeze-dedup",
        """
        define i8 @f(i8 %a) {
        entry:
          %f1 = freeze i8 %a
          %f2 = freeze i8 %a
          %r = add i8 %f1, %f2
          ret i8 %r
        }
        """,
        ["instcombine", "dce"],
    ),
    _t(
        "sat-intrinsic-pipeline",
        """
        declare i8 @llvm.uadd.sat.i8(i8, i8)

        define i8 @f(i8 %a) {
        entry:
          %r = call i8 @llvm.uadd.sat.i8(i8 %a, i8 0)
          ret i8 %r
        }
        """,
        ["instsimplify", "dce"],
    ),
    _t(
        "store-forwarding-chain",
        """
        define i8 @f(i8 %v) {
        entry:
          %s1 = alloca i8
          %s2 = alloca i8
          store i8 %v, ptr %s1
          %t = load i8, ptr %s1
          store i8 %t, ptr %s2
          %u = load i8, ptr %s2
          ret i8 %u
        }
        """,
        ["mem2reg", "gvn", "dce"],
    ),
    # ---- loops (clean) -----------------------------------------------------------
    _t(
        "licm-invariant-mul",
        """
        define i8 @f(i8 %n, i8 %k) {
        entry:
          br label %header
        header:
          %i = phi i8 [ 0, %entry ], [ %i2, %body ]
          %c = icmp ult i8 %i, %n
          br i1 %c, label %body, label %exit
        body:
          %inv = mul i8 %k, 3
          %i2 = add i8 %i, 1
          br label %header
        exit:
          ret i8 %i
        }
        """,
        ["licm"],
    ),
]


def _generated_tests(count: int, seed: int = 2021) -> List[UnitTest]:
    """Random clean tests run through the full pipeline."""
    out: List[UnitTest] = []
    config = GenConfig(allow_branches=True, allow_loops=True, allow_memory=True)
    for i in range(count):
        module = generate_module(seed + i, 1, config)
        out.append(
            _t(
                f"gen-{i}",
                print_module(module),
                ["instsimplify", "instcombine", "gvn", "simplifycfg", "dce"],
            )
        )
    return out


def build_corpus(generated: int = 24, seed: int = 2021) -> List[UnitTest]:
    return list(_HANDWRITTEN) + _generated_tests(generated, seed)


UNIT_TESTS: List[UnitTest] = build_corpus()
