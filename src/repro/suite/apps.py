"""Synthetic "single-file applications" (Figure 7 substrate).

The paper compiles bzip2, gzip, oggenc, ph7 and SQLite at -O3 and
validates each function pair around every pass.  We cannot ship those
programs, so each benchmark is modelled by a generated module whose
function count is scaled (~1:40) from the paper's pair counts and whose
feature mix (loops, memory traffic, calls) loosely matches the program's
character.  What the experiment *measures* — per-app totals of
validated/incorrect/timeout/OOM/unsupported pairs and wall-clock time —
exercises exactly the same code paths as the paper's Figure 7 run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.ir.module import Module
from repro.suite.genir import GenConfig, generate_module


@dataclass(frozen=True)
class AppSpec:
    name: str
    loc: int  # paper's lines-of-code figure, for the table
    functions: int  # scaled function count
    seed: int
    config: GenConfig


O3_PIPELINE = [
    "mem2reg",
    "instsimplify",
    "instcombine",
    "simplifycfg",
    "reassociate",
    "licm",
    "gvn",
    "instsimplify",
    "dce",
]

# Scaled-down stand-ins for the paper's five benchmarks.  Function counts
# are proportional to the paper's "Diff" column (non-identical pairs).
APP_SPECS: List[AppSpec] = [
    AppSpec(
        "bzip2", 5_100, 10, 101,
        GenConfig(allow_loops=True, allow_memory=True, max_instructions=8),
    ),
    AppSpec(
        "gzip", 5_300, 12, 102,
        GenConfig(allow_loops=True, allow_memory=True, max_instructions=7),
    ),
    AppSpec(
        "oggenc", 48_000, 9, 103,
        GenConfig(allow_loops=True, allow_memory=True, allow_floats=True,
                  max_instructions=9),
    ),
    AppSpec(
        "ph7", 43_000, 22, 104,
        GenConfig(allow_branches=True, allow_memory=True, max_instructions=10),
    ),
    AppSpec(
        "sqlite3", 141_000, 40, 105,
        GenConfig(allow_loops=True, allow_branches=True, allow_memory=True,
                  max_instructions=10),
    ),
]


def build_app(spec: AppSpec) -> Module:
    return generate_module(spec.seed, spec.functions, spec.config)


def build_all_apps() -> Dict[str, Module]:
    return {spec.name: build_app(spec) for spec in APP_SPECS}
