"""``alive-suite``: run the evaluation corpora from the command line."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.refinement.check import VerifyOptions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="alive-suite",
        description="Run the Alive2-reproduction evaluation corpora.",
    )
    parser.add_argument(
        "what",
        choices=["unittests", "apps", "knownbugs"],
        help="which corpus to run",
    )
    parser.add_argument("--timeout", type=float, default=20.0)
    parser.add_argument("--unroll", type=int, default=4)
    parser.add_argument(
        "--clean", action="store_true",
        help="unittests: run without injected bugs (false-alarm measurement)",
    )
    args = parser.parse_args(argv)
    options = VerifyOptions(timeout_s=args.timeout, unroll_factor=args.unroll)

    if args.what == "unittests":
        from repro.suite.runner import run_suite
        from repro.suite.unittests import UNIT_TESTS

        outcome = run_suite(UNIT_TESTS, options, inject_bugs=not args.clean)
        print(f"analyzed: {outcome.tally.analyzed}")
        print(f"correct: {outcome.tally.correct}  incorrect: {outcome.tally.incorrect}")
        print(f"timeout: {outcome.tally.timeout}  oom: {outcome.tally.oom}")
        print("violations by category:")
        for row in outcome.summary_rows():
            print(f"  {row['category']}: {row['violations']}")
        if outcome.missed:
            print(f"missed injected bugs: {outcome.missed}")
        if outcome.clean_failures:
            print(f"FALSE ALARMS: {outcome.clean_failures}")
        return 1 if outcome.clean_failures else 0

    if args.what == "apps":
        from repro.suite.apps import APP_SPECS, O3_PIPELINE, build_app
        from repro.tv.plugin import validate_pipeline

        print(f"{'prog':>8} {'fns':>5} {'time(s)':>8} {'ok':>4} {'bad':>4} "
              f"{'TO':>3} {'OOM':>4} {'unsup':>6}")
        for spec in APP_SPECS:
            module = build_app(spec)
            report = validate_pipeline(module, O3_PIPELINE, options)
            t = report.tally
            print(
                f"{spec.name:>8} {spec.functions:>5} {t.total_time_s:>8.1f} "
                f"{t.correct:>4} {t.incorrect:>4} {t.timeout:>3} {t.oom:>4} "
                f"{t.unsupported + t.approx:>6}"
            )
        return 0

    # knownbugs
    from repro.ir.parser import parse_module
    from repro.refinement.check import Verdict, verify_refinement
    from repro.suite.knownbugs import KNOWN_BUGS

    detected = missed = 0
    for bug in KNOWN_BUGS:
        sm, tm = parse_module(bug.src), parse_module(bug.tgt)
        result = verify_refinement(
            sm.definitions()[0], tm.definitions()[0], sm, tm, options
        )
        found = result.verdict is Verdict.INCORRECT
        status = "DETECTED" if found else f"missed ({bug.miss_reason or '?'})"
        print(f"  {bug.name}: {status}")
        detected += found
        missed += not found
    print(f"{detected} detected, {missed} missed of {len(KNOWN_BUGS)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
