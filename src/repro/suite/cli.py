"""``alive-suite``: run the evaluation corpora from the command line."""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from repro.refinement.check import VerifyOptions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="alive-suite",
        description="Run the Alive2-reproduction evaluation corpora.",
    )
    parser.add_argument(
        "what",
        choices=["unittests", "apps", "knownbugs"],
        help="which corpus to run",
    )
    parser.add_argument("--timeout", type=float, default=20.0)
    parser.add_argument("--unroll", type=int, default=4)
    parser.add_argument(
        "--clean", action="store_true",
        help="unittests: run without injected bugs (false-alarm measurement)",
    )
    parser.add_argument(
        "--limit", type=int, default=None,
        help="unittests: only run the first N tests of the corpus",
    )
    parser.add_argument("--batch", type=int, default=1,
                        help="validate every N changed passes as one step (§8.4)")
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="unittests: append per-test outcomes to this JSONL file; "
             "a re-invocation resumes from it, re-running only unfinished tests",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry TIMEOUT/OOM jobs up to N times with degraded settings "
             "(halved unroll factor / conflict budget, smaller memory model)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="unittests: run tests across N worker processes "
             "(default: all CPUs); 1 forces the in-process sequential path",
    )
    parser.add_argument(
        "--query-cache", nargs="?", const="", default=None, metavar="PATH",
        help="enable the solver query-result cache (off by default); "
             "with PATH, persist it to a JSONL file shared across runs "
             "and workers, otherwise keep it in memory for this run",
    )
    parser.add_argument(
        "--no-query-cache", action="store_true",
        help="force the query-result cache off (overrides --query-cache)",
    )
    parser.add_argument(
        "--cache-shards", type=int, default=8, metavar="N",
        help="split the persistent query cache into N digest-routed shard "
             "files so each worker loads/appends only its owned slice; 1 "
             "keeps the legacy single-file layout (existing files are "
             "migrated automatically on first sharded open)",
    )
    parser.add_argument(
        "--warm-pool", action="store_true",
        help="unittests: run --jobs workers as a persistent pre-forked "
             "pool (serve-supervised: heartbeats, hang SIGKILL, restart "
             "backoff) instead of a fresh process pool; interned terms "
             "and the in-memory cache tier stay warm across tests",
    )
    parser.add_argument(
        "--no-prescreen", action="store_true",
        help="disable the static-analysis prescreen that discharges "
             "refinement queries without the solver (ablation switch)",
    )
    parser.add_argument(
        "--no-egraph", action="store_true",
        help="disable the equality-saturation simplifier that discharges "
             "or shrinks queries before the bit-blaster (ablation switch)",
    )
    parser.add_argument(
        "--no-memdf", action="store_true",
        help="disable the points-to/memory-dataflow layer: the alias/"
             "forwarding/OOB prescreen rules, encoder case-split pruning, "
             "and memory-refinement block skipping (ablation switch)",
    )
    parser.add_argument(
        "--no-relational", action="store_true",
        help="disable the relational abstract interpreter: the "
             "R-relational-equal prescreen rules, cross-function witness "
             "seeds for the e-graph and CEGAR rungs, and alignment-aware "
             "counterexample notes (ablation switch)",
    )
    parser.add_argument(
        "--max-ef-iterations", type=int, default=None, metavar="N",
        help="cap CEGAR (exists-forall) refinement iterations per query; "
             "raise it when comparing ablation configs byte-for-byte so "
             "neither side hits the ceiling (exhaustion reports TIMEOUT)",
    )
    parser.add_argument(
        "--certify", action="store_true",
        help="log a RUP proof for every UNSAT solver answer and have the "
             "independent checker validate it; a rejected proof downgrades "
             "the verdict to SOLVER_UNSOUND instead of trusting the solver",
    )
    parser.add_argument(
        "--inject-unsound", default=None, metavar="TEST",
        help="fault injection: corrupt a learned clause in TEST's solver "
             "so it claims a bogus UNSAT (demonstrates what --certify "
             "catches; without --certify the bogus verdict goes unnoticed)",
    )
    parser.add_argument(
        "--server", default=None, metavar="ADDR",
        help="unittests: route every test through a running alive-serve "
             "daemon at ADDR (unix:/path or host:port) instead of running "
             "locally; verdict accounting is identical to a local run",
    )
    parser.add_argument(
        "--verdicts-out", default=None, metavar="PATH",
        help="unittests: write one stable JSON line per test (name, "
             "verdicts, classification) to PATH — timing-free, so local "
             "and --server runs of the same corpus compare byte-for-byte",
    )
    args = parser.parse_args(argv)
    if args.cache_shards <= 0:
        parser.error(
            f"--cache-shards must be a positive integer, got {args.cache_shards}"
        )
    options = VerifyOptions(
        timeout_s=args.timeout,
        unroll_factor=args.unroll,
        prescreen=not args.no_prescreen,
        egraph=not args.no_egraph,
        memdf=not args.no_memdf,
        relational=not args.no_relational,
        certify=args.certify,
    )
    if args.max_ef_iterations is not None:
        if args.max_ef_iterations <= 0:
            parser.error(
                "--max-ef-iterations must be a positive integer, "
                f"got {args.max_ef_iterations}"
            )
        options = replace(options, max_ef_iterations=args.max_ef_iterations)
    ladder = None
    if args.retries > 0:
        from repro.harness.degrade import DegradationLadder

        ladder = DegradationLadder(max_retries=args.retries)

    if args.what == "unittests":
        from repro.engine.pool import default_jobs
        from repro.suite.runner import run_suite
        from repro.suite.unittests import UNIT_TESTS

        jobs = args.jobs if args.jobs is not None else default_jobs()
        # Opt-in: verdicts only replay across tests/runs when asked for,
        # keeping default runs comparable with earlier sequential ones.
        # The raw path (not a loaded QueryCache) goes to run_suite so
        # pooled runs never parse the cache file in the parent.
        cache = None
        cache_shards = args.cache_shards
        if args.query_cache is not None and not args.no_query_cache:
            cache = args.query_cache
        tests = UNIT_TESTS[: args.limit] if args.limit is not None else UNIT_TESTS
        fault_plan = None
        if args.inject_unsound is not None:
            from repro.harness.faults import FaultPlan, FaultSpec

            fault_plan = FaultPlan(
                {args.inject_unsound: FaultSpec(kind="unsound", site="ef")}
            )
        if args.server is not None:
            from repro.serve.client import ServeClient
            from repro.suite.runner import outcome_from_records

            with ServeClient(args.server) as client:
                records = client.submit_corpus(
                    tests,
                    options,
                    inject_bugs=not args.clean,
                    batch=args.batch,
                    retries=args.retries,
                )
            outcome = outcome_from_records(records)
        else:
            warm_pool = None
            if args.warm_pool:
                from repro.engine.warmpool import WarmPool

                warm_pool = WarmPool(
                    jobs=jobs,
                    cache_enabled=cache is not None,
                    cache_path=cache or None,
                    cache_shards=cache_shards,
                )
            try:
                outcome = run_suite(
                    tests,
                    options,
                    inject_bugs=not args.clean,
                    batch=args.batch,
                    journal=args.journal,
                    fault_plan=fault_plan,
                    ladder=ladder,
                    jobs=jobs,
                    query_cache=cache,
                    cache_shards=cache_shards,
                    warm_pool=warm_pool,
                )
            finally:
                if warm_pool is not None:
                    warm_pool.close()
        if args.verdicts_out is not None:
            import json

            with open(args.verdicts_out, "w", encoding="utf-8") as fh:
                for rec in outcome.records:
                    fh.write(
                        json.dumps(
                            {
                                "test": rec.test,
                                "category": rec.category,
                                "verdicts": rec.verdicts,
                                "detected": rec.detected,
                                "missed": rec.missed,
                                "clean_failure": rec.clean_failure,
                                "degradations": rec.degradations,
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
        print(f"analyzed: {outcome.tally.analyzed}")
        print(f"correct: {outcome.tally.correct}  incorrect: {outcome.tally.incorrect}")
        print(f"timeout: {outcome.tally.timeout}  oom: {outcome.tally.oom}  "
              f"crash: {outcome.tally.crash}")
        if outcome.resumed:
            print(f"resumed from journal: {outcome.resumed} tests")
        t = outcome.tally
        if t.qcache_hits or t.qcache_misses:
            print(
                f"query cache: {t.qcache_hits} hits / {t.qcache_misses} misses "
                f"({t.qcache_hit_rate:.0%} hit rate)"
            )
        if t.qcache_load_entries or t.qcache_load_bytes or t.qcache_evictions:
            print(
                f"cache tier: {t.qcache_load_entries} entries / "
                f"{t.qcache_load_bytes} bytes loaded across workers, "
                f"{t.qcache_evictions} LRU evictions"
            )
        if outcome.worker_cache:
            for pid in sorted(outcome.worker_cache):
                c = outcome.worker_cache[pid]
                print(
                    f"  pid {pid}: owned {c.get('owned_shards')}/"
                    f"{c.get('shards')} shards, loaded "
                    f"{c.get('load_entries', 0)} entries / "
                    f"{c.get('load_bytes', 0)} bytes, "
                    f"{c.get('hits', 0)} hits / {c.get('misses', 0)} misses"
                )
        if t.prescreen_hits or t.prescreen_misses:
            print(
                f"prescreen: {t.prescreen_hits} discharged / "
                f"{t.prescreen_misses} passed to solver "
                f"({t.prescreen_hit_rate:.0%} hit rate)"
            )
        if t.lint_errors or t.lint_warnings:
            print(
                f"lint: {t.lint_errors} errors, {t.lint_warnings} warnings"
            )
        if t.egraph_proved or t.egraph_shrunk or t.egraph_misses:
            print(
                f"egraph: {t.egraph_proved} proved without solver, "
                f"{t.egraph_shrunk} shrunk, {t.egraph_misses} unchanged"
            )
        if t.memdf_rule_hits or t.memdf_narrowed or t.memdf_block_skips:
            print(
                f"memdf: {t.memdf_rule_hits} queries discharged by memory "
                f"rules, {t.memdf_narrowed} accesses narrowed, "
                f"{t.memdf_block_skips} block case-splits pruned"
            )
        if (
            t.relational_rule_hits
            or t.relational_seed_pairs
            or t.relational_aligned_blocks
        ):
            print(
                f"relational: {t.relational_rule_hits} queries discharged "
                f"by R-relational-equal, {t.relational_seed_pairs} witness "
                f"pairs seeded, {t.relational_aligned_blocks} certified "
                f"block pairs aligned"
            )
        if t.phase_time_s:
            print(
                "phase times: "
                + ", ".join(
                    f"{k}={v:.2f}s" for k, v in sorted(t.phase_time_s.items())
                )
            )
        if t.certified_unsat or t.cert_failures:
            print(
                f"certified: {t.certified_unsat} UNSAT proofs accepted, "
                f"{t.cert_failures} rejected, {t.core_lits} core lits"
            )
        by_worker: dict = {}
        for rec in outcome.records:
            if rec.worker is None:
                continue
            stats = by_worker.setdefault(
                rec.worker, {"tests": 0, "time_s": 0.0, "checks": 0}
            )
            stats["tests"] += 1
            stats["time_s"] += rec.elapsed_s
            stats["checks"] += rec.solver_checks
        if by_worker:
            print(f"workers ({jobs} requested, {len(by_worker)} used):")
            for pid in sorted(by_worker):
                stats = by_worker[pid]
                print(
                    f"  pid {pid}: {stats['tests']} tests, "
                    f"{stats['checks']} solver checks, {stats['time_s']:.1f}s"
                )
        if outcome.crashed:
            print(f"contained crashes: {outcome.crashed}")
        degraded = [r.test for r in outcome.records if r.degradations]
        if degraded:
            print(f"degraded retries: {degraded}")
        print("violations by category:")
        for row in outcome.summary_rows():
            print(f"  {row['category']}: {row['violations']}")
        if outcome.missed:
            print(f"missed injected bugs: {outcome.missed}")
        if outcome.solver_unsound:
            print(f"SOLVER UNSOUND (rejected certificates): "
                  f"{outcome.solver_unsound}")
        if outcome.clean_failures:
            print(f"FALSE ALARMS: {outcome.clean_failures}")
        return 1 if (outcome.clean_failures or outcome.solver_unsound) else 0

    if args.what == "apps":
        from repro.suite.apps import APP_SPECS, O3_PIPELINE, build_app
        from repro.tv.plugin import validate_pipeline

        print(f"{'prog':>8} {'fns':>5} {'time(s)':>8} {'ok':>4} {'bad':>4} "
              f"{'TO':>3} {'OOM':>4} {'crash':>6} {'unsup':>6}")
        for spec in APP_SPECS:
            module = build_app(spec)
            report = validate_pipeline(
                module, O3_PIPELINE, options, batch=args.batch, ladder=ladder
            )
            t = report.tally
            print(
                f"{spec.name:>8} {spec.functions:>5} {t.total_time_s:>8.1f} "
                f"{t.correct:>4} {t.incorrect:>4} {t.timeout:>3} {t.oom:>4} "
                f"{t.crash:>6} {t.unsupported + t.approx:>6}"
            )
        return 0

    # knownbugs
    from repro.harness.isolation import run_verification_job
    from repro.ir.parser import parse_module
    from repro.refinement.check import Verdict
    from repro.suite.knownbugs import KNOWN_BUGS

    detected = missed = 0
    for bug in KNOWN_BUGS:
        sm, tm = parse_module(bug.src), parse_module(bug.tgt)
        result = run_verification_job(
            sm.definitions()[0], tm.definitions()[0], sm, tm, options, ladder=ladder
        )
        found = result.verdict is Verdict.INCORRECT
        status = "DETECTED" if found else f"missed ({bug.miss_reason or '?'})"
        print(f"  {bug.name}: {status}")
        detected += found
        missed += not found
    print(f"{detected} detected, {missed} missed of {len(KNOWN_BUGS)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
