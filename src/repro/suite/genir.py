"""Seeded random IR generator.

Produces well-formed functions over a configurable feature mix:
straight-line integer arithmetic, comparisons and selects, branches and
phi diamonds, bounded loops, memory (alloca/load/store/gep), floats, and
calls to a few declared externals.  Used to scale the unit-test corpus
and to synthesize the "application" modules of Figure 7.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.ir.module import Module
from repro.ir.parser import parse_module


@dataclass
class GenConfig:
    width: int = 8  # integer width for generated code
    max_instructions: int = 10
    allow_branches: bool = True
    allow_loops: bool = False
    allow_memory: bool = False
    allow_floats: bool = False
    allow_calls: bool = False
    allow_flags: bool = True
    allow_undef_consts: bool = True
    num_args: int = 3


_INT_OPS = ["add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr"]
_DIV_OPS = ["udiv", "urem", "sdiv", "srem"]
_ICMP_PREDS = ["eq", "ne", "ult", "ule", "slt", "sle", "ugt", "sgt"]


class FunctionGenerator:
    """Generates one function's textual IR."""

    def __init__(self, rng: random.Random, config: GenConfig) -> None:
        self.rng = rng
        self.config = config
        self.counter = 0
        self.int_values: List[str] = []  # available iN registers/constants
        self.bool_values: List[str] = []  # available i1 registers
        self.lines: List[str] = []

    def fresh(self, hint: str = "t") -> str:
        self.counter += 1
        return f"%{hint}{self.counter}"

    def _ty(self) -> str:
        return f"i{self.config.width}"

    def operand(self) -> str:
        rng = self.rng
        choices = list(self.int_values)
        if rng.random() < 0.35 or not choices:
            if self.config.allow_undef_consts and rng.random() < 0.08:
                return "undef"
            return str(rng.randint(-4, 2 ** self.config.width - 1))
        return rng.choice(choices)

    def emit_arith(self) -> None:
        rng = self.rng
        name = self.fresh()
        if rng.random() < 0.12:
            op = rng.choice(_DIV_OPS)
            # Keep divisors non-zero-ish to avoid trivially-UB programs.
            divisor = rng.choice(
                [str(rng.randint(1, 2 ** self.config.width - 1))]
                + self.int_values[-1:]
            )
            self.lines.append(
                f"  {name} = {op} {self._ty()} {self.operand()}, {divisor}"
            )
        else:
            op = rng.choice(_INT_OPS)
            flags = ""
            if self.config.allow_flags and op in ("add", "sub", "mul", "shl"):
                if rng.random() < 0.3:
                    flags = " " + rng.choice(["nsw", "nuw", "nsw nuw"])
            self.lines.append(
                f"  {name} = {op}{flags} {self._ty()} {self.operand()}, {self.operand()}"
            )
        self.int_values.append(name)

    def emit_icmp(self) -> None:
        name = self.fresh("c")
        pred = self.rng.choice(_ICMP_PREDS)
        self.lines.append(
            f"  {name} = icmp {pred} {self._ty()} {self.operand()}, {self.operand()}"
        )
        self.bool_values.append(name)

    def emit_select(self) -> None:
        if not self.bool_values:
            self.emit_icmp()
        name = self.fresh("s")
        cond = self.rng.choice(self.bool_values)
        ty = self._ty()
        self.lines.append(
            f"  {name} = select i1 {cond}, {ty} {self.operand()}, {ty} {self.operand()}"
        )
        self.int_values.append(name)

    def emit_freeze(self) -> None:
        name = self.fresh("fr")
        self.lines.append(
            f"  {name} = freeze {self._ty()} {self.operand()}"
        )
        self.int_values.append(name)

    def straight_line_body(self, count: int) -> None:
        for _ in range(count):
            roll = self.rng.random()
            if roll < 0.55:
                self.emit_arith()
            elif roll < 0.75:
                self.emit_icmp()
            elif roll < 0.92:
                self.emit_select()
            else:
                self.emit_freeze()

    def generate(self, name: str) -> str:
        rng = self.rng
        config = self.config
        ty = self._ty()
        args = ", ".join(f"{ty} %a{i}" for i in range(config.num_args))
        self.int_values = [f"%a{i}" for i in range(config.num_args)]
        self.lines = []

        shape = "straight"
        if config.allow_loops and rng.random() < 0.35:
            shape = "loop"
        elif config.allow_branches and rng.random() < 0.5:
            shape = "diamond"
        if config.allow_memory and rng.random() < 0.4:
            shape = "memory"

        if shape == "straight":
            self.straight_line_body(rng.randint(2, config.max_instructions))
            result = self.operand()
            body = "entry:\n" + "\n".join(self.lines) + f"\n  ret {ty} {result}"
        elif shape == "diamond":
            self.straight_line_body(rng.randint(1, 3))
            self.emit_icmp()
            cond = self.bool_values[-1]
            then_gen = rng.randint(1, 3)
            head = "entry:\n" + "\n".join(self.lines)
            # Values defined in one branch must not be used in the other
            # (SSA dominance): snapshot the pools around each branch body.
            entry_ints = list(self.int_values)
            entry_bools = list(self.bool_values)
            self.lines = []
            self.straight_line_body(then_gen)
            v_then = self.operand()
            then_body = "\n".join(self.lines)
            self.int_values = list(entry_ints)
            self.bool_values = list(entry_bools)
            self.lines = []
            self.straight_line_body(rng.randint(1, 3))
            v_else = self.operand()
            else_body = "\n".join(self.lines)
            self.int_values = list(entry_ints)
            self.bool_values = list(entry_bools)
            body = (
                f"{head}\n  br i1 {cond}, label %then, label %else\n"
                f"then:\n{then_body}\n  br label %join\n"
                f"else:\n{else_body}\n  br label %join\n"
                "join:\n"
                f"  %phi = phi {ty} [ {v_then}, %then ], [ {v_else}, %else ]\n"
                f"  ret {ty} %phi"
            )
        elif shape == "loop":
            trip = rng.randint(1, 3)
            self.straight_line_body(rng.randint(1, 3))
            step = self.operand()
            head = "entry:\n" + "\n".join(self.lines)
            body = (
                f"{head}\n  br label %header\n"
                "header:\n"
                f"  %i = phi {ty} [ 0, %entry ], [ %i.next, %latch ]\n"
                f"  %acc = phi {ty} [ {step}, %entry ], [ %acc.next, %latch ]\n"
                f"  %cond = icmp ult {ty} %i, {trip}\n"
                "  br i1 %cond, label %latch, label %exit\n"
                "latch:\n"
                f"  %acc.next = add {ty} %acc, %i\n"
                f"  %i.next = add {ty} %i, 1\n"
                "  br label %header\n"
                "exit:\n"
                f"  ret {ty} %acc"
            )
        else:  # memory
            self.straight_line_body(rng.randint(1, 3))
            v = self.operand()
            idx = rng.randint(0, 3)
            body = (
                "entry:\n" + "\n".join(self.lines) + "\n"
                "  %slot = alloca [4 x " + ty + "]\n"
                f"  %p = getelementptr {ty}, ptr %slot, {ty} {idx}\n"
                f"  store {ty} {v}, ptr %p\n"
                f"  %lv = load {ty}, ptr %p\n"
                f"  ret {ty} %lv"
            )
        return f"define {ty} @{name}({args}) {{\n{body}\n}}"


def generate_module(
    seed: int,
    num_functions: int,
    config: Optional[GenConfig] = None,
) -> Module:
    """Generate a module with ``num_functions`` random functions."""
    rng = random.Random(seed)
    config = config or GenConfig()
    parts = []
    for i in range(num_functions):
        gen = FunctionGenerator(rng, config)
        parts.append(gen.generate(f"fn{i}"))
    return parse_module("\n\n".join(parts))
