"""Crash-safe resumable runs: an append-only JSONL outcome journal.

Every completed test appends exactly one JSON line, flushed immediately,
so a killed run leaves a prefix of valid lines plus at most one
truncated line (which loading tolerates and drops).  A re-invocation
with the same journal path replays the recorded outcomes and re-runs
only the tests that never completed — the paper's whole-suite runs over
LLVM's test corpus are hours long, and losing them to one SIGKILL is not
acceptable.

Line format (one object per line)::

    {"v": 1, "test": "<name>", ...outcome fields...}

The journal stores whatever serializable record the runner hands it;
``test`` is the resume key and duplicate lines keep the *last* entry (a
re-run of a test supersedes the earlier outcome).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Optional

JOURNAL_VERSION = 1


class RunJournal:
    """Append-only per-test outcome log backing resumable suite runs."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._entries: Dict[str, dict] = {}
        self._dropped_lines = 0
        self._needs_newline = False
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        # Read bytes and decode leniently: a writer killed mid-append can
        # truncate the tail anywhere, including *inside* a multi-byte
        # UTF-8 sequence — a strict text-mode read would raise
        # UnicodeDecodeError and abort the resume before any line parsing
        # even ran.  Replacement characters make the torn tail invalid
        # JSON, so it is dropped below like any other truncated line.
        try:
            with open(self.path, "rb") as fh:
                raw = fh.read().decode("utf-8", errors="replace")
        except OSError:
            return
        self._needs_newline = bool(raw) and not raw.endswith("\n")
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                # A truncated tail from a killed writer; drop it.
                self._dropped_lines += 1
                continue
            if not isinstance(entry, dict) or "test" not in entry:
                self._dropped_lines += 1
                continue
            self._entries[entry["test"]] = entry

    # -- querying ---------------------------------------------------------------
    def is_done(self, test: str) -> bool:
        return test in self._entries

    def get(self, test: str) -> Optional[dict]:
        return self._entries.get(test)

    def completed(self) -> Dict[str, dict]:
        return dict(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def dropped_lines(self) -> int:
        return self._dropped_lines

    # -- writing ----------------------------------------------------------------
    def record(self, entry: dict) -> None:
        """Append one outcome; ``entry['test']`` is the resume key."""
        if "test" not in entry:
            raise ValueError("journal entries need a 'test' key")
        entry = dict(entry)
        entry.setdefault("v", JOURNAL_VERSION)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            # A killed writer can leave an unterminated tail; close it off
            # so the new line stays parseable.
            if self._needs_newline:
                fh.write("\n")
                self._needs_newline = False
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
        self._entries[entry["test"]] = entry

    def pending(self, tests: Iterable[str]) -> list:
        """The subset of ``tests`` with no journaled outcome yet."""
        return [t for t in tests if t not in self._entries]
