"""Crash isolation: contain one verification job's failure to itself.

The validator is an untrusted component (§8 runs it over tens of
thousands of tests where parser crashes, encoder recursion blow-ups and
memory exhaustion are routine).  :func:`run_contained` executes one job
inside a containment boundary that converts any unexpected exception
into a structured :class:`~repro.refinement.check.RefinementResult`:

* :class:`MemoryError`  -> ``Verdict.OOM``
* :class:`DeadlineExceeded` -> ``Verdict.TIMEOUT``
* any other :class:`Exception` (including :class:`RecursionError`)
  -> ``Verdict.CRASH`` with a diagnostic record

``KeyboardInterrupt``/``SystemExit`` pass through untouched, so a killed
run still stops promptly — the resume journal picks it up from there.
"""

from __future__ import annotations

import traceback
from typing import Callable, Dict, Optional

from repro.harness.deadline import DeadlineExceeded
from repro.harness.degrade import DegradationLadder, run_with_degradation
from repro.ir.function import Function
from repro.ir.module import Module
from repro.refinement.check import (
    RefinementResult,
    Verdict,
    VerifyOptions,
    verify_refinement,
)

#: Number of innermost stack frames preserved in a crash diagnostic.
_TRACEBACK_FRAMES = 6


def diagnostic_from(exc: BaseException) -> Dict[str, object]:
    """A JSON-serializable record of an exception for crash reports."""
    frames = traceback.extract_tb(exc.__traceback__)[-_TRACEBACK_FRAMES:]
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "frames": [
            f"{f.filename.rsplit('/', 1)[-1]}:{f.lineno}:{f.name}" for f in frames
        ],
    }


def worker_loss_diagnostic(message: str, kind: str = "WorkerLost") -> Dict[str, object]:
    """A crash diagnostic for a failure with no exception object.

    When a worker process is SIGKILLed, OOM-killed, or declared hung by
    the supervisor there is no traceback to harvest — the process is
    simply gone.  The pool and the serve supervisor synthesize their
    CRASH records through this so the shape matches :func:`diagnostic_from`.
    """
    return {"type": kind, "message": message, "frames": []}


def run_contained(
    job: Callable[[], RefinementResult], phase: str = "verify"
) -> RefinementResult:
    """Run ``job``; never raises (except KeyboardInterrupt/SystemExit)."""
    try:
        return job()
    except (KeyboardInterrupt, SystemExit):
        raise
    except MemoryError as exc:
        return RefinementResult(
            Verdict.OOM, failed_check=phase, diagnostic=diagnostic_from(exc)
        )
    except DeadlineExceeded as exc:
        return RefinementResult(
            Verdict.TIMEOUT,
            failed_check=exc.phase,
            diagnostic=diagnostic_from(exc),
        )
    except Exception as exc:  # noqa: BLE001 — the containment boundary
        return RefinementResult(
            Verdict.CRASH, failed_check=phase, diagnostic=diagnostic_from(exc)
        )


def lint_gate(src: Function, tgt: Function) -> Optional[RefinementResult]:
    """Pre-verification well-formedness gate (repro.analysis.verify).

    Malformed IR surfaces here as ``UNSUPPORTED`` with a diagnostic
    naming the function, block, and instruction — instead of an opaque
    ``EncodeError``/CRASH deep inside the encoder.  Warnings never gate.
    """
    from repro.analysis.verify import ERROR, lint_function

    for which, fn in (("src", src), ("tgt", tgt)):
        errors = [d for d in lint_function(fn) if d.level == ERROR]
        if errors:
            return RefinementResult(
                Verdict.UNSUPPORTED,
                unsupported_feature="ill-formed-ir",
                diagnostic={
                    "type": "lint",
                    "side": which,
                    "function": errors[0].function,
                    "block": errors[0].block,
                    "instruction": errors[0].instruction,
                    "errors": [str(d) for d in errors[:5]],
                },
            )
    return None


def run_verification_job(
    src: Function,
    tgt: Function,
    module_src: Module,
    module_tgt: Optional[Module] = None,
    options: Optional[VerifyOptions] = None,
    ladder: Optional[DegradationLadder] = None,
    lint: bool = True,
) -> RefinementResult:
    """The fault-tolerant replacement for a bare ``verify_refinement``.

    Lint-gates the pair, crash-isolates every attempt, and walks the
    degradation ladder on TIMEOUT/OOM.  This is what the TV plugin and
    the suite runner call; ``verify_refinement`` itself stays a pure
    library function.
    """
    options = options or VerifyOptions()

    if lint:
        # A crash *inside the linter* must not block verification; only a
        # clean UNSUPPORTED finding gates.
        gated = run_contained(lambda: lint_gate(src, tgt), phase="lint")
        if gated is not None and gated.verdict is Verdict.UNSUPPORTED:
            return gated

    def attempt(opts: VerifyOptions) -> RefinementResult:
        return run_contained(
            lambda: verify_refinement(src, tgt, module_src, module_tgt, opts)
        )

    return run_with_degradation(attempt, options, ladder)
