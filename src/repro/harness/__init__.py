"""Fault-tolerant verification harness (crash isolation, deadlines,
degradation ladder, resumable runs).

Only the leaf modules are imported eagerly here; :mod:`~repro.harness.degrade`
and :mod:`~repro.harness.isolation` depend on :mod:`repro.refinement.check`,
which itself imports the leaves — loading them at package-import time
would complete the cycle, so they are exposed lazily via PEP 562.
"""

from repro.harness.deadline import Deadline, DeadlineExceeded
from repro.harness.faults import FaultPlan, FaultSpec, activate, current_test, maybe_fault
from repro.harness.journal import JOURNAL_VERSION, RunJournal

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "DegradationLadder",
    "FaultPlan",
    "FaultSpec",
    "JOURNAL_VERSION",
    "RunJournal",
    "activate",
    "current_test",
    "maybe_fault",
    "run_contained",
    "run_verification_job",
    "run_with_degradation",
]

_LAZY = {
    "DegradationLadder": ("repro.harness.degrade", "DegradationLadder"),
    "run_with_degradation": ("repro.harness.degrade", "run_with_degradation"),
    "run_contained": ("repro.harness.isolation", "run_contained"),
    "run_verification_job": ("repro.harness.isolation", "run_verification_job"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
