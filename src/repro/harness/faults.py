"""Deterministic fault injection for the verification harness.

The fault-tolerance tests need to prove that one bad test cannot kill a
corpus run, whatever the failure mode: a crash in the encoder, a hang
before the solver, an allocation blow-up.  A :class:`FaultPlan` maps test
names to :class:`FaultSpec` records; the verification pipeline calls
:func:`maybe_fault` at its phase boundaries (``parse``, ``unroll``,
``encode``, ``solve``) and the active plan decides whether to detonate.

Faults are scoped with two context managers: :func:`activate` installs a
plan for a whole suite run, :func:`current_test` names the test the
harness is currently executing.  With no active plan every hook is a
cheap no-op, so production runs pay one dict lookup per phase at most.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.harness.deadline import Deadline, DeadlineExceeded

#: Hard cap on an injected hang when no deadline is active, so a
#: misconfigured test cannot wedge the pytest run forever.
_HANG_CAP_S = 5.0

#: Hard cap on an injected non-cooperative spin (``kind="spin"``).  A
#: spin is *meant* to outlive every in-process deadline — only external
#: supervision (the serve layer SIGKILLing the worker) clears it — but
#: if supervision fails the spin must still end so the test run does.
_SPIN_CAP_S = 30.0


@dataclass(frozen=True)
class FaultSpec:
    """One injected failure.

    ``kind``: ``"crash"`` raises :class:`RuntimeError`, ``"oom"`` raises
    :class:`MemoryError`, ``"hang"`` spins until the job deadline expires
    (cooperatively — it raises :class:`DeadlineExceeded` exactly like a
    real slow phase hitting a checkpoint), ``"spin"`` wedges the process
    in a non-cooperative busy-wait that *ignores* the deadline — the
    failure mode a stuck solver exhibits, which only external supervision
    (:mod:`repro.serve.supervisor` killing the worker) can clear,
    ``"die"`` hard-kills the
    interpreter via ``os._exit`` — no exception, no cleanup, simulating a
    segfault or OOM-kill.  Only process-level isolation (``jobs > 1``)
    survives ``"die"``; injecting it into a sequential in-process run
    kills the run itself.  ``"unsound"`` does not raise at all: it arms a
    solver-level corruption (the next learned clause degenerates to the
    empty clause, see :func:`repro.sat.solver.arm_unsound`) so the solver
    silently claims UNSAT — the failure mode ``--certify`` exists to
    catch.  The arming is reset when the test finishes.

    ``site``: the phase boundary to fire at (``parse`` / ``unroll`` /
    ``encode`` / ``solve`` / ``ef`` — the last fires inside
    :func:`repro.smt.exists_forall.solve_exists_forall`, past the plain
    SAT probes).  The verification service adds two protocol-stage sites
    in its workers: ``serve-recv`` (task received, not yet executed) and
    ``serve-send`` (result computed, not yet reported) — killing at the
    latter proves a retry cannot duplicate a verdict.

    ``at_call``: fire on the Nth visit to the site (1-based).  Retries
    re-visit sites, so ``at_call=1`` makes a fault fire once and then let
    a degraded retry through — exactly the recovery path the ladder tests
    exercise.

    ``when_unroll_ge``: only fire when the job's unroll factor is at
    least this value; lets a test "time out at unroll 4 but verify at 2".
    """

    kind: str
    site: str
    at_call: int = 1
    when_unroll_ge: Optional[int] = None


class FaultPlan:
    """Test-name -> fault mapping with per-site visit counting."""

    def __init__(self, faults: Dict[str, FaultSpec]) -> None:
        self.faults = dict(faults)
        self._visits: Dict[tuple, int] = {}

    def fire_if_armed(
        self,
        test: str,
        site: str,
        deadline: Optional[Deadline],
        unroll_factor: Optional[int],
    ) -> None:
        spec = self.faults.get(test)
        if spec is None or spec.site != site:
            return
        if spec.when_unroll_ge is not None and (
            unroll_factor is None or unroll_factor < spec.when_unroll_ge
        ):
            return
        key = (test, site)
        self._visits[key] = self._visits.get(key, 0) + 1
        if self._visits[key] != spec.at_call:
            return
        _detonate(spec, site, deadline)


def _detonate(spec: FaultSpec, site: str, deadline: Optional[Deadline]) -> None:
    if spec.kind == "crash":
        raise RuntimeError(f"injected crash at {site}")
    if spec.kind == "oom":
        raise MemoryError(f"injected oom at {site}")
    if spec.kind == "die":
        os._exit(134)  # simulated SIGABRT-style death: no unwinding at all
    if spec.kind == "unsound":
        # Arm, don't raise: the point is that nothing *visibly* fails —
        # the solver keeps running and returns a confident wrong UNSAT.
        from repro.sat import solver as sat_solver

        sat_solver.arm_unsound()
        return
    if spec.kind == "spin":
        # Deliberately never calls deadline.check: a wedged worker is
        # invisible to in-process timeouts.  The serve supervisor must
        # notice the overdue task (heartbeats keep flowing — the process
        # is alive, just stuck) and SIGKILL this process.
        cap = time.monotonic() + _SPIN_CAP_S
        while time.monotonic() < cap:
            time.sleep(0.01)
        raise RuntimeError(f"injected spin at {site} outlived supervision")
    if spec.kind == "hang":
        cap = time.monotonic() + _HANG_CAP_S
        while True:
            if deadline is not None:
                deadline.check(f"hang@{site}")
            if time.monotonic() >= cap:
                raise DeadlineExceeded(f"hang@{site}")
            time.sleep(0.002)
    raise ValueError(f"unknown fault kind {spec.kind!r}")


_active_plan: Optional[FaultPlan] = None
_current_test: Optional[str] = None


@contextmanager
def activate(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Install ``plan`` for the duration of a suite run (None = no-op)."""
    global _active_plan
    previous = _active_plan
    _active_plan = plan
    try:
        yield
    finally:
        _active_plan = previous


@contextmanager
def current_test(name: str) -> Iterator[None]:
    """Name the test the harness is currently executing."""
    global _current_test
    previous = _current_test
    _current_test = name
    try:
        yield
    finally:
        _current_test = previous
        # An "unsound" fault armed during this test must not leak into the
        # next one: disarm any still-pending corruption.  Checked via
        # sys.modules so merely running a faultless suite never imports
        # the SAT layer as a side effect.
        import sys

        mod = sys.modules.get("repro.sat.solver")
        if mod is not None:
            mod.reset_unsound()


def maybe_fault(
    site: str,
    deadline: Optional[Deadline] = None,
    unroll_factor: Optional[int] = None,
) -> None:
    """Phase-boundary hook; detonates the active plan's fault, if armed."""
    if _active_plan is None or _current_test is None:
        return
    _active_plan.fire_if_armed(_current_test, site, deadline, unroll_factor)
