"""Retry-with-degradation ladder for TIMEOUT/OOM verdicts.

§8.3 of the paper runs the single-file app corpus with a reduced timeout
and unroll factor because full-strength settings blow the budget on big
functions.  We automate that practice: when a job exhausts its resources,
the harness retries it with a ladder of successively cheaper
configurations — halved unroll factor, halved conflict budget, a smaller
scaled-down memory model — and records every step taken in the result,
so a downgraded verdict is always auditable.

Both verdicts of every rung are sound (a smaller unroll factor only
weakens the bounded guarantee, it cannot introduce false alarms), so a
``CORRECT``/``INCORRECT`` from a degraded retry is still a definitive
outcome for the degraded configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

from repro.refinement.check import RefinementResult, Verdict, VerifyOptions

#: Floor for the degraded conflict budget; below this the solver cannot
#: make meaningful progress and further halving only burns retries.
_MIN_CONFLICTS = 256

#: Floor for the degraded e-graph node budget; below this saturation
#: cannot represent even small queries and the rung is pure overhead.
_MIN_EGRAPH_NODES = 64


@dataclass(frozen=True)
class DegradationLadder:
    """Policy for cheapening a job after resource exhaustion.

    ``max_retries`` bounds the number of degraded re-runs per job.
    Each rung halves the unroll factor (down to ``min_unroll``), halves
    any conflict budget, and — once the unroll factor bottoms out —
    shrinks the scaled-down memory model's per-argument block.
    """

    max_retries: int = 2
    min_unroll: int = 1

    def next_rung(
        self, options: VerifyOptions, memout: bool = False
    ) -> Optional[Tuple[List[str], VerifyOptions]]:
        """The next cheaper configuration, or None when fully degraded.

        With ``memout`` the rung also halves the active query cache's
        in-memory LRU bounds (``lru-shrink``): under memory pressure the
        warm cache tier is ballast, and shrinking it is a step the
        options alone cannot express (it acts on process state, so it
        happens here, exactly once per rung, and is recorded like any
        other step).
        """
        steps: List[str] = []
        changes: dict = {}
        if memout:
            from repro.engine import qcache

            cache = qcache.active()
            if cache is not None:
                shrunk = cache.shrink()
                if shrunk is not None:
                    old, new = shrunk
                    steps.append(f"lru-shrink:{old}->{new}")
            if options.memdf:
                # The points-to/memdf memo tables and the extra analysis
                # pass cost memory; under MEMOUT the facts are ballast
                # (they only make encodings smaller, never correctness).
                changes["memdf"] = False
                steps.append("memdf-off")
            if options.relational:
                # Same deal for the relational interpreter: its product
                # numbering and witness seeds only save solver work, so
                # under MEMOUT the analysis state is pure ballast.
                changes["relational"] = False
                steps.append("relational-off")
        if options.unroll_factor > self.min_unroll:
            new_unroll = max(self.min_unroll, options.unroll_factor // 2)
            changes["unroll_factor"] = new_unroll
            steps.append(f"unroll:{options.unroll_factor}->{new_unroll}")
        if options.max_conflicts is not None and options.max_conflicts > _MIN_CONFLICTS:
            new_conflicts = max(_MIN_CONFLICTS, options.max_conflicts // 2)
            changes["max_conflicts"] = new_conflicts
            steps.append(f"conflicts:{options.max_conflicts}->{new_conflicts}")
        if options.egraph and options.egraph_max_nodes > _MIN_EGRAPH_NODES:
            # Saturation time grows with the node budget, so a TIMEOUT
            # retry cheapens the e-graph rung along with the solver.
            new_nodes = max(_MIN_EGRAPH_NODES, options.egraph_max_nodes // 2)
            changes["egraph_max_nodes"] = new_nodes
            steps.append(f"egraph:{options.egraph_max_nodes}->{new_nodes}")
        if not steps and options.memory.arg_block_bytes > 1:
            new_bytes = max(1, options.memory.arg_block_bytes // 2)
            changes["memory"] = replace(options.memory, arg_block_bytes=new_bytes)
            steps.append(f"argbytes:{options.memory.arg_block_bytes}->{new_bytes}")
        if not steps:
            return None
        return steps, replace(options, **changes)


def run_with_degradation(
    attempt: Callable[[VerifyOptions], RefinementResult],
    options: VerifyOptions,
    ladder: Optional[DegradationLadder],
) -> RefinementResult:
    """Run ``attempt``, retrying down the ladder on TIMEOUT/OOM.

    The returned result is the last attempt's, with ``degradations``
    listing every step taken on the way there (empty for a first-try
    answer).  ``attempt`` must not raise — wrap it in the containment
    boundary (:func:`repro.harness.isolation.run_contained`) first.
    """
    result = attempt(options)
    if ladder is None:
        return result
    taken: List[str] = []
    current = options
    retries = 0
    while (
        result.verdict in (Verdict.TIMEOUT, Verdict.OOM)
        and retries < ladder.max_retries
    ):
        rung = ladder.next_rung(current, memout=result.verdict is Verdict.OOM)
        if rung is None:
            break
        steps, current = rung
        taken.extend(steps)
        retries += 1
        result = attempt(current)
    result.degradations = taken + list(result.degradations)
    return result
