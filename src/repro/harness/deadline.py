"""Whole-job deadline enforcement.

The paper's harness bounds every verification *job*, not just the solver
queries inside it: a pathological unroll or encode must count against the
same budget as the SMT queries (§8).  A :class:`Deadline` is created once
per job from ``VerifyOptions.timeout_s`` and threaded through the
unroller, the encoder, and the query sequence; long-running phases call
:meth:`Deadline.check` at cooperative checkpoints and bail out with
:class:`DeadlineExceeded`, which the refinement checker converts into a
``TIMEOUT`` verdict.

This module is a leaf: it must not import anything from :mod:`repro` so
that the IR and semantics layers can depend on it without cycles.
"""

from __future__ import annotations

import time
from typing import Optional


class DeadlineExceeded(Exception):
    """A cooperative checkpoint found the job budget exhausted."""

    def __init__(self, phase: str = "unknown") -> None:
        super().__init__(f"deadline exceeded during {phase}")
        self.phase = phase


class Deadline:
    """An absolute wall-clock budget for one verification job.

    ``expires_at`` is a :func:`time.monotonic` timestamp; ``None`` means
    unlimited.  Instances are cheap and immutable-by-convention.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: Optional[float] = None) -> None:
        self.expires_at = expires_at

    @classmethod
    def start(cls, timeout_s: Optional[float]) -> "Deadline":
        """Begin a budget of ``timeout_s`` seconds from now (None = unlimited)."""
        if timeout_s is None:
            return cls(None)
        return cls(time.monotonic() + timeout_s)

    @classmethod
    def unlimited(cls) -> "Deadline":
        return cls(None)

    def remaining(self) -> Optional[float]:
        """Seconds left (clamped at 0.0); None when unlimited."""
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - time.monotonic())

    def expired(self) -> bool:
        return self.expires_at is not None and time.monotonic() >= self.expires_at

    def clamp(self, seconds: float) -> float:
        """``seconds`` bounded by the remaining budget (for poll waits).

        Supervision loops block in short slices; clamping each slice to
        the deadline keeps a drain or join from overshooting its budget
        by a whole poll interval.
        """
        remaining = self.remaining()
        return seconds if remaining is None else min(seconds, remaining)

    def check(self, phase: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(phase)
