"""Concrete conversions between Python floats and the scaled FP formats.

These are used by the parser/printer (float literals) and by tests as the
reference semantics for the symbolic softfloat circuits.  All rounding is
round-to-nearest-even, matching IEEE-754 default.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.ir.types import FloatType


def float_to_bits(value: float, fmt: FloatType) -> int:
    """Encode a Python float into ``fmt``'s bit pattern (RNE rounding)."""
    sign = 0
    if math.copysign(1.0, value) < 0:
        sign = 1
    bit_sign = sign << (fmt.exp_bits + fmt.frac_bits)
    if math.isnan(value):
        # Canonical quiet NaN: exponent all-ones, MSB of fraction set.
        return (
            bit_sign
            | (((1 << fmt.exp_bits) - 1) << fmt.frac_bits)
            | (1 << (fmt.frac_bits - 1))
        )
    if math.isinf(value):
        return bit_sign | (((1 << fmt.exp_bits) - 1) << fmt.frac_bits)
    value = abs(value)
    if value == 0.0:
        return bit_sign
    mant, exp = math.frexp(value)  # value = mant * 2**exp, mant in [0.5, 1)
    e = exp - 1  # value = (2*mant) * 2**(exp-1), 2*mant in [1, 2)
    bias = fmt.bias
    max_e = (1 << fmt.exp_bits) - 2 - bias
    min_e = 1 - bias
    if e > max_e:
        # Round to infinity if beyond the largest finite value.
        return bit_sign | (((1 << fmt.exp_bits) - 1) << fmt.frac_bits)
    if e < min_e:
        # Subnormal range: value = f * 2**(min_e - frac_bits)
        scaled = value / (2.0 ** (min_e - fmt.frac_bits))
        frac = _round_half_even(scaled)
        if frac >= (1 << fmt.frac_bits):
            return bit_sign | (1 << fmt.frac_bits)  # rounded up to normal
        return bit_sign | frac
    significand = value / (2.0**e)  # in [1, 2)
    frac_real = (significand - 1.0) * (1 << fmt.frac_bits)
    frac = _round_half_even(frac_real)
    if frac >= (1 << fmt.frac_bits):
        frac = 0
        e += 1
        if e > max_e:
            return bit_sign | (((1 << fmt.exp_bits) - 1) << fmt.frac_bits)
    return bit_sign | ((e + bias) << fmt.frac_bits) | frac


def _round_half_even(x: float) -> int:
    floor = math.floor(x)
    diff = x - floor
    if diff > 0.5:
        return floor + 1
    if diff < 0.5:
        return floor
    return floor + (floor & 1)


def bits_to_float(bits: int, fmt: FloatType) -> float:
    """Decode a bit pattern into a Python float (exact: formats are tiny)."""
    frac_mask = (1 << fmt.frac_bits) - 1
    frac = bits & frac_mask
    exp = (bits >> fmt.frac_bits) & ((1 << fmt.exp_bits) - 1)
    sign = -1.0 if (bits >> (fmt.exp_bits + fmt.frac_bits)) & 1 else 1.0
    if exp == (1 << fmt.exp_bits) - 1:
        if frac:
            return math.nan
        return sign * math.inf
    if exp == 0:
        return sign * frac * 2.0 ** (1 - fmt.bias - fmt.frac_bits)
    return sign * (1.0 + frac / (1 << fmt.frac_bits)) * 2.0 ** (exp - fmt.bias)


def is_nan_bits(bits: int, fmt: FloatType) -> bool:
    frac = bits & ((1 << fmt.frac_bits) - 1)
    exp = (bits >> fmt.frac_bits) & ((1 << fmt.exp_bits) - 1)
    return exp == (1 << fmt.exp_bits) - 1 and frac != 0


def parse_float_literal(text: str, fmt: FloatType) -> Optional[int]:
    """Parse an LLVM-style float literal into bits, or None if malformed.

    Accepts decimal literals (``1.5``, ``-0.0``, ``2.5e1``) and raw-bit
    hex (``0xH3C``, following LLVM's half-precision spelling).
    """
    if text.startswith("0xH") or text.startswith("0xh"):
        try:
            return int(text[3:], 16) & ((1 << fmt.bit_width) - 1)
        except ValueError:
            return None
    try:
        return float_to_bits(float(text), fmt)
    except ValueError:
        return None
