"""Control-flow graph utilities: successor/predecessor maps and orderings.

Alive2 deliberately does not reuse LLVM's analyses (the compiler under
test is untrusted), so this module implements them independently; we do
the same rather than depending on our own optimizer's code.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.function import Function


def successors(fn: Function) -> Dict[str, List[str]]:
    return {label: block.successors() for label, block in fn.blocks.items()}


def predecessors(fn: Function) -> Dict[str, List[str]]:
    return fn.predecessors()


def reverse_postorder(fn: Function) -> List[str]:
    """Blocks in reverse postorder from the entry (unreachable ones excluded)."""
    succ = successors(fn)
    entry = next(iter(fn.blocks))
    visited: Set[str] = set()
    order: List[str] = []

    # Iterative DFS with an explicit stack to avoid recursion limits.
    stack: List[tuple[str, int]] = [(entry, 0)]
    visited.add(entry)
    while stack:
        node, idx = stack.pop()
        succs = [s for s in succ.get(node, []) if s in fn.blocks]
        if idx < len(succs):
            stack.append((node, idx + 1))
            child = succs[idx]
            if child not in visited:
                visited.add(child)
                stack.append((child, 0))
        else:
            order.append(node)
    order.reverse()
    return order


def reachable_blocks(fn: Function) -> Set[str]:
    return set(reverse_postorder(fn))


def remove_unreachable_blocks(fn: Function) -> bool:
    """Drop blocks unreachable from the entry; returns True if changed.

    Phi nodes in surviving blocks keep only entries from their *actual*
    predecessors.  Filtering against the reachable set alone is not
    enough: a pass that folds a conditional branch removes an edge but
    not the block it came from, leaving a dangling entry from a block
    that is still reachable yet no longer a predecessor (the verifier's
    phi-extra-pred check flags exactly this).
    """
    keep = reachable_blocks(fn)
    dead = [label for label in fn.blocks if label not in keep]
    for label in dead:
        del fn.blocks[label]
    preds = fn.predecessors()
    changed = bool(dead)
    for block in fn.blocks.values():
        for phi in block.phis():
            pruned = [
                (v, b) for v, b in phi.incoming if b in preds[block.label]
            ]
            if len(pruned) != len(phi.incoming):
                phi.incoming = pruned
                changed = True
    return changed
