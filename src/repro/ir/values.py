"""IR values: constants, undef/poison, registers, arguments, globals."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.ir.types import FloatType, IntType, PointerType, Type


class Value:
    """Base class for operand values."""

    type: Type

    def __repr__(self) -> str:
        return str(self)


@dataclass(frozen=True, repr=False)
class ConstantInt(Value):
    type: IntType
    value: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value & ((1 << self.type.width) - 1))

    def __str__(self) -> str:
        # Print i1 as true/false, others as signed decimal like LLVM.
        if self.type.width == 1:
            return "true" if self.value else "false"
        signed = self.value
        if signed >= 1 << (self.type.width - 1):
            signed -= 1 << self.type.width
        return str(signed)


@dataclass(frozen=True, repr=False)
class ConstantFloat(Value):
    """A float constant stored as its raw bit pattern in the scaled format."""

    type: FloatType
    bits: int

    def __str__(self) -> str:
        return f"0xH{self.bits:0{(self.type.bit_width + 3) // 4}X}"


@dataclass(frozen=True, repr=False)
class ConstantNull(Value):
    type: PointerType

    def __str__(self) -> str:
        return "null"


@dataclass(frozen=True, repr=False)
class UndefValue(Value):
    type: Type

    def __str__(self) -> str:
        return "undef"


@dataclass(frozen=True, repr=False)
class PoisonValue(Value):
    type: Type

    def __str__(self) -> str:
        return "poison"


@dataclass(frozen=True, repr=False)
class ConstantAggregate(Value):
    """A vector or array constant (elements may be undef/poison)."""

    type: Type
    elems: Tuple[Value, ...]

    def __str__(self) -> str:
        type_str = str(self.type)
        if type_str.startswith("<"):
            open_c, close_c = "<", ">"
        elif type_str.startswith("{"):
            open_c, close_c = "{ ", " }"
        else:
            open_c, close_c = "[", "]"
        inner = ", ".join(f"{e.type} {e}" for e in self.elems)
        return f"{open_c}{inner}{close_c}"


@dataclass(frozen=True, repr=False)
class Register(Value):
    """A reference to an SSA register (%name) of known type."""

    type: Type
    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True, repr=False)
class GlobalRef(Value):
    """A reference to a global variable (@name); always pointer-typed."""

    type: PointerType
    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


@dataclass
class Argument:
    """A function parameter, with its parameter attributes."""

    name: str
    type: Type
    attrs: frozenset = frozenset()  # e.g. {"noundef", "nonnull"}

    def __str__(self) -> str:
        attrs = "".join(f" {a}" for a in sorted(self.attrs))
        return f"{self.type}{attrs} %{self.name}"

    def as_operand(self) -> Register:
        return Register(self.type, self.name)


@dataclass
class GlobalVariable:
    """A module-level global: one memory block per global (§4)."""

    name: str
    value_type: Type
    is_constant: bool = False
    initializer: Optional[Value] = None
    align: int = 1

    def __str__(self) -> str:
        kind = "constant" if self.is_constant else "global"
        init = f" {self.initializer}" if self.initializer is not None else ""
        return f"@{self.name} = {kind} {self.value_type}{init}"
