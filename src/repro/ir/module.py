"""IR modules: globals + functions."""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.function import Function
from repro.ir.values import GlobalVariable


@dataclass
class Module:
    functions: Dict[str, Function] = field(default_factory=dict)
    globals: Dict[str, GlobalVariable] = field(default_factory=dict)

    def add_function(self, fn: Function) -> None:
        self.functions[fn.name] = fn

    def get_function(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def definitions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def clone(self) -> "Module":
        """Deep copy; used to snapshot IR before running optimization passes."""
        return copy.deepcopy(self)

    def __str__(self) -> str:
        from repro.ir.printer import print_module

        return print_module(self)
