"""IR types.

Floating-point types are scaled-down IEEE-754 binary formats (see
DESIGN.md): the structure (sign / exponent / significand, subnormals,
signed zeros, infinities, NaN payloads) is faithful, only the widths are
smaller so the pure-Python bit-blaster stays fast.

Pointers are logical ``(block-id, offset)`` pairs (§4); their bit width
is decided per-verification by the memory encoder, so :class:`PointerType`
itself is opaque here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class Type:
    """Base class for all IR types."""

    @property
    def bit_width(self) -> int:
        """Storage width in bits (pointer width is a memory-config choice)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return str(self)


@dataclass(frozen=True, repr=False)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"

    @property
    def bit_width(self) -> int:
        return 0


@dataclass(frozen=True, repr=False)
class IntType(Type):
    width: int

    def __post_init__(self) -> None:
        assert self.width >= 1

    def __str__(self) -> str:
        return f"i{self.width}"

    @property
    def bit_width(self) -> int:
        return self.width


@dataclass(frozen=True, repr=False)
class FloatType(Type):
    """A small IEEE-754 binary format.

    ``name`` is the LLVM spelling; ``exp_bits``/``frac_bits`` define the
    scaled-down layout.  Total width = 1 + exp_bits + frac_bits.
    """

    name: str
    exp_bits: int
    frac_bits: int

    def __str__(self) -> str:
        return self.name

    @property
    def bit_width(self) -> int:
        return 1 + self.exp_bits + self.frac_bits

    @property
    def bias(self) -> int:
        return (1 << (self.exp_bits - 1)) - 1


HALF = FloatType("half", 4, 3)  # 8 bits, E4M3
FLOAT = FloatType("float", 4, 5)  # 10 bits, E4M5
DOUBLE = FloatType("double", 5, 8)  # 14 bits, E5M8

FLOAT_TYPES = {t.name: t for t in (HALF, FLOAT, DOUBLE)}


@dataclass(frozen=True, repr=False)
class PointerType(Type):
    """An opaque pointer (single address space, logical addressing)."""

    def __str__(self) -> str:
        return "ptr"

    @property
    def bit_width(self) -> int:
        raise ValueError("pointer width is decided by the memory encoder")


@dataclass(frozen=True, repr=False)
class VectorType(Type):
    elem: Type
    count: int

    def __str__(self) -> str:
        return f"<{self.count} x {self.elem}>"

    @property
    def bit_width(self) -> int:
        return self.elem.bit_width * self.count


@dataclass(frozen=True, repr=False)
class ArrayType(Type):
    elem: Type
    count: int

    def __str__(self) -> str:
        return f"[{self.count} x {self.elem}]"

    @property
    def bit_width(self) -> int:
        return self.elem.bit_width * self.count


@dataclass(frozen=True, repr=False)
class StructType(Type):
    """A literal (unnamed, unpadded) struct: heterogeneous aggregate."""

    fields: Tuple[Type, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(f) for f in self.fields)
        return f"{{ {inner} }}"

    @property
    def bit_width(self) -> int:
        return sum(f.bit_width for f in self.fields)


VOID = VoidType()
PTR = PointerType()
I1 = IntType(1)


def is_aggregate(ty: Type) -> bool:
    return isinstance(ty, (VectorType, ArrayType, StructType))


def scalar_elements(ty: Type) -> Tuple[Type, int]:
    """Return (element type, count); scalars count as one element."""
    if isinstance(ty, (VectorType, ArrayType)):
        return ty.elem, ty.count
    return ty, 1


def byte_size(ty: Type, ptr_bytes: int = 2) -> int:
    """Size in bytes for memory layout (bit widths round up to bytes)."""
    if isinstance(ty, PointerType):
        return ptr_bytes
    if isinstance(ty, (VectorType, ArrayType)):
        return byte_size(ty.elem, ptr_bytes) * ty.count
    if isinstance(ty, StructType):
        return sum(byte_size(f, ptr_bytes) for f in ty.fields)
    return max(1, (ty.bit_width + 7) // 8)
