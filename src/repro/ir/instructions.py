"""IR instructions.

Every instruction is a small dataclass; operands are :class:`Value`
objects (constants or :class:`Register` references).  Instructions with a
result carry their result register name in ``name`` and type in ``type``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.types import Type
from repro.ir.values import Value

INT_BINOPS = {
    "add", "sub", "mul", "udiv", "sdiv", "urem", "srem",
    "shl", "lshr", "ashr", "and", "or", "xor",
}
FP_BINOPS = {"fadd", "fsub", "fmul", "fdiv", "frem"}
ICMP_PREDS = {"eq", "ne", "ugt", "uge", "ult", "ule", "sgt", "sge", "slt", "sle"}
FCMP_PREDS = {
    "false", "oeq", "ogt", "oge", "olt", "ole", "one", "ord",
    "ueq", "ugt", "uge", "ult", "ule", "une", "uno", "true",
}
CAST_OPS = {"zext", "sext", "trunc", "bitcast", "ptrtoint", "inttoptr",
            "fpext", "fptrunc", "fptoui", "fptosi", "uitofp", "sitofp"}
FAST_MATH_FLAGS = {"nnan", "ninf", "nsz", "arcp", "contract", "afn", "reassoc", "fast"}


class Instruction:
    """Base class; concrete instructions are dataclasses below.

    Instructions that produce a value have ``name`` (result register) and
    ``type`` attributes; use ``getattr(inst, "name", None)`` for the rest.
    """

    @property
    def operands(self) -> List[Value]:
        return []

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        """Rewrite register operands in place using name -> Value."""
        raise NotImplementedError

    def is_terminator(self) -> bool:
        return False

    def __repr__(self) -> str:
        from repro.ir.printer import print_instruction

        return print_instruction(self)


def _subst(value: Value, mapping: Dict[str, Value]) -> Value:
    from repro.ir.values import ConstantAggregate, Register

    if isinstance(value, Register) and value.name in mapping:
        return mapping[value.name]
    if isinstance(value, ConstantAggregate):
        new_elems = tuple(_subst(e, mapping) for e in value.elems)
        if new_elems != value.elems:
            return ConstantAggregate(value.type, new_elems)
    return value


@dataclass(repr=False)
class BinOp(Instruction):
    name: str
    opcode: str  # one of INT_BINOPS
    type: Type
    lhs: Value
    rhs: Value
    flags: frozenset = frozenset()  # subset of {nsw, nuw, exact}

    @property
    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.lhs = _subst(self.lhs, mapping)
        self.rhs = _subst(self.rhs, mapping)


@dataclass(repr=False)
class FBinOp(Instruction):
    name: str
    opcode: str  # one of FP_BINOPS
    type: Type
    lhs: Value
    rhs: Value
    fmf: frozenset = frozenset()  # fast-math flags

    @property
    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.lhs = _subst(self.lhs, mapping)
        self.rhs = _subst(self.rhs, mapping)


@dataclass(repr=False)
class FNeg(Instruction):
    name: str
    type: Type
    operand: Value
    fmf: frozenset = frozenset()

    @property
    def operands(self) -> List[Value]:
        return [self.operand]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.operand = _subst(self.operand, mapping)


@dataclass(repr=False)
class ICmp(Instruction):
    name: str
    pred: str
    type: Type  # result type: i1 or vector of i1
    lhs: Value
    rhs: Value

    @property
    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.lhs = _subst(self.lhs, mapping)
        self.rhs = _subst(self.rhs, mapping)


@dataclass(repr=False)
class FCmp(Instruction):
    name: str
    pred: str
    type: Type
    lhs: Value
    rhs: Value
    fmf: frozenset = frozenset()

    @property
    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.lhs = _subst(self.lhs, mapping)
        self.rhs = _subst(self.rhs, mapping)


@dataclass(repr=False)
class Select(Instruction):
    name: str
    type: Type
    cond: Value
    on_true: Value
    on_false: Value

    @property
    def operands(self) -> List[Value]:
        return [self.cond, self.on_true, self.on_false]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.cond = _subst(self.cond, mapping)
        self.on_true = _subst(self.on_true, mapping)
        self.on_false = _subst(self.on_false, mapping)


@dataclass(repr=False)
class Freeze(Instruction):
    name: str
    type: Type
    operand: Value

    @property
    def operands(self) -> List[Value]:
        return [self.operand]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.operand = _subst(self.operand, mapping)


@dataclass(repr=False)
class Cast(Instruction):
    name: str
    opcode: str  # one of CAST_OPS
    type: Type  # destination type
    operand: Value

    @property
    def operands(self) -> List[Value]:
        return [self.operand]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.operand = _subst(self.operand, mapping)


@dataclass(repr=False)
class Phi(Instruction):
    name: str
    type: Type
    # list of (value, predecessor block label)
    incoming: List[Tuple[Value, str]] = field(default_factory=list)

    @property
    def operands(self) -> List[Value]:
        return [v for v, _ in self.incoming]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.incoming = [(_subst(v, mapping), b) for v, b in self.incoming]


@dataclass(repr=False)
class Br(Instruction):
    """Conditional or unconditional branch."""

    cond: Optional[Value]  # None for unconditional
    true_label: str
    false_label: Optional[str] = None

    def is_terminator(self) -> bool:
        return True

    @property
    def operands(self) -> List[Value]:
        return [] if self.cond is None else [self.cond]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        if self.cond is not None:
            self.cond = _subst(self.cond, mapping)

    def successors(self) -> List[str]:
        if self.cond is None:
            return [self.true_label]
        return [self.true_label, self.false_label]  # type: ignore[list-item]


@dataclass(repr=False)
class Switch(Instruction):
    value: Value
    default_label: str
    cases: List[Tuple[Value, str]] = field(default_factory=list)

    def is_terminator(self) -> bool:
        return True

    @property
    def operands(self) -> List[Value]:
        return [self.value] + [v for v, _ in self.cases]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.value = _subst(self.value, mapping)

    def successors(self) -> List[str]:
        return [self.default_label] + [label for _, label in self.cases]


@dataclass(repr=False)
class Ret(Instruction):
    value: Optional[Value] = None  # None for `ret void`

    def is_terminator(self) -> bool:
        return True

    @property
    def operands(self) -> List[Value]:
        return [] if self.value is None else [self.value]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        if self.value is not None:
            self.value = _subst(self.value, mapping)

    def successors(self) -> List[str]:
        return []


@dataclass(repr=False)
class Unreachable(Instruction):
    def is_terminator(self) -> bool:
        return True

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        pass

    def successors(self) -> List[str]:
        return []


@dataclass(repr=False)
class Alloca(Instruction):
    name: str
    allocated_type: Type
    align: int = 1
    type: Type = None  # type: ignore[assignment]  # set to ptr in __post_init__

    def __post_init__(self) -> None:
        from repro.ir.types import PTR

        if self.type is None:
            self.type = PTR

    @property
    def operands(self) -> List[Value]:
        return []

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        pass


@dataclass(repr=False)
class Load(Instruction):
    name: str
    type: Type  # loaded type
    pointer: Value
    align: int = 1

    @property
    def operands(self) -> List[Value]:
        return [self.pointer]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.pointer = _subst(self.pointer, mapping)


@dataclass(repr=False)
class Store(Instruction):
    value: Value
    pointer: Value
    align: int = 1

    @property
    def operands(self) -> List[Value]:
        return [self.value, self.pointer]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.value = _subst(self.value, mapping)
        self.pointer = _subst(self.pointer, mapping)


@dataclass(repr=False)
class Gep(Instruction):
    """Pointer arithmetic: `gep [inbounds] <ty>, ptr %p, i<N> %idx, ...`."""

    name: str
    source_type: Type
    pointer: Value
    indices: List[Value]
    inbounds: bool = False
    type: Type = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        from repro.ir.types import PTR

        if self.type is None:
            self.type = PTR

    @property
    def operands(self) -> List[Value]:
        return [self.pointer] + list(self.indices)

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.pointer = _subst(self.pointer, mapping)
        self.indices = [_subst(i, mapping) for i in self.indices]


@dataclass(repr=False)
class Call(Instruction):
    name: Optional[str]  # None if the result is unused / void
    type: Type  # return type
    callee: str
    args: List[Value] = field(default_factory=list)
    attrs: frozenset = frozenset()  # e.g. {"noreturn", "readnone", "willreturn"}

    @property
    def operands(self) -> List[Value]:
        return list(self.args)

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.args = [_subst(a, mapping) for a in self.args]


@dataclass(repr=False)
class ExtractElement(Instruction):
    name: str
    type: Type
    vector: Value
    index: Value

    @property
    def operands(self) -> List[Value]:
        return [self.vector, self.index]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.vector = _subst(self.vector, mapping)
        self.index = _subst(self.index, mapping)


@dataclass(repr=False)
class InsertElement(Instruction):
    name: str
    type: Type
    vector: Value
    element: Value
    index: Value

    @property
    def operands(self) -> List[Value]:
        return [self.vector, self.element, self.index]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.vector = _subst(self.vector, mapping)
        self.element = _subst(self.element, mapping)
        self.index = _subst(self.index, mapping)


@dataclass(repr=False)
class ExtractValue(Instruction):
    """extractvalue <aggregate-ty> %agg, <idx>, ... (constant indices)."""

    name: str
    type: Type  # result element type
    aggregate: Value
    indices: List[int] = field(default_factory=list)

    @property
    def operands(self) -> List[Value]:
        return [self.aggregate]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.aggregate = _subst(self.aggregate, mapping)


@dataclass(repr=False)
class InsertValue(Instruction):
    """insertvalue <aggregate-ty> %agg, <elem-ty> %v, <idx>, ..."""

    name: str
    type: Type  # aggregate type
    aggregate: Value
    element: Value
    indices: List[int] = field(default_factory=list)

    @property
    def operands(self) -> List[Value]:
        return [self.aggregate, self.element]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.aggregate = _subst(self.aggregate, mapping)
        self.element = _subst(self.element, mapping)


@dataclass(repr=False)
class ShuffleVector(Instruction):
    name: str
    type: Type
    v1: Value
    v2: Value
    mask: List[Optional[int]]  # None encodes an undef mask element

    @property
    def operands(self) -> List[Value]:
        return [self.v1, self.v2]

    def replace_operands(self, mapping: Dict[str, Value]) -> None:
        self.v1 = _subst(self.v1, mapping)
        self.v2 = _subst(self.v2, mapping)
