"""Functions and basic blocks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.ir.instructions import Instruction, Phi
from repro.ir.types import Type
from repro.ir.values import Argument


@dataclass
class BasicBlock:
    """A labelled straight-line sequence ending in a terminator."""

    label: str
    instructions: List[Instruction] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def phis(self) -> List[Phi]:
        out = []
        for inst in self.instructions:
            if isinstance(inst, Phi):
                out.append(inst)
            else:
                break
        return out

    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if not isinstance(i, Phi)]

    def successors(self) -> List[str]:
        term = self.terminator
        if term is None:
            return []
        return term.successors()  # type: ignore[attr-defined]


@dataclass
class Function:
    """A function definition (or declaration when ``blocks`` is empty)."""

    name: str
    return_type: Type
    args: List[Argument] = field(default_factory=list)
    blocks: "Dict[str, BasicBlock]" = field(default_factory=dict)  # ordered
    attrs: frozenset = frozenset()  # e.g. {"mustprogress", "noreturn"}
    # Labels of unroll sink blocks (§7): execution must not reach these;
    # their reachability is negated into the function's precondition.
    sink_labels: set = field(default_factory=set)
    # Labels the parser saw more than once.  ``blocks`` is a dict, so a
    # repeated label silently replaces the earlier block; the parser
    # records the collision here for the lint gate (``dup-block-label``)
    # instead of guessing which of the two bodies was meant.
    duplicate_labels: List[str] = field(default_factory=list)

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry(self) -> BasicBlock:
        return next(iter(self.blocks.values()))

    def block_list(self) -> List[BasicBlock]:
        return list(self.blocks.values())

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks.values():
            yield from block.instructions

    def defined_names(self) -> Dict[str, Instruction]:
        """Map of result register name -> defining instruction."""
        out: Dict[str, Instruction] = {}
        for inst in self.instructions():
            name = getattr(inst, "name", None)
            if name is not None:
                out[name] = inst
        return out

    def predecessors(self) -> Dict[str, List[str]]:
        preds: Dict[str, List[str]] = {label: [] for label in self.blocks}
        for label, block in self.blocks.items():
            for succ in block.successors():
                if succ in preds:
                    preds[succ].append(label)
        return preds

    def fresh_register(self, hint: str = "t") -> str:
        """A register name not used by any instruction or argument."""
        used = set(self.defined_names())
        used.update(a.name for a in self.args)
        i = 0
        while f"{hint}.{i}" in used:
            i += 1
        return f"{hint}.{i}"

    def fresh_label(self, hint: str) -> str:
        i = 0
        label = hint
        while label in self.blocks:
            label = f"{hint}.{i}"
            i += 1
        return label

    def __str__(self) -> str:
        from repro.ir.printer import print_function

        return print_function(self)
