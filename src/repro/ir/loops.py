"""Loop nesting forest via the Tarjan–Havlak algorithm (§7, citing [14]).

The analysis runs on the CFG only — like Alive2, we do not trust the
optimizer's own loop information.  Irreducible loops are detected and
flagged; the unroller refuses them (they fall into the paper's
"unsupported" bucket).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.ir.cfg import predecessors, successors
from repro.ir.function import Function


@dataclass
class Loop:
    """A natural loop: header plus body (including nested loop blocks)."""

    header: str
    body: Set[str] = field(default_factory=set)
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)
    irreducible: bool = False

    def depth(self) -> int:
        d = 1
        node = self.parent
        while node is not None:
            d += 1
            node = node.parent
        return d

    def __repr__(self) -> str:
        return f"Loop(header={self.header!r}, body={sorted(self.body)!r})"


class LoopForest:
    """All loops of a function, with nesting structure."""

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.loops: List[Loop] = []
        self.loop_of_header: Dict[str, Loop] = {}
        self._analyze()

    @property
    def top_level(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]

    def innermost_first(self) -> List[Loop]:
        """Loops ordered inside-out (post-order DFS over each nesting tree)."""
        out: List[Loop] = []

        def visit(loop: Loop) -> None:
            for child in loop.children:
                visit(child)
            out.append(loop)

        for root in self.top_level:
            visit(root)
        return out

    def _analyze(self) -> None:
        fn = self.fn
        succ = successors(fn)
        pred = predecessors(fn)
        entry = next(iter(fn.blocks))

        # DFS preorder numbering and spanning-tree structure.
        number: Dict[str, int] = {}
        last: Dict[str, int] = {}
        parent: Dict[str, Optional[str]] = {entry: None}
        order: List[str] = []
        counter = 0
        stack: List[tuple[str, int]] = [(entry, 0)]
        number[entry] = counter
        order.append(entry)
        counter += 1
        while stack:
            node, idx = stack.pop()
            succs = [s for s in succ.get(node, []) if s in fn.blocks]
            if idx < len(succs):
                stack.append((node, idx + 1))
                child = succs[idx]
                if child not in number:
                    number[child] = counter
                    order.append(child)
                    counter += 1
                    parent[child] = node
                    stack.append((child, 0))
        # `last[n]` = max preorder number within n's DFS subtree.
        last = dict(number)
        for node in reversed(order):
            p = parent.get(node)
            if p is not None:
                last[p] = max(last[p], last[node])

        def is_ancestor(a: str, b: str) -> bool:
            return number[a] <= number[b] <= last[a]

        # Union-find collapsing inner loops into their headers.
        uf_parent: Dict[str, str] = {b: b for b in number}

        def find(x: str) -> str:
            root = x
            while uf_parent[root] != root:
                root = uf_parent[root]
            while uf_parent[x] != root:
                uf_parent[x], x = root, uf_parent[x]
            return root

        header_loop: Dict[str, Loop] = {}
        # Havlak: process potential headers in reverse preorder (inner first).
        for header in reversed(order):
            backedge_sources = [
                p
                for p in pred.get(header, [])
                if p in number and is_ancestor(header, p)
            ]
            # Self-loops count as backedges via is_ancestor reflexivity.
            if not backedge_sources:
                continue
            body: Set[str] = set()
            irreducible = False
            worklist = [find(p) for p in backedge_sources if find(p) != header]
            body.update(worklist)
            while worklist:
                node = worklist.pop()
                for p in pred.get(node, []):
                    if p not in number:
                        continue
                    rep = find(p)
                    if rep == header or rep in body:
                        continue
                    if not is_ancestor(header, rep):
                        # An entry into the loop that bypasses the header.
                        irreducible = True
                        continue
                    body.add(rep)
                    worklist.append(rep)
            loop = Loop(header=header, irreducible=irreducible)
            # Attach collapsed inner loops as children; collect full body.
            full_body = {header}
            for rep in body:
                inner = header_loop.get(rep)
                if inner is not None and inner.parent is None and rep != header:
                    inner.parent = loop
                    loop.children.append(inner)
                    full_body |= inner.body
                else:
                    full_body.add(rep)
                uf_parent[find(rep)] = header
            loop.body = full_body
            header_loop[header] = loop
            self.loops.append(loop)
            self.loop_of_header[header] = loop

        # Include nested bodies transitively (children were collapsed).
        for loop in self.loops:
            for child in loop.children:
                loop.body |= child.body

    def loop_containing(self, label: str) -> Optional[Loop]:
        """The innermost loop whose body contains ``label``."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if label in loop.body:
                if best is None or len(loop.body) < len(best.body):
                    best = loop
        return best

    def has_irreducible(self) -> bool:
        return any(l.irreducible for l in self.loops)
