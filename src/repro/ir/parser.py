"""Recursive-descent parser for the textual IR (an LLVM assembly subset).

The accepted grammar covers the features the Alive2 paper discusses:
integer/float/pointer/vector/array types, every supported instruction,
parameter and function attributes, globals, and declarations.  See
``tests/test_parser.py`` for a tour of the syntax.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.ir.fpformat import parse_float_literal
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    CAST_OPS,
    FAST_MATH_FLAGS,
    FCMP_PREDS,
    FP_BINOPS,
    ICMP_PREDS,
    INT_BINOPS,
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    ExtractElement,
    ExtractValue,
    FBinOp,
    FCmp,
    FNeg,
    Freeze,
    Gep,
    ICmp,
    InsertElement,
    InsertValue,
    Load,
    Phi,
    Ret,
    Select,
    ShuffleVector,
    Store,
    Switch,
    Unreachable,
)
from repro.ir.module import Module
from repro.ir.types import (
    FLOAT_TYPES,
    PTR,
    VOID,
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
    VectorType,
)
from repro.ir.values import (
    Argument,
    ConstantAggregate,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    GlobalRef,
    GlobalVariable,
    PoisonValue,
    Register,
    UndefValue,
    Value,
)

PARAM_ATTRS = {"noundef", "nonnull", "readonly", "nocapture", "dereferenceable"}
FN_ATTRS = {"mustprogress", "noreturn", "willreturn", "readnone", "readonly", "nofree", "nounwind"}


class ParseError(ValueError):
    """Raised on malformed IR text, with line information."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>;[^\n]*)
    | (?P<gname>@[A-Za-z0-9._$\-]+)
    | (?P<lname>%[A-Za-z0-9._$\-]+)
    | (?P<label>[A-Za-z0-9._$\-]+:)
    | (?P<hexfloat>0xH[0-9a-fA-F]+)
    | (?P<number>-?\d+\.\d+(e[+-]?\d+)?|-?\d+e[+-]?\d+)
    | (?P<int>-?\d+)
    | (?P<word>[A-Za-z_][A-Za-z0-9._$]*)
    | (?P<punct><|>|\[|\]|\(|\)|\{|\}|,|=|\*)
    """,
    re.VERBOSE,
)


class _Lexer:
    def __init__(self, text: str) -> None:
        self.tokens: List[Tuple[str, str, int]] = []
        line = 1
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if m is None:
                raise ParseError(f"unexpected character {text[pos]!r}", line)
            kind = m.lastgroup
            value = m.group()
            line += value.count("\n")
            pos = m.end()
            if kind in ("ws", "comment"):
                continue
            self.tokens.append((kind, value, line))
        self.index = 0

    def peek(self, offset: int = 0) -> Optional[Tuple[str, str, int]]:
        i = self.index + offset
        return self.tokens[i] if i < len(self.tokens) else None

    def next(self) -> Tuple[str, str, int]:
        tok = self.peek()
        if tok is None:
            last_line = self.tokens[-1][2] if self.tokens else 1
            raise ParseError("unexpected end of input", last_line)
        self.index += 1
        return tok

    def accept(self, value: str) -> bool:
        tok = self.peek()
        if tok is not None and tok[1] == value:
            self.index += 1
            return True
        return False

    def expect(self, value: str) -> Tuple[str, str, int]:
        tok = self.next()
        if tok[1] != value:
            raise ParseError(f"expected {value!r}, found {tok[1]!r}", tok[2])
        return tok

    @property
    def line(self) -> int:
        tok = self.peek()
        if tok is not None:
            return tok[2]
        return self.tokens[-1][2] if self.tokens else 1


class _Parser:
    def __init__(self, text: str) -> None:
        self.lex = _Lexer(text)
        self.module = Module()

    # -- types ---------------------------------------------------------------
    def try_parse_type(self) -> Optional[Type]:
        tok = self.lex.peek()
        if tok is None:
            return None
        kind, value, line = tok
        if kind == "word":
            if value == "void":
                self.lex.next()
                return VOID
            if value == "ptr":
                self.lex.next()
                return PTR
            if value in FLOAT_TYPES:
                self.lex.next()
                return FLOAT_TYPES[value]
            if re.fullmatch(r"i\d+", value):
                self.lex.next()
                return IntType(int(value[1:]))
            return None
        if value == "<":
            self.lex.next()
            count_tok = self.lex.next()
            count = int(count_tok[1])
            self.lex.expect("x")
            elem = self.parse_type()
            self.lex.expect(">")
            return VectorType(elem, count)
        if value == "[":
            self.lex.next()
            count_tok = self.lex.next()
            count = int(count_tok[1])
            self.lex.expect("x")
            elem = self.parse_type()
            self.lex.expect("]")
            return ArrayType(elem, count)
        if value == "{":
            self.lex.next()
            fields = [self.parse_type()]
            while self.lex.accept(","):
                fields.append(self.parse_type())
            self.lex.expect("}")
            return StructType(tuple(fields))
        return None

    def parse_type(self) -> Type:
        ty = self.try_parse_type()
        if ty is None:
            tok = self.lex.peek()
            found = tok[1] if tok else "<eof>"
            raise ParseError(f"expected type, found {found!r}", self.lex.line)
        return ty

    # -- values --------------------------------------------------------------
    def parse_value(self, ty: Type) -> Value:
        tok = self.lex.next()
        kind, value, line = tok
        if kind == "lname":
            return Register(ty, value[1:])
        if kind == "gname":
            if not isinstance(ty, PointerType):
                raise ParseError("global reference must be pointer-typed", line)
            return GlobalRef(PTR, value[1:])
        if value == "undef":
            return UndefValue(ty)
        if value == "poison":
            return PoisonValue(ty)
        if value == "null":
            if not isinstance(ty, PointerType):
                raise ParseError("null requires pointer type", line)
            return ConstantNull(PTR)
        if value == "zeroinitializer":
            return self._zero_value(ty, line)
        if value in ("true", "false"):
            if not isinstance(ty, IntType) or ty.width != 1:
                raise ParseError("true/false requires type i1", line)
            return ConstantInt(ty, 1 if value == "true" else 0)
        if kind == "int":
            if isinstance(ty, IntType):
                return ConstantInt(ty, int(value))
            if isinstance(ty, FloatType):
                bits = parse_float_literal(value, ty)
                assert bits is not None
                return ConstantFloat(ty, bits)
            raise ParseError(f"integer literal for non-numeric type {ty}", line)
        if kind in ("number", "hexfloat"):
            if not isinstance(ty, FloatType):
                raise ParseError(f"float literal for non-float type {ty}", line)
            bits = parse_float_literal(value, ty)
            if bits is None:
                raise ParseError(f"bad float literal {value!r}", line)
            return ConstantFloat(ty, bits)
        if value in ("<", "[", "{"):
            if not isinstance(ty, (VectorType, ArrayType, StructType)):
                raise ParseError(f"aggregate literal for non-aggregate {ty}", line)
            close = {"<": ">", "[": "]", "{": "}"}[value]
            elems = []
            while True:
                elem_ty = self.parse_type()
                elems.append(self.parse_value(elem_ty))
                if not self.lex.accept(","):
                    break
            self.lex.expect(close)
            want = len(ty.fields) if isinstance(ty, StructType) else ty.count
            if len(elems) != want:
                raise ParseError(
                    f"aggregate has {len(elems)} elements, type wants {want}", line
                )
            return ConstantAggregate(ty, tuple(elems))
        raise ParseError(f"expected value, found {value!r}", line)

    def _zero_value(self, ty: Type, line: int) -> Value:
        if isinstance(ty, IntType):
            return ConstantInt(ty, 0)
        if isinstance(ty, FloatType):
            return ConstantFloat(ty, 0)
        if isinstance(ty, PointerType):
            return ConstantNull(PTR)
        if isinstance(ty, (VectorType, ArrayType)):
            elem = self._zero_value(ty.elem, line)
            return ConstantAggregate(ty, tuple([elem] * ty.count))
        if isinstance(ty, StructType):
            return ConstantAggregate(
                ty, tuple(self._zero_value(f, line) for f in ty.fields)
            )
        raise ParseError(f"zeroinitializer for unsupported type {ty}", line)

    def parse_typed_value(self) -> Tuple[Type, Value]:
        ty = self.parse_type()
        return ty, self.parse_value(ty)

    # -- module-level --------------------------------------------------------
    def parse_module(self) -> Module:
        while self.lex.peek() is not None:
            tok = self.lex.peek()
            assert tok is not None
            if tok[0] == "gname":
                self._parse_global()
            elif tok[1] == "define":
                self._parse_define()
            elif tok[1] == "declare":
                self._parse_declare()
            elif tok[1] == "target" or tok[1] == "source_filename":
                # Skip target/source_filename lines: consume until we see a
                # token that can start a new top-level entity.
                self._skip_toplevel_line()
            else:
                raise ParseError(f"unexpected top-level token {tok[1]!r}", tok[2])
        return self.module

    def _skip_toplevel_line(self) -> None:
        self.lex.next()
        while True:
            tok = self.lex.peek()
            if tok is None or tok[1] in ("define", "declare", "target", "source_filename"):
                return
            if tok[0] == "gname":
                return
            self.lex.next()

    def _parse_global(self) -> None:
        name_tok = self.lex.next()
        name = name_tok[1][1:]
        self.lex.expect("=")
        is_constant = False
        while True:
            tok = self.lex.peek()
            assert tok is not None
            if tok[1] == "constant":
                is_constant = True
                self.lex.next()
            elif tok[1] in ("global", "private", "internal", "unnamed_addr", "local_unnamed_addr", "dso_local"):
                self.lex.next()
                if tok[1] == "global":
                    break
                continue
            elif is_constant:
                break
            else:
                raise ParseError(f"expected 'global' or 'constant', found {tok[1]!r}", tok[2])
            if not is_constant:
                continue
            break
        ty = self.parse_type()
        initializer: Optional[Value] = None
        tok = self.lex.peek()
        if tok is not None and tok[1] not in ("define", "declare") and tok[0] != "gname":
            initializer = self.parse_value(ty)
        align = 1
        if self.lex.accept(","):
            self.lex.expect("align")
            align = int(self.lex.next()[1])
        self.module.globals[name] = GlobalVariable(name, ty, is_constant, initializer, align)

    def _parse_signature(self) -> Tuple[Type, str, List[Argument], frozenset]:
        ret_ty = self.parse_type()
        name_tok = self.lex.next()
        if name_tok[0] != "gname":
            raise ParseError("expected function name", name_tok[2])
        fn_name = name_tok[1][1:]
        self.lex.expect("(")
        args: List[Argument] = []
        if not self.lex.accept(")"):
            index = 0
            while True:
                arg_ty = self.parse_type()
                attrs = set()
                while True:
                    tok = self.lex.peek()
                    if tok is not None and tok[1] in PARAM_ATTRS:
                        attrs.add(tok[1])
                        self.lex.next()
                        if tok[1] == "dereferenceable":
                            self.lex.expect("(")
                            self.lex.next()
                            self.lex.expect(")")
                    else:
                        break
                tok = self.lex.peek()
                if tok is not None and tok[0] == "lname":
                    arg_name = self.lex.next()[1][1:]
                else:
                    arg_name = str(index)
                args.append(Argument(arg_name, arg_ty, frozenset(attrs)))
                index += 1
                if self.lex.accept(")"):
                    break
                self.lex.expect(",")
        fn_attrs = set()
        while True:
            tok = self.lex.peek()
            if tok is not None and tok[1] in FN_ATTRS:
                fn_attrs.add(tok[1])
                self.lex.next()
            else:
                break
        return ret_ty, fn_name, args, frozenset(fn_attrs)

    def _parse_declare(self) -> None:
        self.lex.expect("declare")
        ret_ty, fn_name, args, fn_attrs = self._parse_signature()
        self.module.add_function(Function(fn_name, ret_ty, args, {}, fn_attrs))

    def _parse_define(self) -> None:
        self.lex.expect("define")
        ret_ty, fn_name, args, fn_attrs = self._parse_signature()
        self.lex.expect("{")
        fn = Function(fn_name, ret_ty, args, {}, fn_attrs)
        current: Optional[BasicBlock] = None
        while not self.lex.accept("}"):
            tok = self.lex.peek()
            assert tok is not None
            if tok[0] == "label":
                label = tok[1][:-1]
                self.lex.next()
                current = BasicBlock(label)
                if label in fn.blocks:
                    fn.duplicate_labels.append(label)
                fn.blocks[label] = current
                continue
            if current is None:
                current = BasicBlock("entry")
                fn.blocks["entry"] = current
            current.instructions.append(self._parse_instruction())
        if not fn.blocks:
            raise ParseError("function has no basic blocks", self.lex.line)
        self.module.add_function(fn)

    # -- instructions ----------------------------------------------------------
    def _parse_flags(self, allowed: set) -> frozenset:
        flags = set()
        while True:
            tok = self.lex.peek()
            if tok is not None and tok[1] in allowed:
                flags.add(tok[1])
                self.lex.next()
            else:
                break
        return frozenset(flags)

    def _parse_instruction(self):
        tok = self.lex.peek()
        assert tok is not None
        if tok[0] == "lname":
            name = self.lex.next()[1][1:]
            self.lex.expect("=")
            return self._parse_rhs(name)
        return self._parse_void_instruction()

    def _parse_void_instruction(self):
        tok = self.lex.next()
        op = tok[1]
        line = tok[2]
        if op == "ret":
            ty = self.parse_type()
            if isinstance(ty, type(VOID)):
                return Ret(None)
            return Ret(self.parse_value(ty))
        if op == "br":
            if self.lex.accept("label"):
                target = self.lex.next()[1][1:]
                return Br(None, target)
            ty = self.parse_type()
            if isinstance(ty, IntType) and ty.width == 1:
                cond = self.parse_value(ty)
                self.lex.expect(",")
                self.lex.expect("label")
                t_label = self.lex.next()[1][1:]
                self.lex.expect(",")
                self.lex.expect("label")
                f_label = self.lex.next()[1][1:]
                return Br(cond, t_label, f_label)
            raise ParseError("br expects `br i1 ...` or `br label ...`", line)
        if op == "switch":
            ty = self.parse_type()
            value = self.parse_value(ty)
            self.lex.expect(",")
            self.lex.expect("label")
            default = self.lex.next()[1][1:]
            self.lex.expect("[")
            cases = []
            while not self.lex.accept("]"):
                case_ty = self.parse_type()
                case_val = self.parse_value(case_ty)
                self.lex.expect(",")
                self.lex.expect("label")
                case_label = self.lex.next()[1][1:]
                cases.append((case_val, case_label))
            return Switch(value, default, cases)
        if op == "unreachable":
            return Unreachable()
        if op == "store":
            ty, value = self.parse_typed_value()
            self.lex.expect(",")
            self.parse_type()  # ptr
            pointer = self.parse_value(PTR)
            align = 1
            if self.lex.accept(","):
                self.lex.expect("align")
                align = int(self.lex.next()[1])
            return Store(value, pointer, align)
        if op == "call":
            return self._parse_call(None)
        raise ParseError(f"unknown instruction {op!r}", line)

    def _parse_rhs(self, name: str):
        tok = self.lex.next()
        op = tok[1]
        line = tok[2]
        if op in INT_BINOPS:
            flags = self._parse_flags({"nsw", "nuw", "exact"})
            ty = self.parse_type()
            lhs = self.parse_value(ty)
            self.lex.expect(",")
            rhs = self.parse_value(ty)
            return BinOp(name, op, ty, lhs, rhs, flags)
        if op in FP_BINOPS:
            fmf = self._parse_flags(FAST_MATH_FLAGS)
            ty = self.parse_type()
            lhs = self.parse_value(ty)
            self.lex.expect(",")
            rhs = self.parse_value(ty)
            return FBinOp(name, op, ty, lhs, rhs, fmf)
        if op == "fneg":
            fmf = self._parse_flags(FAST_MATH_FLAGS)
            ty, val = self.parse_typed_value()
            return FNeg(name, ty, val, fmf)
        if op == "icmp":
            pred_tok = self.lex.next()
            pred = pred_tok[1]
            if pred not in ICMP_PREDS:
                raise ParseError(f"bad icmp predicate {pred!r}", pred_tok[2])
            ty = self.parse_type()
            lhs = self.parse_value(ty)
            self.lex.expect(",")
            rhs = self.parse_value(ty)
            result_ty = (
                VectorType(IntType(1), ty.count) if isinstance(ty, VectorType) else IntType(1)
            )
            return ICmp(name, pred, result_ty, lhs, rhs)
        if op == "fcmp":
            fmf = self._parse_flags(FAST_MATH_FLAGS)
            pred_tok = self.lex.next()
            pred = pred_tok[1]
            if pred not in FCMP_PREDS:
                raise ParseError(f"bad fcmp predicate {pred!r}", pred_tok[2])
            ty = self.parse_type()
            lhs = self.parse_value(ty)
            self.lex.expect(",")
            rhs = self.parse_value(ty)
            result_ty = (
                VectorType(IntType(1), ty.count) if isinstance(ty, VectorType) else IntType(1)
            )
            return FCmp(name, pred, result_ty, lhs, rhs, fmf)
        if op == "select":
            cond_ty = self.parse_type()
            cond = self.parse_value(cond_ty)
            self.lex.expect(",")
            ty, on_true = self.parse_typed_value()
            self.lex.expect(",")
            ty2, on_false = self.parse_typed_value()
            if ty != ty2:
                raise ParseError("select arms have different types", line)
            return Select(name, ty, cond, on_true, on_false)
        if op == "freeze":
            ty, val = self.parse_typed_value()
            return Freeze(name, ty, val)
        if op in CAST_OPS:
            src_ty, val = self.parse_typed_value()
            self.lex.expect("to")
            dst_ty = self.parse_type()
            return Cast(name, op, dst_ty, val)
        if op == "phi":
            ty = self.parse_type()
            incoming = []
            while True:
                self.lex.expect("[")
                val = self.parse_value(ty)
                self.lex.expect(",")
                pred_tok = self.lex.next()
                if pred_tok[0] != "lname":
                    raise ParseError("phi predecessor must be a label", pred_tok[2])
                incoming.append((val, pred_tok[1][1:]))
                self.lex.expect("]")
                if not self.lex.accept(","):
                    break
            return Phi(name, ty, incoming)
        if op == "alloca":
            ty = self.parse_type()
            align = 1
            if self.lex.accept(","):
                self.lex.expect("align")
                align = int(self.lex.next()[1])
            return Alloca(name, ty, align)
        if op == "load":
            ty = self.parse_type()
            self.lex.expect(",")
            self.parse_type()  # ptr
            pointer = self.parse_value(PTR)
            align = 1
            if self.lex.accept(","):
                self.lex.expect("align")
                align = int(self.lex.next()[1])
            return Load(name, ty, pointer, align)
        if op == "getelementptr":
            inbounds = self.lex.accept("inbounds")
            source_ty = self.parse_type()
            self.lex.expect(",")
            self.parse_type()  # ptr
            pointer = self.parse_value(PTR)
            indices = []
            while self.lex.accept(","):
                idx_ty = self.parse_type()
                indices.append(self.parse_value(idx_ty))
            return Gep(name, source_ty, pointer, indices, inbounds)
        if op == "call":
            return self._parse_call(name)
        if op == "extractvalue":
            agg_ty = self.parse_type()
            agg = self.parse_value(agg_ty)
            indices = []
            while self.lex.accept(","):
                indices.append(int(self.lex.next()[1]))
            if not indices:
                raise ParseError("extractvalue needs at least one index", line)
            result_ty = agg_ty
            for idx in indices:
                if isinstance(result_ty, StructType):
                    result_ty = result_ty.fields[idx]
                elif isinstance(result_ty, (ArrayType, VectorType)):
                    result_ty = result_ty.elem
                else:
                    raise ParseError("extractvalue index into non-aggregate", line)
            return ExtractValue(name, result_ty, agg, indices)
        if op == "insertvalue":
            agg_ty = self.parse_type()
            agg = self.parse_value(agg_ty)
            self.lex.expect(",")
            elem_ty = self.parse_type()
            elem = self.parse_value(elem_ty)
            indices = []
            while self.lex.accept(","):
                indices.append(int(self.lex.next()[1]))
            if not indices:
                raise ParseError("insertvalue needs at least one index", line)
            return InsertValue(name, agg_ty, agg, elem, indices)
        if op == "extractelement":
            vec_ty = self.parse_type()
            vec = self.parse_value(vec_ty)
            self.lex.expect(",")
            idx_ty = self.parse_type()
            idx = self.parse_value(idx_ty)
            if not isinstance(vec_ty, VectorType):
                raise ParseError("extractelement needs a vector", line)
            return ExtractElement(name, vec_ty.elem, vec, idx)
        if op == "insertelement":
            vec_ty = self.parse_type()
            vec = self.parse_value(vec_ty)
            self.lex.expect(",")
            elem_ty = self.parse_type()
            elem = self.parse_value(elem_ty)
            self.lex.expect(",")
            idx_ty = self.parse_type()
            idx = self.parse_value(idx_ty)
            return InsertElement(name, vec_ty, vec, elem, idx)
        if op == "shufflevector":
            v1_ty = self.parse_type()
            v1 = self.parse_value(v1_ty)
            self.lex.expect(",")
            v2_ty = self.parse_type()
            v2 = self.parse_value(v2_ty)
            self.lex.expect(",")
            mask_ty = self.parse_type()
            mask_val = self.parse_value(mask_ty)
            if not isinstance(mask_ty, VectorType):
                raise ParseError("shufflevector mask must be a vector constant", line)
            mask: List[Optional[int]] = []
            if isinstance(mask_val, ConstantAggregate):
                for elem in mask_val.elems:
                    if isinstance(elem, ConstantInt):
                        mask.append(elem.value)
                    else:
                        mask.append(None)  # undef mask element
            elif isinstance(mask_val, (UndefValue, PoisonValue)):
                mask = [None] * mask_ty.count
            elif isinstance(mask_val, ConstantAggregate) is False and hasattr(mask_val, "elems"):
                raise ParseError("bad shufflevector mask", line)
            else:
                raise ParseError("shufflevector mask must be constant", line)
            if not isinstance(v1_ty, VectorType):
                raise ParseError("shufflevector operands must be vectors", line)
            result_ty = VectorType(v1_ty.elem, len(mask))
            return ShuffleVector(name, result_ty, v1, v2, mask)
        raise ParseError(f"unknown instruction {op!r}", line)

    def _parse_call(self, name: Optional[str]) -> Call:
        ret_ty = self.parse_type()
        callee_tok = self.lex.next()
        if callee_tok[0] != "gname":
            raise ParseError("call target must be a global symbol", callee_tok[2])
        callee = callee_tok[1][1:]
        self.lex.expect("(")
        args: List[Value] = []
        if not self.lex.accept(")"):
            while True:
                arg_ty = self.parse_type()
                # Skip parameter attributes at the call site.
                while True:
                    tok = self.lex.peek()
                    if tok is not None and tok[1] in PARAM_ATTRS:
                        self.lex.next()
                    else:
                        break
                args.append(self.parse_value(arg_ty))
                if self.lex.accept(")"):
                    break
                self.lex.expect(",")
        attrs = set()
        while True:
            tok = self.lex.peek()
            if tok is not None and tok[1] in FN_ATTRS:
                attrs.add(tok[1])
                self.lex.next()
            else:
                break
        return Call(name, ret_ty, callee, args, frozenset(attrs))


def parse_module(text: str) -> Module:
    """Parse textual IR into a :class:`Module`."""
    return _Parser(text).parse_module()


def parse_function(text: str, name: Optional[str] = None) -> Function:
    """Parse a module and return one function (the only one by default)."""
    module = parse_module(text)
    defs = module.definitions()
    if name is not None:
        fn = module.get_function(name)
        if fn is None:
            raise ValueError(f"no function @{name}")
        return fn
    if len(defs) != 1:
        raise ValueError(f"expected exactly one function, found {len(defs)}")
    return defs[0]
