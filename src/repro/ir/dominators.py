"""Dominator tree via the Cooper–Harvey–Kennedy algorithm.

The paper cites this exact algorithm ([7] in the references) for the
dominance queries its unroller needs when patching loop-exit phis.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.cfg import predecessors, reverse_postorder
from repro.ir.function import Function


class DominatorTree:
    """Immediate dominators for every reachable block."""

    def __init__(self, fn: Function) -> None:
        self.order = reverse_postorder(fn)
        self.entry = self.order[0]
        self._index = {label: i for i, label in enumerate(self.order)}
        preds = predecessors(fn)
        idom: Dict[str, Optional[str]] = {label: None for label in self.order}
        idom[self.entry] = self.entry
        changed = True
        while changed:
            changed = False
            for label in self.order[1:]:
                candidates = [
                    p for p in preds[label] if p in idom and idom[p] is not None
                ]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for p in candidates[1:]:
                    new_idom = self._intersect(idom, new_idom, p)
                if idom[label] != new_idom:
                    idom[label] = new_idom
                    changed = True
        self.idom = idom

    def _intersect(self, idom: Dict[str, Optional[str]], a: str, b: str) -> str:
        fa, fb = a, b
        while fa != fb:
            while self._index[fa] > self._index[fb]:
                fa = idom[fa]  # type: ignore[assignment]
            while self._index[fb] > self._index[fa]:
                fb = idom[fb]  # type: ignore[assignment]
        return fa

    def dominates(self, a: str, b: str) -> bool:
        """True iff block ``a`` dominates block ``b`` (reflexive)."""
        if a == b:
            return True
        runner = b
        while runner != self.entry:
            runner = self.idom[runner]  # type: ignore[assignment]
            if runner == a:
                return True
        return a == self.entry

    def children(self) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {label: [] for label in self.order}
        for label in self.order:
            if label != self.entry:
                parent = self.idom[label]
                if parent is not None:
                    out[parent].append(label)
        return out
