"""Textual printer for the IR — inverse of :mod:`repro.ir.parser`.

``parse_module(print_module(m))`` round-trips for every supported
construct (tested property-style in ``tests/test_parser.py``).
"""

from __future__ import annotations

from typing import List

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    ExtractElement,
    ExtractValue,
    FBinOp,
    FCmp,
    FNeg,
    Freeze,
    Gep,
    ICmp,
    InsertElement,
    InsertValue,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    ShuffleVector,
    Store,
    Switch,
    Unreachable,
)
from repro.ir.module import Module
from repro.ir.types import IntType, VectorType


def _flags(flags: frozenset) -> str:
    if not flags:
        return ""
    order = ["fast", "nnan", "ninf", "nsz", "arcp", "contract", "afn", "reassoc",
             "nuw", "nsw", "exact"]
    listed = [f for f in order if f in flags]
    listed += sorted(f for f in flags if f not in order)
    return " " + " ".join(listed)


def _tv(value) -> str:
    return f"{value.type} {value}"


def print_instruction(inst: Instruction) -> str:
    if isinstance(inst, BinOp):
        return f"%{inst.name} = {inst.opcode}{_flags(inst.flags)} {inst.type} {inst.lhs}, {inst.rhs}"
    if isinstance(inst, FBinOp):
        return f"%{inst.name} = {inst.opcode}{_flags(inst.fmf)} {inst.type} {inst.lhs}, {inst.rhs}"
    if isinstance(inst, FNeg):
        return f"%{inst.name} = fneg{_flags(inst.fmf)} {_tv(inst.operand)}"
    if isinstance(inst, ICmp):
        op_ty = inst.lhs.type
        return f"%{inst.name} = icmp {inst.pred} {op_ty} {inst.lhs}, {inst.rhs}"
    if isinstance(inst, FCmp):
        op_ty = inst.lhs.type
        return f"%{inst.name} = fcmp{_flags(inst.fmf)} {inst.pred} {op_ty} {inst.lhs}, {inst.rhs}"
    if isinstance(inst, Select):
        return (
            f"%{inst.name} = select {_tv(inst.cond)}, "
            f"{_tv(inst.on_true)}, {_tv(inst.on_false)}"
        )
    if isinstance(inst, Freeze):
        return f"%{inst.name} = freeze {_tv(inst.operand)}"
    if isinstance(inst, Cast):
        return f"%{inst.name} = {inst.opcode} {_tv(inst.operand)} to {inst.type}"
    if isinstance(inst, Phi):
        pairs = ", ".join(f"[ {v}, %{b} ]" for v, b in inst.incoming)
        return f"%{inst.name} = phi {inst.type} {pairs}"
    if isinstance(inst, Br):
        if inst.cond is None:
            return f"br label %{inst.true_label}"
        return f"br i1 {inst.cond}, label %{inst.true_label}, label %{inst.false_label}"
    if isinstance(inst, Switch):
        cases = " ".join(
            f"{v.type} {v}, label %{label}" for v, label in inst.cases
        )
        return f"switch {_tv(inst.value)}, label %{inst.default_label} [ {cases} ]"
    if isinstance(inst, Ret):
        if inst.value is None:
            return "ret void"
        return f"ret {_tv(inst.value)}"
    if isinstance(inst, Unreachable):
        return "unreachable"
    if isinstance(inst, Alloca):
        align = f", align {inst.align}" if inst.align != 1 else ""
        return f"%{inst.name} = alloca {inst.allocated_type}{align}"
    if isinstance(inst, Load):
        align = f", align {inst.align}" if inst.align != 1 else ""
        return f"%{inst.name} = load {inst.type}, ptr {inst.pointer}{align}"
    if isinstance(inst, Store):
        align = f", align {inst.align}" if inst.align != 1 else ""
        return f"store {_tv(inst.value)}, ptr {inst.pointer}{align}"
    if isinstance(inst, Gep):
        inbounds = " inbounds" if inst.inbounds else ""
        idx = "".join(f", {i.type} {i}" for i in inst.indices)
        return (
            f"%{inst.name} = getelementptr{inbounds} {inst.source_type}, "
            f"ptr {inst.pointer}{idx}"
        )
    if isinstance(inst, Call):
        args = ", ".join(_tv(a) for a in inst.args)
        attrs = _flags(inst.attrs)
        prefix = f"%{inst.name} = " if inst.name is not None else ""
        return f"{prefix}call {inst.type} @{inst.callee}({args}){attrs}"
    if isinstance(inst, ExtractElement):
        return (
            f"%{inst.name} = extractelement {_tv(inst.vector)}, {_tv(inst.index)}"
        )
    if isinstance(inst, InsertElement):
        return (
            f"%{inst.name} = insertelement {_tv(inst.vector)}, "
            f"{_tv(inst.element)}, {_tv(inst.index)}"
        )
    if isinstance(inst, ExtractValue):
        idx = "".join(f", {i}" for i in inst.indices)
        return f"%{inst.name} = extractvalue {_tv(inst.aggregate)}{idx}"
    if isinstance(inst, InsertValue):
        idx = "".join(f", {i}" for i in inst.indices)
        return (
            f"%{inst.name} = insertvalue {_tv(inst.aggregate)}, "
            f"{_tv(inst.element)}{idx}"
        )
    if isinstance(inst, ShuffleVector):
        n = len(inst.mask)
        elems = ", ".join(
            "i8 undef" if m is None else f"i8 {m}" for m in inst.mask
        )
        mask_ty = VectorType(IntType(8), n)
        return (
            f"%{inst.name} = shufflevector {_tv(inst.v1)}, {_tv(inst.v2)}, "
            f"{mask_ty} <{elems}>"
        )
    raise NotImplementedError(type(inst).__name__)


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.label}:"]
    for inst in block.instructions:
        lines.append(f"  {print_instruction(inst)}")
    return "\n".join(lines)


def print_function(fn: Function) -> str:
    args = ", ".join(str(a) for a in fn.args)
    attrs = "".join(f" {a}" for a in sorted(fn.attrs))
    if fn.is_declaration:
        return f"declare {fn.return_type} @{fn.name}({args}){attrs}"
    head = f"define {fn.return_type} @{fn.name}({args}){attrs} {{"
    body: List[str] = [print_block(b) for b in fn.blocks.values()]
    return head + "\n" + "\n".join(body) + "\n}"


def print_module(module: Module) -> str:
    parts = [str(g) for g in module.globals.values()]
    parts += [print_function(f) for f in module.functions.values()]
    return "\n\n".join(parts) + "\n"
