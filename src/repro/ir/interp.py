"""A concrete reference interpreter for the IR.

This is a testing substrate: it executes *deterministic* programs (no
undef/poison inputs, no unknown calls) and is used to cross-check the
loop unroller and the optimizer passes against ground truth, and to
confirm counterexamples produced by the refinement checker.

UB is modelled explicitly: executing UB raises :class:`UndefinedBehavior`;
producing poison yields the :data:`POISON` sentinel which propagates
through arithmetic like the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ir.fpformat import bits_to_float, float_to_bits
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    ExtractElement,
    ExtractValue,
    FBinOp,
    FCmp,
    FNeg,
    Freeze,
    Gep,
    ICmp,
    InsertElement,
    InsertValue,
    Load,
    Ret,
    Select,
    ShuffleVector,
    Store,
    Switch,
    Unreachable,
)
from repro.ir.module import Module
from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    StructType,
    Type,
    VectorType,
    byte_size,
)
from repro.ir.values import (
    ConstantAggregate,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    GlobalRef,
    PoisonValue,
    Register,
    UndefValue,
    Value,
)


class UndefinedBehavior(Exception):
    """The program executed immediate UB."""


class SinkReached(Exception):
    """Execution reached an unroll sink block (ran past the bound)."""


class InterpError(Exception):
    """The interpreter cannot execute this program (unsupported feature)."""


class _Poison:
    def __repr__(self) -> str:
        return "poison"


POISON = _Poison()


@dataclass
class MemBlock:
    data: List[object]  # one entry per byte: int 0..255 or POISON
    alive: bool = True
    writable: bool = True


@dataclass
class ExecResult:
    """Outcome of running a function to completion."""

    value: object  # int bits | POISON | tuple for aggregates | None for void
    memory: "Interpreter"


class Interpreter:
    """Executes one function call on concrete arguments."""

    def __init__(self, module: Module, max_steps: int = 100_000) -> None:
        self.module = module
        self.max_steps = max_steps
        self.blocks_mem: Dict[int, MemBlock] = {}
        self.globals_addr: Dict[str, int] = {}
        self._next_bid = 1  # bid 0 is the null block
        self._init_globals()

    # -- memory ---------------------------------------------------------------
    def _alloc(self, nbytes: int, writable: bool = True) -> int:
        bid = self._next_bid
        self._next_bid += 1
        self.blocks_mem[bid] = MemBlock([POISON] * nbytes, True, writable)
        return bid

    def _init_globals(self) -> None:
        for g in self.module.globals.values():
            nbytes = byte_size(g.value_type)
            bid = self._alloc(nbytes, writable=not g.is_constant)
            self.globals_addr[g.name] = bid
            if g.initializer is not None:
                block = self.blocks_mem[bid]
                init_bytes = self._value_to_bytes(g.initializer, g.value_type)
                # Temporarily writable for initialization.
                block.data[: len(init_bytes)] = init_bytes

    def _value_to_bytes(self, value: object, ty: Type) -> List[object]:
        concrete = self._const_value(value) if isinstance(value, Value) else value
        nbytes = byte_size(ty)
        if concrete is POISON:
            return [POISON] * nbytes
        if isinstance(ty, (VectorType, ArrayType)):
            out: List[object] = []
            assert isinstance(concrete, tuple)
            for elem in concrete:
                out.extend(self._value_to_bytes(elem, ty.elem))
            return out
        assert isinstance(concrete, int)
        return [(concrete >> (8 * i)) & 0xFF for i in range(nbytes)]

    def _bytes_to_value(self, data: List[object], ty: Type) -> object:
        if isinstance(ty, (VectorType, ArrayType)):
            elem_bytes = byte_size(ty.elem)
            elems = []
            for i in range(ty.count):
                elems.append(
                    self._bytes_to_value(
                        data[i * elem_bytes : (i + 1) * elem_bytes], ty.elem
                    )
                )
            return tuple(elems)
        if any(b is POISON for b in data):
            return POISON
        value = 0
        for i, b in enumerate(data):
            assert isinstance(b, int)
            value |= b << (8 * i)
        if isinstance(ty, IntType):
            value &= (1 << ty.width) - 1
        return value

    # -- constants ------------------------------------------------------------
    def _const_value(self, value: Value) -> object:
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, ConstantFloat):
            return value.bits
        if isinstance(value, ConstantNull):
            return 0  # encoded pointer: block 0, offset 0
        if isinstance(value, PoisonValue):
            return POISON
        if isinstance(value, UndefValue):
            # Deterministic interpretation: undef picks 0.
            ty = value.type
            if isinstance(ty, (VectorType, ArrayType)):
                return tuple([0] * ty.count)
            if isinstance(ty, StructType):
                return tuple([0] * len(ty.fields))
            return 0
        if isinstance(value, ConstantAggregate):
            return tuple(self._const_value(e) for e in value.elems)
        if isinstance(value, GlobalRef):
            bid = self.globals_addr[value.name]
            return self._encode_ptr(bid, 0)
        raise InterpError(f"cannot evaluate constant {value!r}")

    @staticmethod
    def _encode_ptr(bid: int, off: int) -> int:
        return (bid << 32) | (off & 0xFFFFFFFF)

    @staticmethod
    def _decode_ptr(ptr: int) -> Tuple[int, int]:
        off = ptr & 0xFFFFFFFF
        if off >= 1 << 31:
            off -= 1 << 32
        return ptr >> 32, off

    # -- execution --------------------------------------------------------------
    def run(self, fn: Function, args: List[object]) -> ExecResult:
        """Execute ``fn`` with concrete arguments (ints / tuples / POISON)."""
        if fn.is_declaration:
            raise InterpError(f"@{fn.name} has no body")
        env: Dict[str, object] = {}
        for arg, value in zip(fn.args, args):
            env[arg.name] = value
        block = fn.entry
        prev_label: Optional[str] = None
        steps = 0
        while True:
            if block.label in fn.sink_labels:
                raise SinkReached(block.label)
            # Phis evaluate simultaneously from the incoming edge.
            phi_updates: Dict[str, object] = {}
            for phi in block.phis():
                incoming = [v for v, b in phi.incoming if b == prev_label]
                if not incoming:
                    raise InterpError(
                        f"phi %{phi.name} has no incoming for {prev_label!r}"
                    )
                phi_updates[phi.name] = self._operand(incoming[0], env)
            env.update(phi_updates)
            for inst in block.non_phi_instructions():
                steps += 1
                if steps > self.max_steps:
                    raise InterpError("step budget exceeded (infinite loop?)")
                if isinstance(inst, Ret):
                    value = (
                        None if inst.value is None else self._operand(inst.value, env)
                    )
                    return ExecResult(value, self)
                if isinstance(inst, Br):
                    if inst.cond is None:
                        target = inst.true_label
                    else:
                        cond = self._operand(inst.cond, env)
                        if cond is POISON:
                            raise UndefinedBehavior("branch on poison/undef")
                        target = inst.true_label if cond else inst.false_label
                    prev_label = block.label
                    block = fn.blocks[target]
                    break
                if isinstance(inst, Switch):
                    sel = self._operand(inst.value, env)
                    if sel is POISON:
                        raise UndefinedBehavior("switch on poison/undef")
                    target = inst.default_label
                    for case_val, case_label in inst.cases:
                        if self._const_value(case_val) == sel:
                            target = case_label
                            break
                    prev_label = block.label
                    block = fn.blocks[target]
                    break
                if isinstance(inst, Unreachable):
                    raise UndefinedBehavior("reached unreachable")
                self._execute(inst, env)
            else:
                raise InterpError(f"block {block.label} lacks a terminator")

    def _operand(self, value: Value, env: Dict[str, object]) -> object:
        if isinstance(value, Register):
            if value.name not in env:
                raise InterpError(f"use of undefined register %{value.name}")
            return env[value.name]
        if isinstance(value, ConstantAggregate):
            return tuple(self._operand(e, env) for e in value.elems)
        return self._const_value(value)

    # -- instruction semantics ---------------------------------------------------
    def _execute(self, inst, env: Dict[str, object]) -> None:
        if isinstance(inst, BinOp):
            lhs = self._operand(inst.lhs, env)
            rhs = self._operand(inst.rhs, env)
            env[inst.name] = self._map_elems(
                inst.type, lhs, rhs, lambda a, b, ty: self._int_binop(inst, a, b, ty)
            )
            return
        if isinstance(inst, ICmp):
            lhs = self._operand(inst.lhs, env)
            rhs = self._operand(inst.rhs, env)
            op_ty = inst.lhs.type
            elem_ty = op_ty.elem if isinstance(op_ty, VectorType) else op_ty
            env[inst.name] = self._map_elems(
                inst.type, lhs, rhs,
                lambda a, b, _ty: self._icmp(inst.pred, a, b, elem_ty),
            )
            return
        if isinstance(inst, FBinOp):
            lhs = self._operand(inst.lhs, env)
            rhs = self._operand(inst.rhs, env)
            env[inst.name] = self._map_elems(
                inst.type, lhs, rhs, lambda a, b, ty: self._fp_binop(inst, a, b, ty)
            )
            return
        if isinstance(inst, FNeg):
            val = self._operand(inst.operand, env)
            ty = inst.type
            if val is POISON:
                env[inst.name] = POISON
            else:
                env[inst.name] = val ^ (1 << (ty.bit_width - 1))
            return
        if isinstance(inst, FCmp):
            lhs = self._operand(inst.lhs, env)
            rhs = self._operand(inst.rhs, env)
            env[inst.name] = self._fcmp(inst.pred, lhs, rhs, inst.lhs.type)
            return
        if isinstance(inst, Select):
            cond = self._operand(inst.cond, env)
            tv = self._operand(inst.on_true, env)
            fv = self._operand(inst.on_false, env)
            if cond is POISON:
                env[inst.name] = POISON
            else:
                env[inst.name] = tv if cond else fv
            return
        if isinstance(inst, Freeze):
            val = self._operand(inst.operand, env)
            if val is POISON:
                val = 0  # freeze picks an arbitrary value; 0 is deterministic
            if isinstance(val, tuple):
                val = tuple(0 if v is POISON else v for v in val)
            env[inst.name] = val
            return
        if isinstance(inst, Cast):
            env[inst.name] = self._cast(inst, self._operand(inst.operand, env))
            return
        if isinstance(inst, Alloca):
            nbytes = byte_size(inst.allocated_type)
            bid = self._alloc(nbytes)
            env[inst.name] = self._encode_ptr(bid, 0)
            return
        if isinstance(inst, Load):
            ptr = self._operand(inst.pointer, env)
            if ptr is POISON:
                raise UndefinedBehavior("load from poison pointer")
            bid, off = self._decode_ptr(ptr)
            nbytes = byte_size(inst.type)
            block = self.blocks_mem.get(bid)
            if block is None or not block.alive:
                raise UndefinedBehavior("load from dead or invalid block")
            if off < 0 or off + nbytes > len(block.data):
                raise UndefinedBehavior("out-of-bounds load")
            env[inst.name] = self._bytes_to_value(
                block.data[off : off + nbytes], inst.type
            )
            return
        if isinstance(inst, Store):
            ptr = self._operand(inst.pointer, env)
            if ptr is POISON:
                raise UndefinedBehavior("store to poison pointer")
            value = self._operand(inst.value, env)
            bid, off = self._decode_ptr(ptr)
            block = self.blocks_mem.get(bid)
            if block is None or not block.alive:
                raise UndefinedBehavior("store to dead or invalid block")
            if not block.writable:
                raise UndefinedBehavior("store to read-only block")
            data = self._value_to_bytes(value, inst.value.type)
            if off < 0 or off + len(data) > len(block.data):
                raise UndefinedBehavior("out-of-bounds store")
            block.data[off : off + len(data)] = data
            return
        if isinstance(inst, Gep):
            ptr = self._operand(inst.pointer, env)
            if ptr is POISON:
                env[inst.name] = POISON
                return
            bid, off = self._decode_ptr(ptr)
            elem_bytes = byte_size(inst.source_type)
            total = off
            scale = elem_bytes
            for idx_value in inst.indices:
                idx = self._operand(idx_value, env)
                if idx is POISON:
                    env[inst.name] = POISON
                    return
                idx_ty = idx_value.type
                assert isinstance(idx_ty, IntType)
                if idx >= 1 << (idx_ty.width - 1):
                    idx -= 1 << idx_ty.width
                total += idx * scale
                src = inst.source_type
                if isinstance(src, (ArrayType, VectorType)):
                    scale = byte_size(src.elem)
            if inst.inbounds:
                block = self.blocks_mem.get(bid)
                size = len(block.data) if block is not None else 0
                if total < 0 or total > size or off < 0 or off > size:
                    env[inst.name] = POISON
                    return
            env[inst.name] = self._encode_ptr(bid, total)
            return
        if isinstance(inst, Call):
            self._call(inst, env)
            return
        if isinstance(inst, ExtractElement):
            vec = self._operand(inst.vector, env)
            idx = self._operand(inst.index, env)
            if vec is POISON or idx is POISON:
                env[inst.name] = POISON
                return
            assert isinstance(vec, tuple)
            if idx >= len(vec):
                env[inst.name] = POISON
                return
            env[inst.name] = vec[idx]
            return
        if isinstance(inst, InsertElement):
            vec = self._operand(inst.vector, env)
            elem = self._operand(inst.element, env)
            idx = self._operand(inst.index, env)
            if vec is POISON:
                vec = tuple([POISON] * inst.type.count)
            if idx is POISON or idx >= len(vec):
                env[inst.name] = POISON
                return
            out = list(vec)
            out[idx] = elem
            env[inst.name] = tuple(out)
            return
        if isinstance(inst, ExtractValue):
            agg = self._operand(inst.aggregate, env)
            for idx in inst.indices:
                if agg is POISON:
                    break
                agg = agg[idx]
            env[inst.name] = agg
            return
        if isinstance(inst, InsertValue):
            agg = self._operand(inst.aggregate, env)
            elem = self._operand(inst.element, env)
            if agg is POISON:
                nfields = (
                    len(inst.type.fields)
                    if isinstance(inst.type, StructType)
                    else inst.type.count
                )
                agg = tuple([POISON] * nfields)
            out = list(agg)
            if len(inst.indices) == 1:
                out[inst.indices[0]] = elem
            else:
                inner = list(out[inst.indices[0]])
                inner[inst.indices[1]] = elem
                out[inst.indices[0]] = tuple(inner)
            env[inst.name] = tuple(out)
            return
        if isinstance(inst, ShuffleVector):
            v1 = self._operand(inst.v1, env)
            v2 = self._operand(inst.v2, env)
            n = inst.v1.type.count
            if v1 is POISON:
                v1 = tuple([POISON] * n)
            if v2 is POISON:
                v2 = tuple([POISON] * n)
            both = tuple(v1) + tuple(v2)
            out = []
            for m in inst.mask:
                if m is None:
                    out.append(0)  # undef mask element: any value; pick 0
                elif m < len(both):
                    out.append(both[m])
                else:
                    out.append(POISON)
            env[inst.name] = tuple(out)
            return
        raise InterpError(f"unsupported instruction {inst!r}")

    def _map_elems(self, ty: Type, lhs, rhs, fn) -> object:
        if isinstance(ty, VectorType):
            n = ty.count
            lhs_t = tuple([POISON] * n) if lhs is POISON else lhs
            rhs_t = tuple([POISON] * n) if rhs is POISON else rhs
            return tuple(fn(a, b, ty.elem) for a, b in zip(lhs_t, rhs_t))
        return fn(lhs, rhs, ty)

    def _int_binop(self, inst: BinOp, a, b, ty: IntType) -> object:
        op = inst.opcode
        w = ty.width
        mask = (1 << w) - 1
        if op in ("udiv", "urem", "sdiv", "srem"):
            if b is POISON or b == 0:
                raise UndefinedBehavior(f"{op} by zero or poison divisor")
            if a is POISON:
                return POISON
        if a is POISON or b is POISON:
            return POISON

        def signed(x: int) -> int:
            return x - (1 << w) if x >= 1 << (w - 1) else x

        if op == "add":
            result = (a + b) & mask
            if "nsw" in inst.flags and not (-(1 << (w - 1)) <= signed(a) + signed(b) < (1 << (w - 1))):
                return POISON
            if "nuw" in inst.flags and a + b > mask:
                return POISON
            return result
        if op == "sub":
            result = (a - b) & mask
            if "nsw" in inst.flags and not (-(1 << (w - 1)) <= signed(a) - signed(b) < (1 << (w - 1))):
                return POISON
            if "nuw" in inst.flags and a < b:
                return POISON
            return result
        if op == "mul":
            result = (a * b) & mask
            if "nsw" in inst.flags and not (-(1 << (w - 1)) <= signed(a) * signed(b) < (1 << (w - 1))):
                return POISON
            if "nuw" in inst.flags and a * b > mask:
                return POISON
            return result
        if op == "udiv":
            if "exact" in inst.flags and a % b != 0:
                return POISON
            return a // b
        if op == "urem":
            return a % b
        if op == "sdiv":
            sa, sb = signed(a), signed(b)
            if sa == -(1 << (w - 1)) and sb == -1:
                raise UndefinedBehavior("sdiv overflow")
            q = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                q = -q
            if "exact" in inst.flags and sa != q * sb:
                return POISON
            return q & mask
        if op == "srem":
            sa, sb = signed(a), signed(b)
            if sa == -(1 << (w - 1)) and sb == -1:
                raise UndefinedBehavior("srem overflow")
            r = abs(sa) % abs(sb)
            if sa < 0:
                r = -r
            return r & mask
        if op == "shl":
            if b >= w:
                return POISON
            result = (a << b) & mask
            if "nsw" in inst.flags and signed(result) >> b != signed(a):
                return POISON
            if "nuw" in inst.flags and (a << b) > mask:
                return POISON
            return result
        if op == "lshr":
            if b >= w:
                return POISON
            if "exact" in inst.flags and a & ((1 << b) - 1):
                return POISON
            return a >> b
        if op == "ashr":
            if b >= w:
                return POISON
            if "exact" in inst.flags and a & ((1 << b) - 1):
                return POISON
            return (signed(a) >> b) & mask
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        raise InterpError(f"bad binop {op}")

    def _icmp(self, pred: str, a, b, ty) -> object:
        if a is POISON or b is POISON:
            return POISON
        w = ty.width if isinstance(ty, IntType) else 64

        def signed(x: int) -> int:
            return x - (1 << w) if x >= 1 << (w - 1) else x

        table = {
            "eq": a == b,
            "ne": a != b,
            "ugt": a > b,
            "uge": a >= b,
            "ult": a < b,
            "ule": a <= b,
            "sgt": signed(a) > signed(b),
            "sge": signed(a) >= signed(b),
            "slt": signed(a) < signed(b),
            "sle": signed(a) <= signed(b),
        }
        return 1 if table[pred] else 0

    def _fp_binop(self, inst: FBinOp, a, b, ty: FloatType) -> object:
        if a is POISON or b is POISON:
            return POISON
        fa = bits_to_float(a, ty)
        fb = bits_to_float(b, ty)
        import math

        if "nnan" in inst.fmf or "fast" in inst.fmf:
            if math.isnan(fa) or math.isnan(fb):
                return POISON
        if "ninf" in inst.fmf or "fast" in inst.fmf:
            if math.isinf(fa) or math.isinf(fb):
                return POISON
        try:
            if inst.opcode == "fadd":
                result = fa + fb
            elif inst.opcode == "fsub":
                result = fa - fb
            elif inst.opcode == "fmul":
                result = fa * fb
            elif inst.opcode == "fdiv":
                if fb == 0.0:
                    result = math.nan if fa == 0.0 else math.copysign(math.inf, fa) * math.copysign(1.0, fb)
                else:
                    result = fa / fb
            elif inst.opcode == "frem":
                result = math.fmod(fa, fb) if fb != 0.0 else math.nan
            else:
                raise InterpError(f"bad fp op {inst.opcode}")
        except (OverflowError, ValueError):
            result = math.nan
        bits = float_to_bits(result, ty)
        if "nnan" in inst.fmf or "fast" in inst.fmf:
            import math as m

            if m.isnan(bits_to_float(bits, ty)):
                return POISON
        return bits

    def _fcmp(self, pred: str, a, b, ty: FloatType) -> object:
        if a is POISON or b is POISON:
            return POISON
        import math

        fa = bits_to_float(a, ty)
        fb = bits_to_float(b, ty)
        unordered = math.isnan(fa) or math.isnan(fb)
        ordered_result = {
            "oeq": fa == fb, "ogt": fa > fb, "oge": fa >= fb,
            "olt": fa < fb, "ole": fa <= fb, "one": fa != fb,
        }
        if pred == "false":
            return 0
        if pred == "true":
            return 1
        if pred == "ord":
            return 0 if unordered else 1
        if pred == "uno":
            return 1 if unordered else 0
        if pred.startswith("o"):
            return 1 if (not unordered and ordered_result[pred]) else 0
        base = "o" + pred[1:]
        return 1 if (unordered or ordered_result[base]) else 0

    def _cast(self, inst: Cast, val) -> object:
        if val is POISON:
            return POISON
        src_ty = inst.operand.type
        dst_ty = inst.type
        if isinstance(dst_ty, VectorType):
            assert isinstance(val, tuple)
            return tuple(
                self._cast_scalar(inst.opcode, v, src_ty.elem, dst_ty.elem)
                for v in val
            )
        return self._cast_scalar(inst.opcode, val, src_ty, dst_ty)

    def _cast_scalar(self, opcode: str, val, src_ty, dst_ty) -> object:
        if val is POISON:
            return POISON
        if opcode == "zext":
            return val
        if opcode == "sext":
            w = src_ty.width
            if val >= 1 << (w - 1):
                val -= 1 << w
            return val & ((1 << dst_ty.width) - 1)
        if opcode == "trunc":
            return val & ((1 << dst_ty.width) - 1)
        if opcode == "bitcast":
            return val  # same bits; int<->float reinterpretation
        if opcode in ("fpext", "fptrunc"):
            return float_to_bits(bits_to_float(val, src_ty), dst_ty)
        if opcode == "fptoui":
            f = bits_to_float(val, src_ty)
            import math

            if math.isnan(f) or f < 0 or f >= (1 << dst_ty.width):
                return POISON
            return int(f)
        if opcode == "fptosi":
            f = bits_to_float(val, src_ty)
            import math

            lo, hi = -(1 << (dst_ty.width - 1)), 1 << (dst_ty.width - 1)
            if math.isnan(f) or f < lo or f >= hi:
                return POISON
            return int(f) & ((1 << dst_ty.width) - 1)
        if opcode == "uitofp":
            return float_to_bits(float(val), dst_ty)
        if opcode == "sitofp":
            w = src_ty.width
            if val >= 1 << (w - 1):
                val -= 1 << w
            return float_to_bits(float(val), dst_ty)
        raise InterpError(f"unsupported cast {opcode}")

    def _call(self, inst: Call, env: Dict[str, object]) -> None:
        callee = self.module.get_function(inst.callee)
        if callee is None or callee.is_declaration:
            raise InterpError(f"call to unknown function @{inst.callee}")
        args = [self._operand(a, env) for a in inst.args]
        sub = Interpreter(self.module, self.max_steps)
        sub.blocks_mem = self.blocks_mem
        sub.globals_addr = self.globals_addr
        sub._next_bid = self._next_bid
        result = sub.run(callee, args)
        self._next_bid = sub._next_bid
        if inst.name is not None:
            env[inst.name] = result.value


class _FakeOperand:
    def __init__(self, ty):
        self.type = ty


def run_function(
    module: Module, name: str, args: List[object], max_steps: int = 100_000
) -> object:
    """Convenience: run @name on ``args`` and return the result value."""
    interp = Interpreter(module, max_steps)
    fn = module.get_function(name)
    if fn is None:
        raise InterpError(f"no function @{name}")
    return interp.run(fn, args).value
