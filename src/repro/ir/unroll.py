"""Bounded loop unrolling (§7 of the Alive2 paper).

Loops are unrolled inside-out by traversing the loop nesting forest in
post-order, so the number of copies is linear in (number of loops ×
unroll factor).  Backedges of the last copy are redirected to a *sink*
block; the encoder later negates the sink's reachability into the
function's precondition, which is what makes the validation *bounded*
without introducing false positives.

Values defined in a loop and used outside are handled with the paper's
three-case strategy, collapsed to two here:

* phi nodes in exit blocks are patched with one incoming per copy;
* any other outside use goes through a stack slot (the paper's memory
  fallback), avoiding general SSA reconstruction.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.harness.deadline import Deadline
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    Br,
    Instruction,
    Load,
    Phi,
    Store,
    Switch,
)
from repro.ir.loops import LoopForest
from repro.ir.types import PTR
from repro.ir.values import Register, Value

SINK_LABEL = "__sink"


class UnrollError(Exception):
    """Raised when a function's loops cannot be unrolled (irreducible)."""


@dataclass
class UnrollStats:
    loops_unrolled: int = 0
    blocks_added: int = 0
    memory_fallbacks: int = 0


def unroll_function(
    fn: Function, factor: int, deadline: Optional[Deadline] = None
) -> UnrollStats:
    """Unroll every loop of ``fn`` in place by ``factor`` copies.

    ``factor`` is the total number of body copies kept (the paper's
    "unroll factor"); it must be >= 1.

    ``deadline`` is the whole-job budget: unrolling is O(loops × factor)
    and can dominate a job on deeply nested loops, so every loop and
    every body copy is a cooperative checkpoint (raises
    :class:`~repro.harness.deadline.DeadlineExceeded` when spent).
    """
    assert factor >= 1
    stats = UnrollStats()
    forest = LoopForest(fn)
    if not forest.loops:
        return stats
    if forest.has_irreducible():
        raise UnrollError(f"function @{fn.name} has an irreducible loop")

    # Map header -> current body set (updated as inner loops are unrolled).
    bodies: Dict[str, Set[str]] = {l.header: set(l.body) for l in forest.loops}
    ancestors: Dict[str, List[str]] = {}
    for loop in forest.loops:
        chain = []
        node = loop.parent
        while node is not None:
            chain.append(node.header)
            node = node.parent
        ancestors[loop.header] = chain

    for loop in forest.innermost_first():
        if deadline is not None:
            deadline.check("unroll")
        new_blocks = _unroll_one_loop(
            fn, loop.header, bodies[loop.header], factor, stats, deadline
        )
        for anc in ancestors[loop.header]:
            bodies[anc] |= new_blocks
        stats.loops_unrolled += 1
    return stats


def _ensure_sink(fn: Function) -> str:
    if SINK_LABEL not in fn.blocks:
        from repro.ir.instructions import Unreachable

        sink = BasicBlock(SINK_LABEL, [Unreachable()])
        fn.blocks[SINK_LABEL] = sink
        fn.sink_labels.add(SINK_LABEL)
    return SINK_LABEL


def _retarget(inst: Instruction, mapping: Dict[str, str]) -> None:
    if isinstance(inst, Br):
        inst.true_label = mapping.get(inst.true_label, inst.true_label)
        if inst.false_label is not None:
            inst.false_label = mapping.get(inst.false_label, inst.false_label)
    elif isinstance(inst, Switch):
        inst.default_label = mapping.get(inst.default_label, inst.default_label)
        inst.cases = [(v, mapping.get(l, l)) for v, l in inst.cases]


def _unroll_one_loop(
    fn: Function,
    header: str,
    body: Set[str],
    factor: int,
    stats: UnrollStats,
    deadline: Optional[Deadline] = None,
) -> Set[str]:
    """Unroll one loop; returns the labels of all newly created blocks."""
    sink = _ensure_sink(fn)
    # Defs inside the loop, in block order.
    loop_blocks = [label for label in fn.blocks if label in body]
    defs: List[str] = []
    for label in loop_blocks:
        for inst in fn.blocks[label].instructions:
            name = getattr(inst, "name", None)
            if name is not None:
                defs.append(name)
    def_set = set(defs)

    # Pristine snapshot of the loop body: later copies are cloned from this,
    # not from copy 0, whose backedges get patched as soon as copy 1 exists.
    pristine = {label: _copy.deepcopy(fn.blocks[label]) for label in loop_blocks}

    # Pick a suffix that cannot collide with labels/registers created by a
    # previous unroll round (nested loops unroll inside-out, so the outer
    # round re-duplicates blocks that already carry ".uN" suffixes).
    existing = set(fn.blocks)
    existing.update(fn.defined_names())
    salt = ""
    while any(
        f"{label}{salt}.u{i}" in existing
        for label in loop_blocks
        for i in range(1, factor)
    ):
        salt = f".s{len(salt)}"

    def unroll_name(base: str, i: int) -> str:
        return f"{base}{salt}.u{i}"

    # cumulative value map: original def name -> latest copy's name
    value_map: Dict[str, str] = {}
    # label of copy i of each loop block (copy 0 = original labels)
    label_of_copy: List[Dict[str, str]] = [{label: label for label in loop_blocks}]
    # per-copy register renames (copy 0 = identity)
    rename_of_copy: List[Dict[str, str]] = [{name: name for name in defs}]
    new_labels: Set[str] = set()

    def mapped_value(v: Value, vmap: Dict[str, str]) -> Value:
        if isinstance(v, Register) and v.name in vmap:
            return Register(v.type, vmap[v.name])
        return v

    # ---- create copies 1..factor-1 -----------------------------------------
    for i in range(1, factor):
        if deadline is not None:
            deadline.check("unroll")
        prev_labels = label_of_copy[i - 1]
        cur_labels = {label: unroll_name(label, i) for label in loop_blocks}
        label_of_copy.append(cur_labels)
        new_labels.update(cur_labels.values())
        prev_value_map = dict(value_map)
        # First pass: clone blocks and rename definitions.
        iteration_map: Dict[str, str] = {}
        clones: Dict[str, BasicBlock] = {}
        for label in loop_blocks:
            clone = BasicBlock(cur_labels[label])
            for inst in pristine[label].instructions:
                new_inst = _copy.deepcopy(inst)
                name = getattr(new_inst, "name", None)
                if name is not None:
                    new_name = unroll_name(name, i)
                    new_inst.name = new_name
                    iteration_map[name] = new_name
                clone.instructions.append(new_inst)
            clones[label] = clone
        # Second pass: patch operands, phi incoming and jump targets.
        for label in loop_blocks:
            clone = clones[label]
            patched: List[Instruction] = []
            for inst in clone.instructions:
                if isinstance(inst, Phi):
                    if label == header:
                        # Header phi of copy i: values flow from copy i-1
                        # latches only.
                        incoming = []
                        for v, pred_label in inst.incoming:
                            if pred_label in body:
                                incoming.append(
                                    (
                                        mapped_value(v, prev_value_map),
                                        prev_labels[pred_label],
                                    )
                                )
                        inst.incoming = incoming
                    else:
                        incoming = []
                        for v, pred_label in inst.incoming:
                            new_v = v
                            if isinstance(v, Register):
                                if v.name in iteration_map:
                                    new_v = Register(v.type, iteration_map[v.name])
                                elif v.name in prev_value_map:
                                    new_v = Register(v.type, prev_value_map[v.name])
                            incoming.append(
                                (new_v, cur_labels.get(pred_label, pred_label))
                            )
                        inst.incoming = incoming
                else:
                    subst: Dict[str, Value] = {}
                    for operand in inst.operands:
                        _collect_regs(operand, subst, iteration_map, prev_value_map)
                    if subst:
                        inst.replace_operands(subst)
                # Jump targets: header -> next copy (patched later);
                # other loop blocks -> this copy; outside -> unchanged.
                target_map = dict(cur_labels)
                # A jump to the header from inside copy i is this copy's
                # backedge; it goes to copy i+1's header (patched at the end
                # of the iteration loop below) — mark it with a placeholder.
                target_map[header] = f"__backedge.u{i}"
                _retarget(inst, target_map)
                patched.append(inst)
            clone.instructions = patched
        for label in loop_blocks:
            fn.blocks[cur_labels[label]] = clones[label]
        # Redirect copy i-1 backedges (jumps to original header or to the
        # previous placeholder) into this copy's header.
        _patch_backedges(fn, label_of_copy[i - 1].values(), header, i - 1, cur_labels[header])
        rename_of_copy.append(iteration_map)
        value_map.update(iteration_map)

    # ---- final backedges go to the sink ------------------------------------
    _patch_backedges(fn, label_of_copy[-1].values(), header, factor - 1, sink)

    # Copy 0's header drops latch incoming (those edges now go to copy 1,
    # or to the sink when factor == 1).
    for phi in fn.blocks[header].phis():
        phi.incoming = [(v, b) for v, b in phi.incoming if b not in body]

    stats.blocks_added += len(new_labels)

    # ---- patch loop-exit values ---------------------------------------------
    _patch_exit_uses(fn, body, def_set, label_of_copy, rename_of_copy, stats, deadline)
    return new_labels


def _collect_regs(
    value: Value,
    subst: Dict[str, Value],
    iteration_map: Dict[str, str],
    prev_value_map: Dict[str, str],
) -> None:
    from repro.ir.values import ConstantAggregate

    if isinstance(value, Register):
        if value.name in iteration_map:
            subst[value.name] = Register(value.type, iteration_map[value.name])
        elif value.name in prev_value_map:
            subst[value.name] = Register(value.type, prev_value_map[value.name])
    elif isinstance(value, ConstantAggregate):
        for elem in value.elems:
            _collect_regs(elem, subst, iteration_map, prev_value_map)


def _patch_backedges(
    fn: Function,
    block_labels,
    header: str,
    copy_index: int,
    new_target: str,
) -> None:
    placeholder = f"__backedge.u{copy_index}" if copy_index > 0 else header
    for label in block_labels:
        block = fn.blocks.get(label)
        if block is None or block.terminator is None:
            continue
        _retarget(block.terminator, {placeholder: new_target})


def _patch_exit_uses(
    fn: Function,
    body: Set[str],
    def_set: Set[str],
    label_of_copy: List[Dict[str, str]],
    rename_of_copy: List[Dict[str, str]],
    stats: UnrollStats,
    deadline: Optional[Deadline] = None,
) -> None:
    all_copies: Set[str] = set()
    for labels in label_of_copy:
        all_copies.update(labels.values())

    # 1. Patch phis in exit blocks: add one incoming per copy.
    for label, block in list(fn.blocks.items()):
        if label in all_copies:
            continue
        for phi in block.phis():
            new_incoming = []
            for v, pred_label in phi.incoming:
                if pred_label in body:
                    for i, labels in enumerate(label_of_copy):
                        new_v = v
                        if isinstance(v, Register) and v.name in def_set and i > 0:
                            new_v = Register(v.type, rename_of_copy[i][v.name])
                        # Only add the edge if copy i of the pred still
                        # branches to this block.
                        pred_copy = labels[pred_label]
                        if label in fn.blocks[pred_copy].successors():
                            new_incoming.append((new_v, pred_copy))
                else:
                    new_incoming.append((v, pred_label))
            phi.incoming = new_incoming

    # 2. Any other outside use of a loop def goes through a stack slot.
    slots: Dict[str, str] = {}
    for label, block in list(fn.blocks.items()):
        if deadline is not None:
            deadline.check("unroll-exits")
        if label in all_copies:
            continue
        new_instructions: List[Instruction] = []
        for inst in block.instructions:
            if isinstance(inst, Phi):
                new_instructions.append(inst)
                continue
            used = [
                op.name
                for op in inst.operands
                if isinstance(op, Register) and op.name in def_set
            ]
            for reg_name in used:
                slot = slots.get(reg_name)
                if slot is None:
                    slot = _make_slot(fn, reg_name, label_of_copy, rename_of_copy, stats)
                    slots[reg_name] = slot
                reload_name = fn.fresh_register(f"{reg_name}.reload")
                reg_type = _type_of_def(fn, reg_name)
                new_instructions.append(
                    Load(reload_name, reg_type, Register(PTR, slot))
                )
                inst.replace_operands(
                    {reg_name: Register(reg_type, reload_name)}
                )
            new_instructions.append(inst)
        block.instructions = new_instructions


def _type_of_def(fn: Function, name: str):
    for inst in fn.instructions():
        if getattr(inst, "name", None) == name:
            return inst.type
    raise KeyError(name)


def _make_slot(
    fn: Function,
    reg_name: str,
    label_of_copy: List[Dict[str, str]],
    rename_of_copy: List[Dict[str, str]],
    stats: UnrollStats,
) -> str:
    """Create a stack slot for ``reg_name``; store after every definition."""
    stats.memory_fallbacks += 1
    reg_type = _type_of_def(fn, reg_name)
    slot_name = fn.fresh_register(f"{reg_name}.slot")
    entry = fn.entry
    entry.instructions.insert(0, Alloca(slot_name, reg_type))
    # Store after each copy's definition.
    for i, labels in enumerate(label_of_copy):
        copy_name = rename_of_copy[i][reg_name]
        for label in labels.values():
            block = fn.blocks[label]
            for idx, inst in enumerate(block.instructions):
                if getattr(inst, "name", None) == copy_name:
                    insert_at = idx + 1
                    if isinstance(inst, Phi):
                        # Keep the phi group contiguous at the block head.
                        while insert_at < len(block.instructions) and isinstance(
                            block.instructions[insert_at], Phi
                        ):
                            insert_at += 1
                    block.instructions.insert(
                        insert_at,
                        Store(Register(reg_type, copy_name), Register(PTR, slot_name)),
                    )
                    break
    return slot_name
