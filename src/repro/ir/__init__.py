"""A typed, SSA-based IR modelled on LLVM IR (§2 of the Alive2 paper).

Supports fixed-width integers, small IEEE-754 floats, logical pointers,
vectors, and arrays; immediate UB, `undef`, `poison`, and `freeze`;
branches, switches, phi nodes, calls, and the memory instructions.

The textual syntax accepted by :func:`repro.ir.parser.parse_module` is the
LLVM assembly subset used throughout the tests and the paper's examples.
"""

from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    Type,
    VectorType,
    VoidType,
)
from repro.ir.values import (
    Argument,
    ConstantAggregate,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    GlobalVariable,
    PoisonValue,
    Register,
    UndefValue,
    Value,
)
from repro.ir.module import Module
from repro.ir.function import BasicBlock, Function

__all__ = [
    "Type",
    "IntType",
    "FloatType",
    "PointerType",
    "VectorType",
    "ArrayType",
    "VoidType",
    "Value",
    "ConstantInt",
    "ConstantFloat",
    "ConstantAggregate",
    "ConstantNull",
    "UndefValue",
    "PoisonValue",
    "Register",
    "Argument",
    "GlobalVariable",
    "Module",
    "Function",
    "BasicBlock",
]
