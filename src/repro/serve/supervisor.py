"""Worker supervision: the robustness core of the verification service.

A :class:`Supervisor` owns a pool of persistent, pre-warmed worker
processes and a bounded request queue, and guarantees that every
submitted request resolves exactly once — with a real verdict when any
worker can produce one, and with a structured ``CRASH`` payload when the
attempt budget is exhausted — no matter how workers fail:

* **heartbeats**: each worker runs a daemon thread that reports liveness
  (and the id of the task it is chewing on) every
  ``heartbeat_interval_s``; a silent worker past ``heartbeat_timeout_s``
  is declared dead even if its pipe is technically open (SIGSTOP-style
  freeze, OOM-kill limbo);
* **hang detection**: a task running past its own deadline plus
  ``task_grace_s`` marks the worker as *wedged* — heartbeats still flow
  (the process is alive, the solver is stuck), so supervision, not the
  in-process deadline, SIGKILLs it;
* **retry with budget**: the in-flight request of a dead or wedged
  worker is re-dispatched to a fresh worker; after ``max_attempts``
  total dispatches it degrades to a structured ``CRASH`` verdict instead
  of cycling forever;
* **exponential backoff**: a worker slot that keeps dying restarts with
  doubling delay (capped), so a poisoned environment cannot turn the
  supervisor into a fork bomb;
* **circuit breaker**: ``breaker_deaths`` worker deaths inside
  ``breaker_window_s`` open the breaker — new submissions are shed with
  :class:`OverloadedError` (an ``OVERLOADED`` reply at the protocol
  layer, the 503 of this protocol) until ``breaker_cooldown_s`` passes;
  the first completed request closes it.  The bounded queue sheds the
  same way instead of growing without limit;
* **graceful drain**: :meth:`Supervisor.drain` stops intake and waits
  for in-flight work under a deadline; stragglers past the deadline are
  resolved with an ``UNAVAILABLE`` error and their workers killed.

Fault injection rides the existing :mod:`repro.harness.faults` plumbing:
``ServeConfig.fault_plan`` is activated inside workers, with two extra
protocol-stage sites (``serve-recv``/``serve-send``) and
``fault_attempts`` selecting which dispatch attempts arm the plan — a
retried request only re-faults if the chaos test asks it to.
"""

from __future__ import annotations

import logging
import multiprocessing
import multiprocessing.connection
import os
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.harness import faults
from repro.harness.deadline import Deadline
from repro.harness.degrade import DegradationLadder
from repro.harness.faults import FaultPlan
from repro.harness.isolation import (
    diagnostic_from,
    run_contained,
    run_verification_job,
    worker_loss_diagnostic,
)
from repro.refinement.check import VerifyOptions

logger = logging.getLogger("repro.serve.supervisor")


class OverloadedError(RuntimeError):
    """The service is shedding load (queue full, breaker open, draining)."""

    def __init__(self, detail: str, code: str = "OVERLOADED") -> None:
        super().__init__(detail)
        self.code = code


@dataclass(frozen=True)
class ServeConfig:
    """Supervision knobs.  Production defaults; chaos tests shrink them."""

    workers: int = 2
    queue_limit: int = 128  # queued + in-flight requests before shedding
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 2.0
    task_grace_s: float = 10.0  # on top of the request's own timeout
    default_task_s: float = 30.0  # hang deadline when the request has none
    max_attempts: int = 2  # total dispatches before degrading to CRASH
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 5.0
    breaker_deaths: int = 4
    breaker_window_s: float = 10.0
    breaker_cooldown_s: float = 2.0
    drain_timeout_s: float = 10.0
    cache_enabled: bool = False
    cache_path: Optional[str] = None
    #: Shard count for the two-tier query cache.  With ``shards > 1``
    #: each worker slot owns the shard indices congruent to its slot
    #: index, so it loads and appends only its slice of the disk tier
    #: (see :mod:`repro.engine.qcache`); slot indices are stable across
    #: restarts, so a respawned worker re-adopts the same shards.
    cache_shards: int = 1
    #: Interned-term high-water mark: a worker whose intern table grows
    #: past this resets it between tasks (warm-universe hygiene — the
    #: warm pool's answer to the cold pool's per-test reset).
    intern_limit: int = 400_000
    fault_plan: Optional[FaultPlan] = None
    fault_attempts: Tuple[int, ...] = (1,)
    default_options: Optional[dict] = None  # VerifyOptions.to_json()


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _WorkerConfig:
    """The picklable subset of :class:`ServeConfig` a worker needs."""

    heartbeat_interval_s: float
    cache_enabled: bool
    cache_path: Optional[str]
    cache_shards: int
    cache_owned: Optional[Tuple[int, ...]]
    intern_limit: int
    fault_plan: Optional[FaultPlan]
    fault_attempts: Tuple[int, ...]
    default_options: Optional[dict]


def _unittest_from_json(t: dict):
    from repro.suite.unittests import UnitTest

    return UnitTest(
        name=t["name"],
        ir=t["ir"],
        pipeline=tuple(t.get("pipeline") or ()),
        bug_option=t.get("bug_option"),
        category=t.get("category"),
        buggy_target=t.get("buggy_target"),
    )


def _trim_interning(limit: int) -> None:
    """Reset the interned-term universe once it crosses ``limit``.

    Between-test resets are exactly what the cold pool does every test,
    so triggering one here can only restore the cold-start state — the
    warm pool keeps the universe as long as memory allows and no longer.
    """
    from repro.smt.terms import intern_size, reset_interning

    if limit > 0 and intern_size() > limit:
        reset_interning()


def _execute_task(msg: dict, cfg: _WorkerConfig, cache) -> dict:
    """Run one request in this worker; returns the reply payload."""
    from repro.engine import qcache
    from repro.ir.parser import parse_module
    from repro.suite.runner import _run_one_test

    request = msg["request"]
    attempt = int(msg.get("attempt", 1))
    plan = cfg.fault_plan
    if plan is not None and attempt not in cfg.fault_attempts:
        plan = None
    name = (
        request.get("name")
        or (request.get("test") or {}).get("name")
        or f"req-{msg.get('id')}"
    )
    options = VerifyOptions.from_json(
        request.get("options") or cfg.default_options or {}
    )
    retries = int(request.get("retries", 0) or 0)
    ladder = DegradationLadder(max_retries=retries) if retries > 0 else None

    with faults.activate(plan), qcache.activate(cache):
        with faults.current_test(name):
            faults.maybe_fault("serve-recv")
        if request["op"] == "chunk":
            # A batch-engine task: many tests per dispatch, amortizing
            # the per-request pipe round-trip the same way engine.pool
            # batches tests per pool task.  The interned term universe
            # stays warm across tests (that is the warm pool's point);
            # _trim_interning bounds it at the configured high-water
            # mark, which a cold pool resets to after *every* test.
            records = []
            for t in request["tests"]:
                _trim_interning(cfg.intern_limit)
                record = _run_one_test(
                    _unittest_from_json(t),
                    options,
                    bool(request.get("inject_bugs", True)),
                    int(request.get("batch", 1)),
                    ladder,
                )
                record.worker = os.getpid()
                records.append(record.to_json())
            payload = {
                "kind": "chunk",
                "records": records,
                "pid": os.getpid(),
                "cache": cache.counters() if cache is not None else None,
            }
        elif request["op"] == "test":
            record = _run_one_test(
                _unittest_from_json(request["test"]),
                options,
                bool(request.get("inject_bugs", True)),
                int(request.get("batch", 1)),
                ladder,
            )
            record.worker = os.getpid()
            payload = {"kind": "test", "record": record.to_json()}
        else:

            def job():
                src_module = parse_module(request["src"])
                tgt_module = parse_module(request["tgt"])
                return run_verification_job(
                    src_module.definitions()[0],
                    tgt_module.definitions()[0],
                    src_module,
                    tgt_module,
                    options,
                    ladder=ladder,
                )

            result = run_contained(job, phase="serve")
            payload = {
                "kind": "verify",
                "result": result.to_json(
                    full_certificates=request.get("certificates") == "full"
                ),
            }
        with faults.current_test(name):
            faults.maybe_fault("serve-send")
    return payload


def _worker_main(conn, cfg: _WorkerConfig) -> None:
    """Entry point of a pooled worker process.

    Pre-warms the verification pipeline (imports + cache load), then
    serves tasks until the parent closes the pipe or sends ``stop``.  A
    daemon heartbeat thread reports liveness and the current task; the
    main loop is single-task-at-a-time by design — one request per crash
    domain.
    """
    # Pre-warm: pull in the whole parse/encode/solve stack now, not on
    # the first request.  Under the fork start method these are already
    # hot in the parent; under spawn this is the pre-warm.
    from repro.engine.qcache import QueryCache
    from repro.ir import parser as _parser  # noqa: F401
    from repro.suite import runner as _runner  # noqa: F401
    from repro.tv import plugin as _plugin  # noqa: F401

    cache = (
        QueryCache(
            cfg.cache_path,
            shards=cfg.cache_shards,
            owned=cfg.cache_owned,
        )
        if (cfg.cache_enabled or cfg.cache_path is not None)
        else None
    )
    send_lock = threading.Lock()
    state: dict = {"task": None, "since": 0.0}
    stop_event = threading.Event()

    def send(message: dict) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, EOFError, OSError):
                # Parent is gone; the main loop's recv will notice too.
                pass

    def heartbeat_loop() -> None:
        while not stop_event.wait(cfg.heartbeat_interval_s):
            task = state["task"]
            send(
                {
                    "type": "hb",
                    "pid": os.getpid(),
                    "task": task,
                    "elapsed": (time.monotonic() - state["since"])
                    if task is not None
                    else 0.0,
                }
            )

    threading.Thread(target=heartbeat_loop, daemon=True).start()
    send({"type": "ready", "pid": os.getpid()})

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if not isinstance(msg, dict):
            continue
        if msg.get("type") == "stop":
            break
        if msg.get("type") != "task":
            continue
        rid = msg["id"]
        state["task"] = rid
        state["since"] = time.monotonic()
        try:
            payload = _execute_task(msg, cfg, cache)
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:  # noqa: BLE001 — worker containment
            # _execute_task is already containment-wrapped inside; this
            # only catches serve-loop-level failures (e.g. an injected
            # protocol-stage crash).  Deterministic, so no retry: report
            # it as a structured error and let the supervisor degrade it.
            payload = {
                "kind": "error",
                "error": "WORKER_EXCEPTION",
                "detail": str(exc),
                "diagnostic": diagnostic_from(exc),
            }
        state["task"] = None
        send({"type": "result", "id": rid, "payload": payload})
        # Warm-universe hygiene between requests: keep interned terms
        # (and every term-keyed memo) alive while they fit, reset once
        # past the high-water mark.
        _trim_interning(cfg.intern_limit)
    stop_event.set()


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _Pending:
    """One submitted request: its future, attempt budget, and deadline."""

    __slots__ = (
        "rid",
        "request",
        "future",
        "attempts",
        "task_timeout_s",
        "max_attempts",
    )

    def __init__(
        self,
        rid: int,
        request: dict,
        task_timeout_s: float,
        max_attempts: int,
    ) -> None:
        self.rid = rid
        self.request = request
        self.future: Future = Future()
        self.attempts = 0  # dispatches so far
        self.task_timeout_s = task_timeout_s
        self.max_attempts = max(1, max_attempts)


@dataclass
class _Slot:
    """One supervised worker position in the pool."""

    idx: int
    proc: Optional[multiprocessing.process.BaseProcess] = None
    conn: Optional[multiprocessing.connection.Connection] = None
    pid: Optional[int] = None
    state: str = "dead"  # dead | starting | idle | busy
    current: Optional[int] = None  # rid of the in-flight request
    assigned_at: float = 0.0
    last_hb: float = 0.0
    deaths_in_row: int = 0
    restart_at: float = 0.0
    tasks_done: int = 0


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class Supervisor:
    """A health-checked, self-healing pool of verification workers."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self._ctx = _pool_context()
        self._lock = threading.Lock()
        self._queue: Deque[_Pending] = deque()
        self._inflight: Dict[int, _Pending] = {}
        self._slots: List[_Slot] = [
            _Slot(idx=i) for i in range(max(1, self.config.workers))
        ]
        self._deaths: Deque[float] = deque()
        self._breaker_open_until = 0.0
        self._next_rid = 0
        self._running = False
        self._draining = False
        self._thread: Optional[threading.Thread] = None
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "retries": 0,
            "worker_deaths": 0,
            "restarts": 0,
            "shed": 0,
            "crash_degraded": 0,
        }

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "Supervisor":
        with self._lock:
            if self._running:
                return self
            self._running = True
        for slot in self._slots:
            self._spawn(slot)
        self._thread = threading.Thread(
            target=self._loop, name="serve-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self, drain_timeout_s: Optional[float] = None) -> None:
        """Drain under a deadline, then stop the loop and all workers."""
        self.drain(drain_timeout_s)
        with self._lock:
            self._running = False
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for slot in self._slots:
            self._stop_slot(slot)

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Stop intake; wait for queued + in-flight work under a deadline.

        Returns True if everything finished.  On deadline expiry the
        stragglers are resolved with an ``UNAVAILABLE`` error payload and
        their workers are killed (their next restart serves nobody until
        drain is lifted by a fresh :meth:`start`).
        """
        with self._lock:
            self._draining = True
        deadline = Deadline.start(
            self.config.drain_timeout_s if timeout_s is None else timeout_s
        )
        while True:
            with self._lock:
                outstanding = len(self._queue) + len(self._inflight)
            if outstanding == 0:
                return True
            if deadline.expired():
                break
            time.sleep(deadline.clamp(0.02))
        with self._lock:
            stragglers = list(self._queue) + list(self._inflight.values())
            self._queue.clear()
            self._inflight.clear()
            busy = [s for s in self._slots if s.state == "busy"]
            for slot in busy:
                slot.current = None
        for slot in busy:
            self._kill_slot_proc(slot)
        for pending in stragglers:
            self._resolve(
                pending,
                {
                    "kind": "error",
                    "error": "UNAVAILABLE",
                    "detail": "drain deadline expired",
                },
            )
        return False

    # -- intake ------------------------------------------------------------
    def submit(self, request: dict) -> Future:
        """Queue one request; the future resolves with its reply payload.

        Raises :class:`OverloadedError` instead of queueing when the
        service is draining, the circuit breaker is open, or the bounded
        queue (queued + in-flight) is full — load is shed, never
        accumulated without limit.
        """
        now = time.monotonic()
        with self._lock:
            if not self._running or self._draining:
                self.stats["shed"] += 1
                raise OverloadedError("service is draining", code="DRAINING")
            if now < self._breaker_open_until:
                self.stats["shed"] += 1
                raise OverloadedError(
                    "circuit breaker open after repeated worker deaths"
                )
            if len(self._queue) + len(self._inflight) >= self.config.queue_limit:
                self.stats["shed"] += 1
                raise OverloadedError(
                    f"queue full ({self.config.queue_limit} outstanding)"
                )
            self._next_rid += 1
            rid = self._next_rid
            options = request.get("options") or self.config.default_options or {}
            # A request may carry its own hang deadline (a chunk of N
            # tests legitimately runs ~N times longer than one test) and
            # its own attempt budget (a chunk is dispatched once — its
            # tests are retried individually for attribution, the same
            # split engine.pool performs after a pool collapse).
            base = request.get("timeout_s")
            if base is None:
                base = options.get("timeout_s")
            if base is None:
                base = self.config.default_task_s
            budget = int(request.get("max_attempts") or self.config.max_attempts)
            pending = _Pending(
                rid, request, float(base) + self.config.task_grace_s, budget
            )
            self._queue.append(pending)
            self.stats["submitted"] += 1
            return pending.future

    # -- introspection -----------------------------------------------------
    def health(self) -> dict:
        now = time.monotonic()
        with self._lock:
            return {
                "ok": self._running and not self._draining,
                "draining": self._draining,
                "queue": len(self._queue),
                "inflight": len(self._inflight),
                "queue_limit": self.config.queue_limit,
                "breaker_open": now < self._breaker_open_until,
                "stats": dict(self.stats),
                "workers": [
                    {
                        "slot": s.idx,
                        "pid": s.pid,
                        "state": s.state,
                        "tasks_done": s.tasks_done,
                        "deaths_in_row": s.deaths_in_row,
                        "last_hb_age_s": round(now - s.last_hb, 3)
                        if s.last_hb
                        else None,
                    }
                    for s in self._slots
                ],
            }

    # -- worker management -------------------------------------------------
    def _spawn(self, slot: _Slot) -> None:
        cfg = self.config
        owned = None
        if cfg.cache_shards > 1:
            # Slot indices are stable across restarts, so ownership is a
            # fixed partition: slot i owns the shard indices congruent
            # to i modulo the pool size.  Every shard has exactly one
            # owner when shards >= workers; a replacement worker re-loads
            # exactly the slice its predecessor owned.
            n = max(1, len(self._slots))
            owned = tuple(
                k for k in range(cfg.cache_shards) if k % n == slot.idx % n
            )
        wcfg = _WorkerConfig(
            heartbeat_interval_s=cfg.heartbeat_interval_s,
            cache_enabled=cfg.cache_enabled,
            cache_path=cfg.cache_path,
            cache_shards=cfg.cache_shards,
            cache_owned=owned,
            intern_limit=cfg.intern_limit,
            fault_plan=cfg.fault_plan,
            fault_attempts=tuple(cfg.fault_attempts),
            default_options=cfg.default_options,
        )
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, wcfg),
            name=f"alive-serve-worker-{slot.idx}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        with self._lock:
            slot.proc = proc
            slot.conn = parent_conn
            slot.pid = proc.pid
            slot.state = "starting"
            slot.current = None
            slot.last_hb = time.monotonic()
        logger.info("spawned worker slot=%d pid=%s", slot.idx, proc.pid)

    def _kill_slot_proc(self, slot: _Slot) -> None:
        proc, conn = slot.proc, slot.conn
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=1.0)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        with self._lock:
            slot.proc = None
            slot.conn = None
            slot.state = "dead"

    def _stop_slot(self, slot: _Slot) -> None:
        conn = slot.conn
        if conn is not None:
            try:
                conn.send({"type": "stop"})
            except (BrokenPipeError, OSError):
                pass
        if slot.proc is not None:
            slot.proc.join(timeout=0.5)
        self._kill_slot_proc(slot)

    def _on_slot_death(self, slot: _Slot, reason: str) -> None:
        """A worker is gone (or wedged): kill, reschedule, back off."""
        now = time.monotonic()
        with self._lock:
            rid = slot.current
            slot.current = None
            slot.deaths_in_row += 1
            backoff = min(
                self.config.backoff_cap_s,
                self.config.backoff_base_s * (2 ** (slot.deaths_in_row - 1)),
            )
            slot.restart_at = now + backoff
            self.stats["worker_deaths"] += 1
            self._deaths.append(now)
            while self._deaths and now - self._deaths[0] > self.config.breaker_window_s:
                self._deaths.popleft()
            if len(self._deaths) >= self.config.breaker_deaths:
                self._breaker_open_until = now + self.config.breaker_cooldown_s
                logger.warning(
                    "circuit breaker OPEN (%d deaths in %.1fs); shedding for %.1fs",
                    len(self._deaths),
                    self.config.breaker_window_s,
                    self.config.breaker_cooldown_s,
                )
            pending = self._inflight.pop(rid, None) if rid is not None else None
        logger.warning(
            "worker slot=%d pid=%s lost (%s); backoff %.2fs",
            slot.idx,
            slot.pid,
            reason,
            backoff,
        )
        self._kill_slot_proc(slot)
        if pending is None:
            return
        if pending.attempts < pending.max_attempts:
            with self._lock:
                self.stats["retries"] += 1
                self._queue.appendleft(pending)  # retries jump the line
        else:
            with self._lock:
                self.stats["crash_degraded"] += 1
            self._resolve(pending, self._crash_payload(pending, reason))

    def _crash_payload(self, pending: _Pending, reason: str) -> dict:
        """The degraded verdict for a request whose budget is exhausted."""
        message = (
            f"worker lost ({reason}) on every attempt "
            f"({pending.attempts}/{pending.max_attempts})"
        )
        diagnostic = worker_loss_diagnostic(message)
        request = pending.request
        if request.get("op") == "chunk":
            # The warm pool resubmits each member as a singleton "test"
            # request, where a repeat failure is attributable to one test.
            return {
                "kind": "chunk_crash",
                "tests": [
                    t.get("name", "<unnamed>")
                    for t in request.get("tests", [])
                ],
                "detail": message,
                "diagnostic": diagnostic,
            }
        if request.get("op") == "test":
            test = request.get("test") or {}
            return {
                "kind": "test",
                "record": {
                    "test": test.get("name", "<unnamed>"),
                    "category": test.get("category"),
                    "verdicts": {"crash": 1},
                    "diagnostic": diagnostic,
                    "serve_attempts": pending.attempts,
                },
            }
        return {
            "kind": "verify",
            "result": {
                "verdict": "crash",
                "failed_check": "serve",
                "diagnostic": diagnostic,
                "degradations": [],
                "counterexample": {},
                "approx_features": [],
                "unsupported_feature": None,
                "elapsed_s": 0.0,
                "certificates": [],
                "notes": [],
            },
        }

    def _resolve(self, pending: _Pending, payload: dict) -> None:
        if not pending.future.done():
            pending.future.set_result(payload)

    # -- the supervision loop ---------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._lock:
                if not self._running:
                    return
                conn_to_slot = {
                    s.conn: s for s in self._slots if s.conn is not None
                }
            ready = (
                multiprocessing.connection.wait(
                    list(conn_to_slot), timeout=0.02
                )
                if conn_to_slot
                else []
            )
            if not conn_to_slot:
                time.sleep(0.02)
            for conn in ready:
                slot = conn_to_slot.get(conn)
                if slot is None or slot.conn is not conn:
                    continue
                self._drain_conn(slot)
            self._check_health()
            self._dispatch()

    def _drain_conn(self, slot: _Slot) -> None:
        conn = slot.conn
        try:
            while conn is not None and conn.poll():
                msg = conn.recv()
                self._handle_worker_message(slot, msg)
                conn = slot.conn  # may have been torn down by a handler
        except (EOFError, OSError):
            self._on_slot_death(slot, "pipe closed (process died)")

    def _handle_worker_message(self, slot: _Slot, msg: dict) -> None:
        if not isinstance(msg, dict):
            return
        kind = msg.get("type")
        now = time.monotonic()
        if kind == "hb":
            with self._lock:
                slot.last_hb = now
            return
        if kind == "ready":
            with self._lock:
                slot.last_hb = now
                slot.pid = msg.get("pid", slot.pid)
                if slot.state == "starting":
                    slot.state = "idle"
            return
        if kind == "result":
            rid = msg.get("id")
            with self._lock:
                pending = self._inflight.pop(rid, None)
                if slot.current == rid:
                    slot.current = None
                    slot.state = "idle"
                slot.tasks_done += 1
                slot.deaths_in_row = 0
                slot.last_hb = now
                self.stats["completed"] += 1
                # A completed task is proof of recovery: close the breaker.
                self._deaths.clear()
                self._breaker_open_until = 0.0
            if pending is None:
                return  # raced with a hang-kill; already rescheduled
            payload = msg.get("payload") or {}
            if payload.get("kind") == "error":
                # Deterministic in-worker serve failure: degrade, no retry.
                with self._lock:
                    self.stats["crash_degraded"] += 1
                detail = payload.get("detail", "worker exception")
                self._resolve(
                    pending, self._crash_payload(pending, f"exception: {detail}")
                )
            else:
                self._resolve(pending, payload)

    def _check_health(self) -> None:
        now = time.monotonic()
        cfg = self.config
        for slot in self._slots:
            with self._lock:
                state = slot.state
                proc = slot.proc
                current = slot.current
                last_hb = slot.last_hb
                assigned_at = slot.assigned_at
                restart_due = (
                    state == "dead"
                    and self._running
                    and not self._draining
                    and now >= slot.restart_at
                )
                timeout_s = None
                if current is not None and current in self._inflight:
                    timeout_s = self._inflight[current].task_timeout_s
            if state == "dead":
                if restart_due:
                    with self._lock:
                        self.stats["restarts"] += 1
                    self._spawn(slot)
                continue
            if proc is not None and not proc.is_alive():
                self._on_slot_death(slot, "process exited")
                continue
            if now - last_hb > cfg.heartbeat_timeout_s:
                self._on_slot_death(slot, "heartbeat timeout")
                continue
            if (
                state == "busy"
                and timeout_s is not None
                and now - assigned_at > timeout_s
            ):
                self._on_slot_death(
                    slot, f"task overdue ({now - assigned_at:.1f}s)"
                )

    def _dispatch(self) -> None:
        while True:
            with self._lock:
                if not self._queue:
                    return
                slot = next(
                    (s for s in self._slots if s.state == "idle"), None
                )
                if slot is None:
                    return
                pending = self._queue.popleft()
                pending.attempts += 1
                slot.state = "busy"
                slot.current = pending.rid
                slot.assigned_at = time.monotonic()
                self._inflight[pending.rid] = pending
                conn = slot.conn
                message = {
                    "type": "task",
                    "id": pending.rid,
                    "attempt": pending.attempts,
                    "request": pending.request,
                }
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):
                self._on_slot_death(slot, "dispatch failed (pipe broken)")
