"""The ``alive-serve`` daemon: a socket front-end over the supervisor.

One thread accepts connections; each connection gets a reader thread
that parses newline-framed JSON requests and submits them to the shared
:class:`~repro.serve.supervisor.Supervisor`.  Replies are written from
future callbacks as verdicts complete — out of submission order, matched
by ``id`` — under a per-connection write lock, so one slow request never
blocks the verdict stream behind it.

Signals (when run as a main program):

* ``SIGTERM`` / ``SIGINT`` — graceful shutdown: stop accepting, drain
  in-flight requests under ``--drain-timeout``, then exit;
* ``SIGHUP`` — log a health snapshot and re-scan (heal) the on-disk
  query cache without restarting.
"""

from __future__ import annotations

import argparse
import json
import logging
import signal
import socket
import sys
import threading
from typing import Optional, Set

from repro.refinement.check import VerifyOptions
from repro.serve import protocol
from repro.serve.supervisor import OverloadedError, ServeConfig, Supervisor

logger = logging.getLogger("repro.serve.server")

_DATA_OPS = ("verify", "test")


class ServeServer:
    """Accept loop + per-connection request pumps over one supervisor."""

    def __init__(
        self, address: protocol.Address, config: Optional[ServeConfig] = None
    ) -> None:
        self.address = address
        self.supervisor = Supervisor(config)
        self._listener: Optional[socket.socket] = None
        self._shutdown = threading.Event()
        self._drain_timeout_s: Optional[float] = None
        self._conns: Set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        self._accept_thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ServeServer":
        """Bind, start workers, and begin accepting in the background."""
        self.supervisor.start()
        self._listener = protocol.create_server_socket(self.address)
        self._listener.settimeout(0.2)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()
        logger.info(
            "alive-serve listening on %s (%d workers)",
            protocol.format_address(self.address),
            self.supervisor.config.workers,
        )
        return self

    def wait(self) -> None:
        """Block until :meth:`request_shutdown`, then tear down."""
        self._shutdown.wait()
        self._teardown()

    def request_shutdown(self, drain_timeout_s: Optional[float] = None) -> None:
        self._drain_timeout_s = drain_timeout_s
        self._shutdown.set()

    def close(self, drain_timeout_s: Optional[float] = None) -> None:
        """Synchronous shutdown (for tests): drain, stop, unbind."""
        self.request_shutdown(drain_timeout_s)
        self._teardown()

    def _teardown(self) -> None:
        listener = self._listener
        self._listener = None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        self.supervisor.shutdown(self._drain_timeout_s)
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        if self.address[0] == "unix":
            import os

            try:
                os.unlink(self.address[1])
            except OSError:
                pass

    # -- connections -------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            listener = self._listener
            if listener is None:
                return
            try:
                conn, _peer = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._conns_lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()

        def reply(message: dict) -> None:
            try:
                frame = protocol.encode_message(message)
            except protocol.ProtocolError as exc:
                frame = protocol.encode_message(
                    {
                        "id": message.get("id"),
                        "ok": False,
                        "error": protocol.BAD_REQUEST,
                        "detail": f"reply too large: {exc}",
                    }
                )
            with write_lock:
                try:
                    conn.sendall(frame)
                except OSError:
                    pass  # client went away; verdict is already computed

        try:
            reader = protocol.LineReader(conn)
            for line in reader:
                if not line.strip():
                    continue
                try:
                    request = protocol.decode_message(line)
                except protocol.ProtocolError as exc:
                    reply(
                        {
                            "id": None,
                            "ok": False,
                            "error": protocol.BAD_REQUEST,
                            "detail": str(exc),
                        }
                    )
                    continue
                if not self._handle_request(request, reply):
                    break
        except protocol.ProtocolError as exc:
            reply(
                {
                    "id": None,
                    "ok": False,
                    "error": protocol.BAD_REQUEST,
                    "detail": str(exc),
                }
            )
        except OSError:
            pass
        finally:
            with self._conns_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    # -- request handling --------------------------------------------------
    def _handle_request(self, request: dict, reply) -> bool:
        """Dispatch one decoded request; False ends the connection."""
        op = request.get("op")
        rid = request.get("id")
        if op in _DATA_OPS:
            problem = _validate_data_request(op, rid, request)
            if problem is not None:
                reply(
                    {
                        "id": rid,
                        "ok": False,
                        "error": protocol.BAD_REQUEST,
                        "detail": problem,
                    }
                )
                return True
            try:
                future = self.supervisor.submit(request)
            except OverloadedError as exc:
                reply(
                    {
                        "id": rid,
                        "ok": False,
                        "error": exc.code,
                        "detail": str(exc),
                    }
                )
                return True

            def deliver(fut, rid=rid) -> None:
                payload = fut.result()
                if payload.get("kind") == "error":
                    reply(
                        {
                            "id": rid,
                            "ok": False,
                            "error": payload.get("error", protocol.UNAVAILABLE),
                            "detail": payload.get("detail", ""),
                        }
                    )
                else:
                    reply({"id": rid, "ok": True, "result": payload})

            future.add_done_callback(deliver)
            return True
        if op == "health":
            health = self.supervisor.health()
            health["protocol"] = protocol.PROTOCOL_VERSION
            health["address"] = protocol.format_address(self.address)
            reply({"id": rid, "ok": True, "result": health})
            return True
        if op == "drain":
            drained = self.supervisor.drain(request.get("timeout_s"))
            reply({"id": rid, "ok": True, "result": {"drained": drained}})
            return True
        if op == "shutdown":
            reply({"id": rid, "ok": True, "result": {"stopping": True}})
            self.request_shutdown(request.get("timeout_s"))
            return False
        reply(
            {
                "id": rid,
                "ok": False,
                "error": protocol.BAD_REQUEST,
                "detail": f"unknown op {op!r}",
            }
        )
        return True


def _validate_data_request(op: str, rid, request: dict) -> Optional[str]:
    """Shape check before anything reaches a worker; None when fine."""
    if not isinstance(rid, int):
        return "data requests need an integer 'id'"
    if op == "verify":
        for key in ("src", "tgt"):
            if not isinstance(request.get(key), str):
                return f"verify needs IR text in {key!r}"
    else:
        test = request.get("test")
        if not isinstance(test, dict):
            return "test op needs a 'test' object"
        if not isinstance(test.get("name"), str) or not isinstance(
            test.get("ir"), str
        ):
            return "test object needs 'name' and 'ir' strings"
    options = request.get("options")
    if options is not None and not isinstance(options, dict):
        return "'options' must be an object (VerifyOptions.to_json())"
    return None


# ---------------------------------------------------------------------------
# Daemon entry point
# ---------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="alive-serve",
        description="Long-lived translation-validation service "
        "(line-delimited JSON over a Unix or TCP socket).",
    )
    parser.add_argument(
        "--listen",
        default="unix:./alive-serve.sock",
        metavar="ADDR",
        help="unix:/path, /path, or host:port (default %(default)s)",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=128,
        help="outstanding requests before shedding with OVERLOADED",
    )
    parser.add_argument(
        "--query-cache",
        metavar="PATH",
        default=None,
        help="shared persistent solver-query cache (JSONL)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="default per-request verification timeout (seconds)",
    )
    parser.add_argument("--unroll", type=int, default=4)
    parser.add_argument(
        "--certify",
        action="store_true",
        help="require checkable UNSAT proofs (see --certify in alive-suite)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=2,
        help="dispatches per request before degrading to CRASH",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to wait for in-flight work on SIGTERM",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    options = VerifyOptions(
        unroll_factor=args.unroll,
        timeout_s=args.timeout,
        certify=args.certify,
    )
    config = ServeConfig(
        workers=max(1, args.workers),
        queue_limit=max(1, args.queue_limit),
        max_attempts=max(1, args.max_attempts),
        drain_timeout_s=args.drain_timeout,
        cache_enabled=args.query_cache is not None,
        cache_path=args.query_cache,
        default_options=options.to_json(),
    )
    try:
        address = protocol.parse_address(args.listen)
    except ValueError as exc:
        print(f"alive-serve: {exc}", file=sys.stderr)
        return 2

    server = ServeServer(address, config).start()

    def on_terminate(signum, _frame) -> None:
        logger.info(
            "signal %s: draining (timeout %.1fs) and shutting down",
            signal.Signals(signum).name,
            args.drain_timeout,
        )
        server.request_shutdown(args.drain_timeout)

    def on_hup(_signum, _frame) -> None:
        logger.info("health: %s", json.dumps(self_health(server)))
        if args.query_cache is not None:
            from repro.engine.qcache import QueryCache

            discarded = QueryCache(args.query_cache).heal()
            logger.info(
                "query cache healed: %d corrupt entr%s discarded",
                discarded,
                "y" if discarded == 1 else "ies",
            )

    signal.signal(signal.SIGTERM, on_terminate)
    signal.signal(signal.SIGINT, on_terminate)
    if hasattr(signal, "SIGHUP"):
        signal.signal(signal.SIGHUP, on_hup)

    server.wait()
    logger.info("alive-serve stopped")
    return 0


def self_health(server: ServeServer) -> dict:
    return server.supervisor.health()


if __name__ == "__main__":
    sys.exit(main())
