"""The ``alive-serve`` daemon: a socket front-end over the supervisor.

The connection layer is readiness-driven, not thread-per-connection:
one IO thread owns a :mod:`selectors` selector watching the listener and
every live connection, so a thousand idle clients cost a thousand file
descriptors and zero threads.  Readable connections have their bytes
pulled into per-connection buffers, split into newline frames, and the
frames fanned out to a small **bounded pool of handler threads** that
parse and dispatch requests (per-connection in order — frames from one
socket are never handled concurrently).  ``max_connections`` caps the
accepted set; clients over the cap get an ``OVERLOADED`` reply and an
immediate close, the same shed-don't-queue policy the supervisor applies
to requests.

Replies are written from future callbacks as verdicts complete — out of
submission order, matched by ``id`` — under a per-connection write lock,
so one slow request never blocks the verdict stream behind it.

Signals (when run as a main program):

* ``SIGTERM`` / ``SIGINT`` — graceful shutdown: stop accepting, drain
  in-flight requests under ``--drain-timeout``, then exit;
* ``SIGHUP`` — log a health snapshot and re-scan (heal) the on-disk
  query cache without restarting.
"""

from __future__ import annotations

import argparse
import json
import logging
import queue
import selectors
import signal
import socket
import sys
import threading
from collections import deque
from typing import Deque, Optional, Set

from repro.refinement.check import VerifyOptions
from repro.serve import protocol
from repro.serve.supervisor import OverloadedError, ServeConfig, Supervisor

logger = logging.getLogger("repro.serve.server")

_DATA_OPS = ("verify", "test")


class _Conn:
    """One accepted connection: its socket, read buffer, frame queue."""

    __slots__ = ("sock", "buf", "write_lock", "frames", "queued", "closed")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buf = b""
        self.write_lock = threading.Lock()
        self.frames: Deque[bytes] = deque()  # parsed, unhandled frames
        self.queued = False  # sitting in the handler work queue?
        self.closed = False

    def reply(self, message: dict) -> None:
        try:
            frame = protocol.encode_message(message)
        except protocol.ProtocolError as exc:
            frame = protocol.encode_message(
                {
                    "id": message.get("id"),
                    "ok": False,
                    "error": protocol.BAD_REQUEST,
                    "detail": f"reply too large: {exc}",
                }
            )
        with self.write_lock:
            try:
                self.sock.sendall(frame)
            except OSError:
                pass  # client went away; verdict is already computed


class ServeServer:
    """Selector-driven accept/read loop + handler pool over one supervisor."""

    def __init__(
        self,
        address: protocol.Address,
        config: Optional[ServeConfig] = None,
        *,
        conn_threads: int = 4,
        max_connections: int = 256,
    ) -> None:
        self.address = address
        self.supervisor = Supervisor(config)
        self.conn_threads = max(1, conn_threads)
        self.max_connections = max(1, max_connections)
        self._listener: Optional[socket.socket] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._shutdown = threading.Event()
        self._drain_timeout_s: Optional[float] = None
        self._conns: Set[_Conn] = set()
        self._conns_lock = threading.Lock()
        self._io_thread: Optional[threading.Thread] = None
        self._handlers: list = []
        self._work: "queue.Queue[Optional[_Conn]]" = queue.Queue()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ServeServer":
        """Bind, start workers, and begin accepting in the background."""
        self.supervisor.start()
        self._listener = protocol.create_server_socket(self.address)
        # Non-blocking listener: accept() is only called on readiness,
        # and a raced-away connection must not stall the IO loop.
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        self._io_thread = threading.Thread(
            target=self._io_loop, name="serve-io", daemon=True
        )
        self._io_thread.start()
        self._handlers = [
            threading.Thread(
                target=self._handler_loop, name=f"serve-handler-{i}", daemon=True
            )
            for i in range(self.conn_threads)
        ]
        for thread in self._handlers:
            thread.start()
        logger.info(
            "alive-serve listening on %s (%d workers, %d handler threads, "
            "%d connection cap)",
            protocol.format_address(self.address),
            self.supervisor.config.workers,
            self.conn_threads,
            self.max_connections,
        )
        return self

    def wait(self) -> None:
        """Block until :meth:`request_shutdown`, then tear down."""
        self._shutdown.wait()
        self._teardown()

    def request_shutdown(self, drain_timeout_s: Optional[float] = None) -> None:
        self._drain_timeout_s = drain_timeout_s
        self._shutdown.set()

    def close(self, drain_timeout_s: Optional[float] = None) -> None:
        """Synchronous shutdown (for tests): drain, stop, unbind."""
        self.request_shutdown(drain_timeout_s)
        self._teardown()

    def _teardown(self) -> None:
        listener = self._listener
        self._listener = None
        if self._io_thread is not None:
            self._io_thread.join(timeout=2.0)
            self._io_thread = None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        for _ in self._handlers:
            self._work.put(None)
        for thread in self._handlers:
            thread.join(timeout=2.0)
        self._handlers = []
        self.supervisor.shutdown(self._drain_timeout_s)
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            self._drop_conn(conn)
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        if self.address[0] == "unix":
            import os

            try:
                os.unlink(self.address[1])
            except OSError:
                pass

    # -- the IO loop -------------------------------------------------------
    def _io_loop(self) -> None:
        """Accept + read readiness for every socket, one thread total."""
        selector = self._selector
        while not self._shutdown.is_set():
            try:
                events = selector.select(timeout=0.2)
            except OSError:
                return
            for key, _mask in events:
                if key.data is None:
                    self._accept_ready()
                else:
                    self._read_ready(key.data)

    def _accept_ready(self) -> None:
        listener = self._listener
        if listener is None:
            return
        while True:
            try:
                sock, _peer = listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            with self._conns_lock:
                over = len(self._conns) >= self.max_connections
                conn = _Conn(sock)
                if not over:
                    self._conns.add(conn)
            if over:
                # Shed, don't queue: same policy as the supervisor.
                conn.reply(
                    {
                        "id": None,
                        "ok": False,
                        "error": protocol.OVERLOADED,
                        "detail": f"connection cap ({self.max_connections})",
                    }
                )
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            # The socket stays *blocking*: reads happen only on readiness
            # (never stalling the IO thread past one buffered chunk) and
            # replies may use plain sendall from handler/callback threads.
            try:
                self._selector.register(sock, selectors.EVENT_READ, conn)
            except (KeyError, ValueError, OSError):
                self._drop_conn(conn)

    def _read_ready(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop_conn(conn)
            return
        if not data:
            self._drop_conn(conn)
            return
        conn.buf += data
        frames = []
        while True:
            nl = conn.buf.find(b"\n")
            if nl < 0:
                break
            frames.append(conn.buf[:nl])
            conn.buf = conn.buf[nl + 1 :]
        if len(conn.buf) > protocol.MAX_LINE_BYTES:
            # A frame that never ends: answer once and cut the cord
            # instead of buffering without bound.
            conn.reply(
                {
                    "id": None,
                    "ok": False,
                    "error": protocol.BAD_REQUEST,
                    "detail": "oversized frame",
                }
            )
            self._drop_conn(conn)
            return
        if frames:
            self._enqueue(conn, frames)

    def _enqueue(self, conn: _Conn, frames: list) -> None:
        """Hand parsed frames to the handler pool, one queue entry per
        connection at a time so a connection's requests stay ordered."""
        with self._conns_lock:
            if conn.closed:
                return
            conn.frames.extend(frames)
            if conn.queued:
                return
            conn.queued = True
        self._work.put(conn)

    def _drop_conn(self, conn: _Conn) -> None:
        with self._conns_lock:
            conn.closed = True
            self._conns.discard(conn)
        selector = self._selector
        if selector is not None:
            try:
                selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
        try:
            conn.sock.close()
        except OSError:
            pass

    # -- handler pool ------------------------------------------------------
    def _handler_loop(self) -> None:
        while True:
            conn = self._work.get()
            if conn is None:
                return
            self._process_conn(conn)

    def _process_conn(self, conn: _Conn) -> None:
        """Drain one connection's pending frames, in order."""
        while True:
            with self._conns_lock:
                if conn.closed or not conn.frames:
                    conn.queued = False
                    return
                line = conn.frames.popleft()
            if not line.strip():
                continue
            try:
                request = protocol.decode_message(line)
            except protocol.ProtocolError as exc:
                conn.reply(
                    {
                        "id": None,
                        "ok": False,
                        "error": protocol.BAD_REQUEST,
                        "detail": str(exc),
                    }
                )
                continue
            if not self._handle_request(request, conn.reply):
                self._drop_conn(conn)
                return

    # -- request handling --------------------------------------------------
    def _handle_request(self, request: dict, reply) -> bool:
        """Dispatch one decoded request; False ends the connection."""
        op = request.get("op")
        rid = request.get("id")
        if op in _DATA_OPS:
            problem = _validate_data_request(op, rid, request)
            if problem is not None:
                reply(
                    {
                        "id": rid,
                        "ok": False,
                        "error": protocol.BAD_REQUEST,
                        "detail": problem,
                    }
                )
                return True
            try:
                future = self.supervisor.submit(request)
            except OverloadedError as exc:
                reply(
                    {
                        "id": rid,
                        "ok": False,
                        "error": exc.code,
                        "detail": str(exc),
                    }
                )
                return True

            def deliver(fut, rid=rid) -> None:
                payload = fut.result()
                if payload.get("kind") == "error":
                    reply(
                        {
                            "id": rid,
                            "ok": False,
                            "error": payload.get("error", protocol.UNAVAILABLE),
                            "detail": payload.get("detail", ""),
                        }
                    )
                else:
                    reply({"id": rid, "ok": True, "result": payload})

            future.add_done_callback(deliver)
            return True
        if op == "health":
            health = self.supervisor.health()
            health["protocol"] = protocol.PROTOCOL_VERSION
            health["address"] = protocol.format_address(self.address)
            reply({"id": rid, "ok": True, "result": health})
            return True
        if op == "drain":
            drained = self.supervisor.drain(request.get("timeout_s"))
            reply({"id": rid, "ok": True, "result": {"drained": drained}})
            return True
        if op == "shutdown":
            reply({"id": rid, "ok": True, "result": {"stopping": True}})
            self.request_shutdown(request.get("timeout_s"))
            return False
        reply(
            {
                "id": rid,
                "ok": False,
                "error": protocol.BAD_REQUEST,
                "detail": f"unknown op {op!r}",
            }
        )
        return True


def _validate_data_request(op: str, rid, request: dict) -> Optional[str]:
    """Shape check before anything reaches a worker; None when fine."""
    if not isinstance(rid, int):
        return "data requests need an integer 'id'"
    if op == "verify":
        for key in ("src", "tgt"):
            if not isinstance(request.get(key), str):
                return f"verify needs IR text in {key!r}"
    else:
        test = request.get("test")
        if not isinstance(test, dict):
            return "test op needs a 'test' object"
        if not isinstance(test.get("name"), str) or not isinstance(
            test.get("ir"), str
        ):
            return "test object needs 'name' and 'ir' strings"
    options = request.get("options")
    if options is not None and not isinstance(options, dict):
        return "'options' must be an object (VerifyOptions.to_json())"
    return None


# ---------------------------------------------------------------------------
# Daemon entry point
# ---------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="alive-serve",
        description="Long-lived translation-validation service "
        "(line-delimited JSON over a Unix or TCP socket).",
    )
    parser.add_argument(
        "--listen",
        default="unix:./alive-serve.sock",
        metavar="ADDR",
        help="unix:/path, /path, or host:port (default %(default)s)",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=128,
        help="outstanding requests before shedding with OVERLOADED",
    )
    parser.add_argument(
        "--query-cache",
        metavar="PATH",
        default=None,
        help="shared persistent solver-query cache (JSONL)",
    )
    parser.add_argument(
        "--cache-shards",
        type=int,
        default=8,
        metavar="N",
        help="split the query cache into N digest-routed shard files; "
        "each worker slot loads/appends only the shards it owns "
        "(1 = legacy single-file layout; existing files migrate "
        "automatically)",
    )
    parser.add_argument(
        "--conn-threads",
        type=int,
        default=4,
        help="bounded pool of request-handler threads shared by all "
        "connections (the IO loop itself is a single selector thread)",
    )
    parser.add_argument(
        "--max-connections",
        type=int,
        default=256,
        help="accepted-connection cap; clients over it are shed with "
        "OVERLOADED instead of exhausting descriptors/threads",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="default per-request verification timeout (seconds)",
    )
    parser.add_argument("--unroll", type=int, default=4)
    parser.add_argument(
        "--certify",
        action="store_true",
        help="require checkable UNSAT proofs (see --certify in alive-suite)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=2,
        help="dispatches per request before degrading to CRASH",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to wait for in-flight work on SIGTERM",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    options = VerifyOptions(
        unroll_factor=args.unroll,
        timeout_s=args.timeout,
        certify=args.certify,
    )
    config = ServeConfig(
        workers=max(1, args.workers),
        queue_limit=max(1, args.queue_limit),
        max_attempts=max(1, args.max_attempts),
        drain_timeout_s=args.drain_timeout,
        cache_enabled=args.query_cache is not None,
        cache_path=args.query_cache,
        cache_shards=max(1, args.cache_shards),
        default_options=options.to_json(),
    )
    try:
        address = protocol.parse_address(args.listen)
    except ValueError as exc:
        print(f"alive-serve: {exc}", file=sys.stderr)
        return 2

    server = ServeServer(
        address,
        config,
        conn_threads=max(1, args.conn_threads),
        max_connections=max(1, args.max_connections),
    ).start()

    def on_terminate(signum, _frame) -> None:
        logger.info(
            "signal %s: draining (timeout %.1fs) and shutting down",
            signal.Signals(signum).name,
            args.drain_timeout,
        )
        server.request_shutdown(args.drain_timeout)

    def on_hup(_signum, _frame) -> None:
        logger.info("health: %s", json.dumps(self_health(server)))
        if args.query_cache is not None:
            from repro.engine.qcache import QueryCache

            discarded = QueryCache(
                args.query_cache, shards=max(1, args.cache_shards)
            ).heal()
            logger.info(
                "query cache healed: %d corrupt entr%s discarded",
                discarded,
                "y" if discarded == 1 else "ies",
            )

    signal.signal(signal.SIGTERM, on_terminate)
    signal.signal(signal.SIGINT, on_terminate)
    if hasattr(signal, "SIGHUP"):
        signal.signal(signal.SIGHUP, on_hup)

    server.wait()
    logger.info("alive-serve stopped")
    return 0


def self_health(server: ServeServer) -> dict:
    return server.supervisor.health()


if __name__ == "__main__":
    sys.exit(main())
