"""Wire protocol for the verification service: line-delimited JSON.

One request or reply per ``\\n``-terminated UTF-8 JSON line.  The format
is deliberately boring — any language with a socket and a JSON parser is
a client — and deliberately defensive: a line over ``MAX_LINE_BYTES``,
a non-JSON line, or a JSON line of the wrong shape produces a structured
error *reply* (or a per-line quarantine), never a dead server.

Requests (client -> server)::

    {"op": "verify", "id": 1, "src": "<IR>", "tgt": "<IR>",
     "options": {...VerifyOptions.to_json()...}, "name": "...", "retries": 0,
     "certificates": "full"}

``certificates`` is optional.  ``"full"`` asks the server to ship every
field of each UNSAT proof certificate (query, digest, reason, lemma and
deletion counts, the full unsat core) in the reply's ``certificates``
list, so an auditing client can archive or re-check proofs; omitted or
any other value, the reply carries only the compact per-certificate
summary (validity + core size).
    {"op": "test", "id": 2, "test": {...UnitTest fields...},
     "options": {...}, "inject_bugs": true, "batch": 1, "retries": 0}
    {"op": "health"}   {"op": "drain"}   {"op": "shutdown"}

Replies (server -> client)::

    {"id": 1, "ok": true, "result": {...}}
    {"id": 1, "ok": false, "error": "OVERLOADED", "detail": "..."}

Replies to ``verify``/``test`` stream back in *completion* order, matched
to requests by ``id``; the client reassembles submission order.  Error
codes: ``OVERLOADED`` (queue full or circuit breaker open — back off and
retry), ``DRAINING`` (shutdown in progress), ``BAD_REQUEST`` (malformed
line or unknown op), ``UNAVAILABLE`` (drain deadline expired with the
request still in flight).
"""

from __future__ import annotations

import json
import socket
from typing import Iterator, Optional, Tuple, Union

PROTOCOL_VERSION = 1

#: Hard per-line cap (requests carry whole IR modules; 8 MiB is roomy
#: for any sane module and small enough to bound a hostile client).
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Error codes a reply may carry.
OVERLOADED = "OVERLOADED"
DRAINING = "DRAINING"
BAD_REQUEST = "BAD_REQUEST"
UNAVAILABLE = "UNAVAILABLE"


class ProtocolError(Exception):
    """A malformed frame (oversized, non-JSON, or wrong shape)."""


def encode_message(message: dict) -> bytes:
    """One JSON object as a wire frame (newline-terminated UTF-8)."""
    data = json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds MAX_LINE_BYTES")
    return data


def decode_message(line: bytes) -> dict:
    """Parse one frame; raises :class:`ProtocolError`, never ValueError."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("oversized frame")
    try:
        message = json.loads(line.decode("utf-8", errors="replace"))
    except ValueError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame is not a JSON object")
    return message


class LineReader:
    """Buffered newline-framed reader over a socket.

    Yields raw lines (without the trailing newline).  An overlong line
    raises :class:`ProtocolError` rather than buffering without bound.
    """

    def __init__(self, sock: socket.socket, chunk: int = 65536) -> None:
        self._sock = sock
        self._chunk = chunk
        self._buf = b""

    def readline(self) -> Optional[bytes]:
        """The next frame, or None on orderly EOF."""
        while True:
            nl = self._buf.find(b"\n")
            if nl >= 0:
                line, self._buf = self._buf[:nl], self._buf[nl + 1 :]
                return line
            if len(self._buf) > MAX_LINE_BYTES:
                raise ProtocolError("oversized frame")
            data = self._sock.recv(self._chunk)
            if not data:
                if self._buf:
                    # EOF mid-line: surface the torn tail as malformed.
                    line, self._buf = self._buf, b""
                    return line
                return None
            self._buf += data

    def __iter__(self) -> Iterator[bytes]:
        while True:
            line = self.readline()
            if line is None:
                return
            yield line


# ---------------------------------------------------------------------------
# Addresses: "unix:/path/to.sock", a bare filesystem path, or "host:port".
# ---------------------------------------------------------------------------

Address = Union[Tuple[str, str], Tuple[str, Tuple[str, int]]]


def parse_address(spec: str) -> Address:
    """``("unix", path)`` or ``("tcp", (host, port))`` from a spec string."""
    if spec.startswith("unix:"):
        return ("unix", spec[len("unix:") :])
    if spec.startswith("tcp:"):
        spec = spec[len("tcp:") :]
    if spec.startswith("/") or spec.startswith("."):
        return ("unix", spec)
    host, sep, port = spec.rpartition(":")
    if sep and port.isdigit():
        return ("tcp", (host or "127.0.0.1", int(port)))
    raise ValueError(
        f"bad address {spec!r}: want unix:/path, /path, or host:port"
    )


def format_address(address: Address) -> str:
    kind, where = address
    if kind == "unix":
        return f"unix:{where}"
    host, port = where
    return f"{host}:{port}"


def create_server_socket(address: Address, backlog: int = 64) -> socket.socket:
    kind, where = address
    if kind == "unix":
        import os

        try:
            os.unlink(where)
        except FileNotFoundError:
            pass
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(where)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(where)
    sock.listen(backlog)
    return sock


def connect(address: Address, timeout: Optional[float] = None) -> socket.socket:
    kind, where = address
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(where)
    sock.settimeout(None)
    return sock
