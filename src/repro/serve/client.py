"""Client library for the ``alive-serve`` daemon.

:class:`ServeClient` speaks the newline-framed JSON protocol over one
socket.  Data replies stream back in *completion* order; the client
matches them to requests by ``id`` and reassembles submission order, so
callers never observe reordering.  :meth:`ServeClient.submit_corpus`
keeps a bounded window of requests in flight and treats ``OVERLOADED`` /
``DRAINING`` replies as a back-off-and-retry signal, so a corpus run
rides out a shedding (circuit-breaker-open) server instead of failing.

Also a tiny admin CLI::

    python -m repro.serve.client ADDRESS health|drain|shutdown
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Union

from repro.refinement.check import VerifyOptions
from repro.serve import protocol
from repro.suite.runner import TestRecord
from repro.suite.unittests import UnitTest


class ServeError(RuntimeError):
    """A reply with ``ok: false`` that is not retryable."""

    def __init__(self, code: str, detail: str = "") -> None:
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail


#: Error codes that mean "back off and resubmit", not "give up".
RETRYABLE = (protocol.OVERLOADED, protocol.DRAINING)


def unittest_to_json(test: UnitTest) -> dict:
    """A :class:`UnitTest` as the wire-format ``test`` object."""
    return {
        "name": test.name,
        "ir": test.ir,
        "pipeline": list(test.pipeline),
        "bug_option": test.bug_option,
        "category": test.category,
        "buggy_target": test.buggy_target,
    }


class ServeClient:
    """One connection to an ``alive-serve`` daemon."""

    def __init__(
        self,
        address: Union[str, protocol.Address],
        connect_timeout: Optional[float] = 10.0,
    ) -> None:
        if isinstance(address, str):
            address = protocol.parse_address(address)
        self.address = address
        self._sock = protocol.connect(address, timeout=connect_timeout)
        self._reader = protocol.LineReader(self._sock)
        self._next_id = 0

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- plumbing ----------------------------------------------------------
    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _send(self, request: dict) -> None:
        self._sock.sendall(protocol.encode_message(request))

    def _recv(self) -> dict:
        line = self._reader.readline()
        if line is None:
            raise ServeError(protocol.UNAVAILABLE, "server closed the connection")
        return protocol.decode_message(line)

    def call(self, request: dict) -> dict:
        """One synchronous round-trip (admin ops, single requests).

        Only valid when no other requests are outstanding on this
        connection — replies are matched by arrival, not id, here.
        """
        request.setdefault("id", self._fresh_id())
        self._send(request)
        return self._recv()

    # -- data ops ----------------------------------------------------------
    def verify(
        self,
        src: str,
        tgt: str,
        options: Optional[VerifyOptions] = None,
        name: Optional[str] = None,
        retries: int = 0,
        max_wait_s: Optional[float] = 30.0,
        certificates: Optional[str] = None,
    ) -> dict:
        """Verify one IR pair; returns ``RefinementResult.to_json()``.

        ``certificates="full"`` asks the server to ship every field of
        each UNSAT proof certificate (query, digest, lemma/deletion
        counts, full core) instead of the compact validity summary.

        Retryable shedding replies are resubmitted with backoff for up to
        ``max_wait_s`` seconds; other errors raise :class:`ServeError`.
        """
        request = {"op": "verify", "src": src, "tgt": tgt, "retries": retries}
        if certificates is not None:
            request["certificates"] = certificates
        if options is not None:
            request["options"] = options.to_json()
        if name is not None:
            request["name"] = name
        started = time.monotonic()
        backoff = 0.05
        while True:
            reply = self.call(dict(request))
            if reply.get("ok"):
                return reply["result"]["result"]
            code = reply.get("error", protocol.UNAVAILABLE)
            if code not in RETRYABLE or (
                max_wait_s is not None
                and time.monotonic() - started > max_wait_s
            ):
                raise ServeError(code, reply.get("detail", ""))
            time.sleep(backoff)
            backoff = min(1.0, backoff * 2)

    def submit_corpus(
        self,
        tests: List[UnitTest],
        options: Optional[VerifyOptions] = None,
        inject_bugs: bool = True,
        batch: int = 1,
        retries: int = 0,
        window: int = 32,
        overload_backoff_s: float = 0.05,
    ) -> List[TestRecord]:
        """Stream a whole corpus through the service.

        Keeps up to ``window`` requests in flight, reassembles records in
        corpus order, backs off on shedding replies, and converts an
        ``UNAVAILABLE`` (drain expired under us) into a CRASH record so
        the returned list always has one record per test.
        """
        options_json = (options or VerifyOptions()).to_json()
        records: List[Optional[TestRecord]] = [None] * len(tests)
        to_send: Deque[int] = deque(range(len(tests)))
        pending: Dict[int, int] = {}  # wire id -> corpus index
        done = 0
        backoff = overload_backoff_s
        while done < len(tests):
            while to_send and len(pending) < max(1, window):
                idx = to_send.popleft()
                rid = self._fresh_id()
                self._send(
                    {
                        "op": "test",
                        "id": rid,
                        "test": unittest_to_json(tests[idx]),
                        "options": options_json,
                        "inject_bugs": inject_bugs,
                        "batch": batch,
                        "retries": retries,
                    }
                )
                pending[rid] = idx
            if not pending:
                time.sleep(backoff)
                backoff = min(1.0, backoff * 2)
                continue
            reply = self._recv()
            rid = reply.get("id")
            if rid not in pending:
                continue  # stray admin reply or duplicate; ignore
            idx = pending.pop(rid)
            if reply.get("ok"):
                backoff = overload_backoff_s
                records[idx] = TestRecord.from_json(reply["result"]["record"])
                done += 1
                continue
            code = reply.get("error", protocol.UNAVAILABLE)
            if code in RETRYABLE:
                to_send.appendleft(idx)
                time.sleep(backoff)
                backoff = min(1.0, backoff * 2)
                continue
            # Terminal error (BAD_REQUEST, UNAVAILABLE): keep the corpus
            # shape with a structured crash record.
            records[idx] = TestRecord.from_json(
                {
                    "test": tests[idx].name,
                    "category": tests[idx].category,
                    "verdicts": {"crash": 1},
                    "diagnostic": {
                        "type": code,
                        "message": reply.get("detail", ""),
                        "frames": [],
                    },
                }
            )
            done += 1
        return [r for r in records if r is not None]

    # -- admin ops ---------------------------------------------------------
    def health(self) -> dict:
        reply = self.call({"op": "health"})
        if not reply.get("ok"):
            raise ServeError(
                reply.get("error", protocol.UNAVAILABLE),
                reply.get("detail", ""),
            )
        return reply["result"]

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        request: dict = {"op": "drain"}
        if timeout_s is not None:
            request["timeout_s"] = timeout_s
        reply = self.call(request)
        return bool(reply.get("ok")) and bool(
            (reply.get("result") or {}).get("drained")
        )

    def shutdown(self, timeout_s: Optional[float] = None) -> None:
        request: dict = {"op": "shutdown"}
        if timeout_s is not None:
            request["timeout_s"] = timeout_s
        try:
            self.call(request)
        except ServeError:
            pass  # the server may close before the ack lands


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2 or argv[1] not in ("health", "drain", "shutdown"):
        print(
            "usage: python -m repro.serve.client ADDRESS health|drain|shutdown",
            file=sys.stderr,
        )
        return 2
    address, op = argv
    with ServeClient(address) as client:
        if op == "health":
            print(json.dumps(client.health(), indent=2, sort_keys=True))
        elif op == "drain":
            drained = client.drain()
            print(json.dumps({"drained": drained}))
            return 0 if drained else 1
        else:
            client.shutdown()
            print(json.dumps({"stopping": True}))
    return 0


if __name__ == "__main__":
    sys.exit(main())
