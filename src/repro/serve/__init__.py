"""`alive-serve`: a supervised, fault-tolerant verification service.

The batch CLI re-pays interpreter startup, corpus parse, and worker
spawn on every invocation; the paper's deployment model (validating the
whole LLVM test suite nightly, §8) and the superoptimizer / LLM-assisted
workflows in PAPERS.md both assume a verifier you can hammer with an
unbounded stream of queries.  This package turns the reproduction into
that long-lived daemon:

* :mod:`repro.serve.protocol` — the line-delimited JSON wire format and
  socket address handling (Unix and TCP);
* :mod:`repro.serve.supervisor` — the robustness core: a pool of
  persistent, pre-warmed worker processes with heartbeats, hang
  detection, SIGKILL recovery, per-request retry budgets, exponential
  restart backoff, and a circuit breaker that sheds load instead of
  queueing unboundedly;
* :mod:`repro.serve.server` — the socket daemon (``alive-serve``):
  accepts requests, streams verdicts back, handles SIGTERM/SIGHUP, and
  drains in-flight work under a deadline on shutdown;
* :mod:`repro.serve.client` — the client library (and a tiny
  ``python -m repro.serve.client`` admin CLI) used by the suite CLI's
  ``--server`` mode, the chaos tests, and the E12 benchmark.
"""

from repro.serve.supervisor import OverloadedError, ServeConfig, Supervisor

__all__ = ["OverloadedError", "ServeConfig", "Supervisor"]
