"""The refinement check (§5) and its query sequence (§5.3).

Given a (source, target) pair, we encode both functions over *shared*
input variables and check the final refinement formula of §5.2 by a
sequence of simpler exists-forall queries — the same decomposition the
paper uses to produce precise error messages and to help the solver:

1. a precondition is unsatisfiable (encoding bug / limitation),
2. the target triggers UB only when the source does,
3. the return/noreturn domains agree (unless the source is UB),
4. the target returns poison only when the source does,
5+6. the target's return value refines the source's (our per-reading
   undef encoding folds the paper's separate undef query into this one),
7. final memory refines.

Each query is solved by CEGAR over the source-side nondeterminism
(:mod:`repro.smt.exists_forall`); both verdicts are sound, and resource
exhaustion is reported as TIMEOUT / OOM, mirroring the paper's outcome
classes.
"""

from __future__ import annotations

import copy as _copy
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.memdf import STATS as MEMDF_STATS, analyze_memdf
from repro.analysis.relational import STATS as REL_STATS, analyze_relational
from repro.analysis.prescreen import Prescreener
from repro.engine import qcache
from repro.harness.deadline import Deadline, DeadlineExceeded
from repro.harness.faults import maybe_fault
from repro.ir.function import Function
from repro.ir.instructions import Alloca
from repro.ir.module import Module
from repro.ir.types import PointerType
from repro.ir.unroll import UnrollError, unroll_function
from repro.semantics.encoder import (
    CallRecord,
    EncodedFunction,
    EncodeError,
    _Encoder,
)
from repro.semantics.libfuncs import pair_class_of
from repro.semantics.memory import MemoryConfig, build_layout
from repro.semantics.value import SymAggregate, SymValue
from repro.smt.exists_forall import EFOutcome, EFResult, QuantVar, solve_exists_forall
from repro.smt.solver import CheckResult, ResourceLimits, SmtSolver
from repro.smt.terms import (
    FALSE,
    TRUE,
    BoolTerm,
    Term,
    bool_and,
    bool_implies,
    bool_not,
    bool_or,
    bool_var,
    bv_const,
    bv_eq,
    bv_ule,
    bv_var,
    fresh_name,
    substitute,
    term_vars,
)


class Verdict(Enum):
    CORRECT = "correct"
    INCORRECT = "incorrect"
    TIMEOUT = "timeout"
    OOM = "oom"
    UNSUPPORTED = "unsupported"
    APPROX = "approx"  # a counterexample touched an over-approximated feature
    EMPTY_PRE = "empty-pre"  # a precondition is unsatisfiable (check #1)
    CRASH = "crash"  # the validator itself failed; contained by the harness
    # An UNSAT the solver claimed but the independent proof checker
    # rejected (certify mode): never reported as VERIFIED.
    SOLVER_UNSOUND = "solver-unsound"


@dataclass(frozen=True)
class VerifyOptions:
    """Verification knobs mirroring the paper's command-line options."""

    unroll_factor: int = 4
    timeout_s: Optional[float] = 30.0
    max_conflicts: Optional[int] = None
    max_learned_lits: Optional[int] = 2_000_000
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    check_memory: bool = True
    max_ef_iterations: int = 32
    # Static-analysis prescreen (repro.analysis): discharge queries whose
    # outcome dataflow facts already prove, and fold known-constant bits
    # in the encoder before bit-blasting.  Sound both ways (it may only
    # prove, never refute); --no-prescreen ablates it.
    prescreen: bool = True
    # E-graph equality saturation (repro.egraph): the solver-ladder rung
    # between the prescreen and CEGAR.  Saturating the certified rewrite
    # rules can prove a query outright (psi == TRUE / phi == FALSE, no
    # SAT call) or shrink the terms fed to the bit-blaster.  Sound both
    # ways for the same reason the prescreen is: rules are exact
    # equivalences, so it may only prove, never refute.  --no-egraph
    # ablates it; the degradation ladder halves egraph_max_nodes on
    # TIMEOUT retries.
    egraph: bool = True
    egraph_max_nodes: int = 512
    egraph_max_iterations: int = 8
    # Witness pairing: when exactly one forall-variable is live in psi,
    # try mapping it onto each same-width free variable as a symbolic
    # witness candidate (both for the e-graph's seeded instantiations
    # and the CEGAR solver's seeds).  Sound — any total substitution is
    # a legitimate candidate, and failed candidates just fall through to
    # CEGAR.  Off reproduces the pre-egraph prescreen-only pipeline,
    # which is the baseline BENCH_egraph measures against.
    witness_pairing: bool = True
    # Memory-aware static analysis (repro.analysis.pointsto/memdf):
    # points-to provenance + store/load dataflow facts feeding the
    # R-alias-disjoint / R-load-forward / R-oob-ub prescreen rules, the
    # encoder's aliasing-case-split pruning, and the memory-refinement
    # block skip.  Prove-only and encoding-shrinking — never changes a
    # verdict; --no-memdf ablates it and the degradation ladder turns it
    # off under MEMOUT (the memo tables cost memory).
    memdf: bool = True
    # Relational analysis (repro.analysis.relational): product-CFG block
    # alignment + relational value numbering across the (src, tgt) pair.
    # Feeds the R-relational-equal prescreen rule, analysis-backed
    # witness seeds for the e-graph/CEGAR rungs (generalising the
    # lone-forall-var heuristic), and alignment-aware counterexample
    # notes.  Prove-only and seed-only — never changes a verdict;
    # --no-relational ablates it and the degradation ladder turns it off
    # under MEMOUT.
    relational: bool = True
    # Fallback for one PR: re-enable the superseded lone-forall-var
    # pairing heuristic alongside the relational seeds (parity-tested).
    # With relational=False the heuristic stays active regardless, so
    # --no-relational reproduces the PR 9 pipeline exactly.
    legacy_pairing: bool = False
    # Self-certifying mode (--certify): every UNSAT the solver stack
    # claims must carry a proof the independent RUP checker accepts; a
    # rejected proof downgrades the verdict to SOLVER_UNSOUND instead of
    # VERIFIED, and only certified UNSAT entries replay from the query
    # cache.
    certify: bool = False

    def limits(self) -> ResourceLimits:
        return ResourceLimits(
            timeout_s=self.timeout_s,
            max_conflicts=self.max_conflicts,
            max_learned_lits=self.max_learned_lits,
        )

    # -- wire format (repro.serve) ------------------------------------------
    def to_json(self) -> dict:
        """A JSON-serializable snapshot; the verification service ships
        options over its line-delimited protocol with this."""
        return {
            "unroll_factor": self.unroll_factor,
            "timeout_s": self.timeout_s,
            "max_conflicts": self.max_conflicts,
            "max_learned_lits": self.max_learned_lits,
            "memory": {
                "off_bits": self.memory.off_bits,
                "arg_block_bytes": self.memory.arg_block_bytes,
                "max_blocks": self.memory.max_blocks,
            },
            "check_memory": self.check_memory,
            "max_ef_iterations": self.max_ef_iterations,
            "prescreen": self.prescreen,
            "egraph": self.egraph,
            "egraph_max_nodes": self.egraph_max_nodes,
            "egraph_max_iterations": self.egraph_max_iterations,
            "witness_pairing": self.witness_pairing,
            "memdf": self.memdf,
            "relational": self.relational,
            "legacy_pairing": self.legacy_pairing,
            "certify": self.certify,
        }

    @classmethod
    def from_json(cls, data: dict) -> "VerifyOptions":
        """Inverse of :meth:`to_json`; unknown keys are ignored and missing
        keys take the dataclass defaults, so old clients keep working."""
        defaults = cls()
        mem_data = data.get("memory") or {}
        memory = MemoryConfig(
            off_bits=int(mem_data.get("off_bits", defaults.memory.off_bits)),
            arg_block_bytes=int(
                mem_data.get("arg_block_bytes", defaults.memory.arg_block_bytes)
            ),
            max_blocks=int(mem_data.get("max_blocks", defaults.memory.max_blocks)),
        )
        timeout_s = data.get("timeout_s", defaults.timeout_s)
        max_conflicts = data.get("max_conflicts", defaults.max_conflicts)
        max_learned = data.get("max_learned_lits", defaults.max_learned_lits)
        return cls(
            unroll_factor=int(data.get("unroll_factor", defaults.unroll_factor)),
            timeout_s=None if timeout_s is None else float(timeout_s),
            max_conflicts=None if max_conflicts is None else int(max_conflicts),
            max_learned_lits=None if max_learned is None else int(max_learned),
            memory=memory,
            check_memory=bool(data.get("check_memory", defaults.check_memory)),
            max_ef_iterations=int(
                data.get("max_ef_iterations", defaults.max_ef_iterations)
            ),
            prescreen=bool(data.get("prescreen", defaults.prescreen)),
            egraph=bool(data.get("egraph", defaults.egraph)),
            egraph_max_nodes=int(
                data.get("egraph_max_nodes", defaults.egraph_max_nodes)
            ),
            egraph_max_iterations=int(
                data.get("egraph_max_iterations", defaults.egraph_max_iterations)
            ),
            witness_pairing=bool(
                data.get("witness_pairing", defaults.witness_pairing)
            ),
            memdf=bool(data.get("memdf", defaults.memdf)),
            relational=bool(data.get("relational", defaults.relational)),
            legacy_pairing=bool(
                data.get("legacy_pairing", defaults.legacy_pairing)
            ),
            certify=bool(data.get("certify", defaults.certify)),
        )


@dataclass
class RefinementResult:
    verdict: Verdict
    failed_check: Optional[str] = None
    counterexample: Dict[str, object] = field(default_factory=dict)
    approx_features: List[str] = field(default_factory=list)
    unsupported_feature: Optional[str] = None
    elapsed_s: float = 0.0
    # Degradation-ladder steps taken before this verdict was reached.
    degradations: List[str] = field(default_factory=list)
    # Structured crash record when the harness contained a failure.
    diagnostic: Optional[Dict[str, object]] = None
    # Certify mode: proof certificates gathered across the query sequence
    # (one per UNSAT answer) and human-readable notes such as the unsat-
    # core classification of a confirmed counterexample.
    certificates: List[object] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    # Wall-clock seconds per pipeline phase (prescreen/egraph/encode/
    # solve), for perf attribution; never part of --verdicts-out.
    phase_times: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.verdict is Verdict.CORRECT

    def to_json(self, full_certificates: bool = False) -> dict:
        """A JSON-serializable summary for the verification service.

        Counterexample values may be rich objects (symbolic aggregates);
        anything that is not already a JSON scalar is stringified.  Proof
        certificates default to a summary (validity + core size): the
        full record would dwarf the verdict.  ``full_certificates=True``
        (the serve protocol's ``certificates=full`` request field) ships
        every :class:`repro.sat.proof.Certificate` field — query name,
        CNF digest, rejection reason, lemma/deletion/checked counts and
        the unsat-core literals — so a client can audit which queries
        were proof-checked and reconstruct core-based diagnostics.
        """

        def scalar(v: object) -> object:
            return v if isinstance(v, (int, float, str, bool, type(None))) else str(v)

        def cert_json(c: object) -> dict:
            out = {
                "valid": bool(getattr(c, "valid", False)),
                "core_lits": len(getattr(c, "core", ()) or ()),
            }
            if full_certificates:
                out.update(
                    {
                        "query": getattr(c, "query", ""),
                        "digest": getattr(c, "digest", ""),
                        "reason": getattr(c, "reason", ""),
                        "lemmas": int(getattr(c, "lemmas", 0)),
                        "deletions": int(getattr(c, "deletions", 0)),
                        "checked_lemmas": int(getattr(c, "checked_lemmas", 0)),
                        "core": [int(l) for l in getattr(c, "core", ()) or ()],
                    }
                )
            return out

        return {
            "verdict": self.verdict.value,
            "failed_check": self.failed_check,
            "counterexample": {k: scalar(v) for k, v in self.counterexample.items()},
            "approx_features": list(self.approx_features),
            "unsupported_feature": self.unsupported_feature,
            "elapsed_s": self.elapsed_s,
            "degradations": list(self.degradations),
            "diagnostic": self.diagnostic,
            "certificates": [cert_json(c) for c in self.certificates],
            "notes": list(self.notes),
            "phase_times": {k: round(v, 6) for k, v in self.phase_times.items()},
        }

    def describe(self) -> str:
        if self.verdict is Verdict.CORRECT:
            text = "Transformation seems to be correct!"
            certified = [c for c in self.certificates if getattr(c, "valid", False)]
            if certified:
                text += f" ({len(certified)} UNSAT answers certified)"
            return text
        if self.verdict is Verdict.SOLVER_UNSOUND:
            reason = (self.diagnostic or {}).get("reason", "proof rejected")
            return (
                "SOLVER UNSOUND: the solver claimed UNSAT "
                f"(check: {self.failed_check}) but the independent proof "
                f"checker rejected the certificate ({reason})"
            )
        if self.verdict is Verdict.INCORRECT:
            lines = [
                f"Transformation doesn't verify! (check: {self.failed_check})",
                "Counterexample:",
            ]
            for name in sorted(self.counterexample):
                lines.append(f"  {name} = {self.counterexample[name]}")
            lines.extend(self.notes)
            return "\n".join(lines)
        if self.verdict is Verdict.APPROX:
            feats = ", ".join(self.approx_features) or "unknown"
            return f"Couldn't verify: depends on over-approximated features ({feats})"
        if self.verdict is Verdict.UNSUPPORTED:
            return f"Skipped: unsupported feature ({self.unsupported_feature})"
        if self.verdict is Verdict.CRASH:
            what = (self.diagnostic or {}).get("type", "unknown")
            return f"Validator crashed ({what}); contained by the harness"
        return f"Gave up: {self.verdict.value}"


def verify_refinement(
    src: Function,
    tgt: Function,
    module_src: Module,
    module_tgt: Optional[Module] = None,
    options: Optional[VerifyOptions] = None,
) -> RefinementResult:
    """Check that ``tgt`` refines ``src`` (the core Alive2 operation).

    ``options.timeout_s`` bounds the *whole job*: a single
    :class:`Deadline` covers deepcopy, unroll, encode, and every solver
    query, with cooperative checkpoints inside the unroller and the
    encoder.  A job whose pre-solver phases exceed the budget returns
    ``Verdict.TIMEOUT`` instead of running unbounded.
    """
    options = options or VerifyOptions()
    start = time.monotonic()
    deadline = Deadline.start(options.timeout_s)
    module_tgt = module_tgt if module_tgt is not None else module_src

    def done(result: RefinementResult) -> RefinementResult:
        result.elapsed_s = time.monotonic() - start
        return result

    try:
        return done(
            _verify_with_deadline(src, tgt, module_src, module_tgt, options, deadline)
        )
    except DeadlineExceeded as exc:
        return done(RefinementResult(Verdict.TIMEOUT, failed_check=exc.phase))


def _verify_with_deadline(
    src: Function,
    tgt: Function,
    module_src: Module,
    module_tgt: Module,
    options: VerifyOptions,
    deadline: Deadline,
) -> RefinementResult:
    def done(result: RefinementResult) -> RefinementResult:
        return result

    if src.is_declaration or tgt.is_declaration:
        return done(
            RefinementResult(Verdict.UNSUPPORTED, unsupported_feature="declaration")
        )
    if [(
        a.type
    ) for a in src.args] != [a.type for a in tgt.args] or src.return_type != tgt.return_type:
        return done(
            RefinementResult(
                Verdict.UNSUPPORTED, unsupported_feature="signature-mismatch"
            )
        )

    # Unroll copies up front so both functions share one memory layout.
    # Everything from deepcopy through encoding counts as the "encode"
    # phase for per-phase attribution.
    encode_start = time.monotonic()
    try:
        maybe_fault("unroll", deadline=deadline, unroll_factor=options.unroll_factor)
        deadline.check("deepcopy")
        src_unrolled = _copy.deepcopy(src)
        deadline.check("deepcopy")
        tgt_unrolled = _copy.deepcopy(tgt)
        unroll_function(src_unrolled, options.unroll_factor, deadline=deadline)
        unroll_function(tgt_unrolled, options.unroll_factor, deadline=deadline)
    except UnrollError:
        return done(
            RefinementResult(Verdict.UNSUPPORTED, unsupported_feature="irreducible-loop")
        )
    pointer_args = [a.name for a in src.args if isinstance(a.type, PointerType)]
    num_allocas = max(
        sum(1 for i in src_unrolled.instructions() if isinstance(i, Alloca)),
        sum(1 for i in tgt_unrolled.instructions() if isinstance(i, Alloca)),
    )
    globals_ = dict(module_src.globals)
    globals_.update(module_tgt.globals)
    try:
        maybe_fault("encode", deadline=deadline, unroll_factor=options.unroll_factor)
        deadline.check("layout")
        layout = build_layout(globals_, pointer_args, num_allocas, options.memory)
        memdf_src = memdf_tgt = None
        if options.memdf:
            deadline.check("memdf")
            memdf_src = analyze_memdf(src_unrolled, layout)
            memdf_tgt = analyze_memdf(tgt_unrolled, layout)
        enc_src = _Encoder(
            src_unrolled,
            module_src,
            "src",
            layout,
            deadline=deadline,
            fold_known_bits=options.prescreen,
            memdf=memdf_src,
        ).encode()
        enc_tgt = _Encoder(
            tgt_unrolled,
            module_tgt,
            "tgt",
            layout,
            deadline=deadline,
            fold_known_bits=options.prescreen,
            memdf=memdf_tgt,
        ).encode()
    except EncodeError as exc:
        return done(
            RefinementResult(Verdict.UNSUPPORTED, unsupported_feature=exc.feature)
        )
    except ValueError as exc:
        return done(
            RefinementResult(Verdict.UNSUPPORTED, unsupported_feature=str(exc))
        )

    maybe_fault("solve", deadline=deadline, unroll_factor=options.unroll_factor)
    deadline.check("solve")
    relational = None
    if options.relational:
        deadline.check("relational")
        try:
            relational = analyze_relational(
                src_unrolled, tgt_unrolled, memdf_src, memdf_tgt
            )
        except (RecursionError, OverflowError):
            relational = None  # prove-only layer: degrade silently
    prescreener = (
        Prescreener(
            src_unrolled, tgt_unrolled, memdf_src, memdf_tgt, relational
        )
        if options.prescreen
        else None
    )
    checker = _RefinementChecker(
        enc_src,
        enc_tgt,
        options,
        deadline=deadline,
        prescreener=prescreener,
        memdf_src=memdf_src,
        memdf_tgt=memdf_tgt,
        relational=relational,
    )
    checker.phase_times["encode"] = time.monotonic() - encode_start
    return done(checker.run())


class _RefinementChecker:
    def __init__(
        self,
        src: EncodedFunction,
        tgt: EncodedFunction,
        options: VerifyOptions,
        deadline: Optional[Deadline] = None,
        prescreener: Optional[Prescreener] = None,
        memdf_src=None,
        memdf_tgt=None,
        relational=None,
    ) -> None:
        self.src = src
        self.tgt = tgt
        self.options = options
        self.prescreener = prescreener
        self.memdf_src = memdf_src
        self.memdf_tgt = memdf_tgt
        self.relational = relational if options.relational else None
        # The whole-job deadline; standalone construction (benchmarks)
        # falls back to a fresh budget from the options.
        self.deadline = deadline if deadline is not None else Deadline.start(
            options.timeout_s
        )
        # Rename the source's nondeterminism for the inner (forall) copy.
        self._prime_map: Dict[str, Term] = {}
        self.forall_vars: List[QuantVar] = []
        for qv in src.nondet_all:
            primed = f"{qv.name}'"
            self.forall_vars.append(QuantVar(primed, qv.width))
            if qv.width == 0:
                self._prime_map[qv.name] = bool_var(primed)
            else:
                self._prime_map[qv.name] = bv_var(primed, qv.width)
        self.pairing_src, self.pairing_tgt, self.tgt_call_ub = _pair_calls(
            src, tgt
        )
        self.env_consistency = self._cross_copy_axioms()
        self._rel_seed_pairs = 0
        self.seeds = self._build_seeds()
        # Certify mode: certificates and notes gathered across the query
        # sequence, attached to whatever result ends the run.
        self._certs: List[object] = []
        self._notes: List[str] = []
        # Per-phase wall clock; "encode" is filled in by the caller.
        self.phase_times: Dict[str, float] = {
            "prescreen": 0.0,
            "egraph": 0.0,
            "solve": 0.0,
        }
        # The e-graph rung: bounded equality saturation between the
        # prescreen and CEGAR.  The deadline threads through so a slow
        # saturation can never outlive the job budget.
        self.simplifier = None
        if options.egraph:
            from repro.egraph.simplify import EgraphSimplifier

            self.simplifier = EgraphSimplifier(
                max_nodes=options.egraph_max_nodes,
                max_iterations=options.egraph_max_iterations,
                should_stop=self.deadline.expired,
            )
        self.union_seeds = self._build_union_seeds()

    def _attach(self, result: RefinementResult) -> RefinementResult:
        result.certificates = list(self._certs)
        result.phase_times = {
            k: v for k, v in self.phase_times.items() if v > 0.0
        }
        notes = list(self._notes)
        if result.phase_times:
            timing = " ".join(
                f"{k}={result.phase_times[k] * 1000:.1f}ms"
                for k in ("prescreen", "egraph", "encode", "solve")
                if k in result.phase_times
            )
            notes.append(f"phase-times: {timing}")
        result.notes = notes
        return result

    def _reject_unsound(
        self, check_name: str, bad_certs: List[object]
    ) -> RefinementResult:
        """A claimed UNSAT whose proof the checker rejected: report the
        solver, not the transformation."""
        cert = bad_certs[0]
        return self._attach(
            RefinementResult(
                Verdict.SOLVER_UNSOUND,
                failed_check=check_name,
                diagnostic={
                    "type": "solver-unsound",
                    "reason": getattr(cert, "reason", "proof rejected"),
                    "query": getattr(cert, "query", "?"),
                    "digest": getattr(cert, "digest", ""),
                    "rejected": len(bad_certs),
                },
            )
        )

    def _cross_copy_axioms(self) -> BoolTerm:
        """Environment consistency between the two source copies.

        Unknown functions are *functions*: calling f on equal inputs yields
        equal outputs.  The refinement formula re-quantifies the source's
        nondeterminism on its right-hand side, so without these axioms the
        re-chosen execution could pretend the environment answered
        differently — masking bugs like 'load of a call-clobbered global
        replaced by a constant' (§8.5's escaped-to-global tweak).
        """
        axioms: List[BoolTerm] = []
        for c in self.src.calls:
            # Relate call c in the original copy with the same call in the
            # primed copy; their arguments are syntactically the primed
            # versions of each other.
            same_inputs = TRUE
            for arg in c.args:
                arg_primed_expr = self._prime(arg.expr)
                arg_primed_poison = self._prime(arg.poison)
                same_poison = bool_not(
                    bool_or(
                        bool_and(arg.poison, bool_not(arg_primed_poison)),
                        bool_and(bool_not(arg.poison), arg_primed_poison),
                    )
                )
                same_inputs = bool_and(
                    same_inputs,
                    bool_not(arg.varies),
                    same_poison,
                    bool_or(arg.poison, bv_eq(arg.expr, arg_primed_expr)),
                )
            same_outputs = TRUE
            if c.result is not None:
                primed_poison = self._prime(c.result.poison)
                same_outputs = bool_and(
                    same_outputs,
                    bool_not(
                        bool_or(
                            bool_and(c.result.poison, bool_not(primed_poison)),
                            bool_and(bool_not(c.result.poison), primed_poison),
                        )
                    ),
                    bool_or(
                        c.result.poison,
                        bv_eq(c.result.expr, self._prime(c.result.expr)),
                    ),
                )
            for (bid, off), (v_name, p_name) in c.havoc.items():
                value = bv_var(v_name, 8)
                poison = bool_var(p_name)
                primed_value = self._prime(value)
                primed_poison = self._prime(poison)
                same_outputs = bool_and(
                    same_outputs,
                    bool_not(
                        bool_or(
                            bool_and(poison, bool_not(primed_poison)),
                            bool_and(bool_not(poison), primed_poison),
                        )
                    ),
                    bool_or(poison, bv_eq(value, primed_value)),
                )
            if same_outputs is not TRUE:
                axioms.append(bool_implies(same_inputs, same_outputs))
        return bool_and(*axioms) if axioms else TRUE

    def _build_seeds(self) -> List[Dict[str, Term]]:
        """Symbolic instantiations for the source-side universals.

        Three heuristics (all sound — any instantiation of a universal is):

        * *match*: pair each source nondet variable with the target
          variable of the same origin (same argument's undef expansion,
          same freeze/call site) — the analogue of the paper's syntactic
          instantiation trick (§3.3);
        * *identity*: reuse the outer existential copy of the source's
          own nondeterminism;
        * *defined*: send argument-undef expansions to the argument's
          defined value.
        """

        def var_term(name: str, width: int) -> Term:
            return bool_var(name) if width == 0 else bv_var(name, width)

        tgt_by_origin: Dict[str, List[Tuple[str, int]]] = {}
        for qv in self.tgt.nondet_all:
            origin = self.tgt.origin.get(qv.name)
            if origin is not None:
                tgt_by_origin.setdefault(origin, []).append((qv.name, qv.width))

        from repro.ir.fpformat import float_to_bits
        from repro.ir.types import FLOAT_TYPES
        import math

        def nan_const(width: int) -> Optional[Term]:
            for fmt in FLOAT_TYPES.values():
                if fmt.bit_width == width:
                    return bv_const(float_to_bits(math.nan, fmt), width)
            return None

        # The target's scalar return expression: the natural instantiation
        # for NaN-payload variables in identity folds (fmul x, 1.0 -> x).
        tgt_ret_expr = None
        if isinstance(self.tgt.ret_value, SymValue):
            tgt_ret_expr = self.tgt.ret_value.expr

        match_seed: Dict[str, Term] = {}
        match_last_seed: Dict[str, Term] = {}
        identity_seed: Dict[str, Term] = {}
        defined_seed: Dict[str, Term] = {}
        origin_position: Dict[str, int] = {}
        for qv in self.src.nondet_all:
            primed = f"{qv.name}'"
            identity_seed[primed] = var_term(qv.name, qv.width)
            origin = self.src.origin.get(qv.name)
            if origin is None:
                continue
            # Pair positionally: the i-th source variable of an origin maps
            # to the i-th target variable of the same origin (so identical
            # code maps to syntactically identical formulas).
            pos = origin_position.get(origin, 0)
            origin_position[origin] = pos + 1
            hits = tgt_by_origin.get(origin, [])
            if not hits and origin.rsplit("_", 1)[-1].isdigit():
                # A call-site origin with no positional twin (the target
                # deduplicated the call): fall back to any call site of the
                # same callee, which is exactly the dedup justification.
                prefix = origin.rsplit("_", 1)[0]
                for other, entries in tgt_by_origin.items():
                    if other.rsplit("_", 1)[0] == prefix and entries:
                        hits = entries
                        break
            hit = hits[min(pos, len(hits) - 1)] if hits else None
            if hit is not None and hit[1] == qv.width:
                match_seed[primed] = var_term(hit[0], qv.width)
            # Positional pairing maps same-site readings onto each other,
            # but value flow can connect a source reading to a *different*
            # use site in the target — e.g. a store-to-load forward makes
            # the source return its store-site reading while the target
            # returns its ret-site reading.  Pair every reading with the
            # target's last reading of the same origin as a second guess.
            last = hits[-1] if hits else None
            if last is not None and last[1] == qv.width:
                match_last_seed[primed] = var_term(last[0], qv.width)
            if origin.startswith("argundef_") and qv.width > 0:
                arg = origin[len("argundef_") :]
                defined_seed[primed] = bv_var(f"arg_{arg}", qv.width)
                match_seed.setdefault(primed, defined_seed[primed])
                match_last_seed.setdefault(primed, defined_seed[primed])
            if origin.startswith(("fpnan_", "nanbits_")) and qv.width > 0:
                # These variables are constrained to be NaN patterns; a zero
                # completion would falsify the precondition and void the
                # whole seed, so default them to the canonical NaN, and try
                # tracking the target's return bits.
                nan = nan_const(qv.width)
                if nan is None:
                    continue
                value: Term = nan
                if tgt_ret_expr is not None and tgt_ret_expr.width == qv.width:
                    # Track the target's return bits when they are a NaN
                    # (otherwise keep the canonical pattern so the NaN
                    # constraint — and thus the whole seed — stays alive).
                    from repro.semantics import softfloat as sf
                    from repro.smt.terms import bv_ite

                    for fmt in FLOAT_TYPES.values():
                        if fmt.bit_width == qv.width:
                            value = bv_ite(
                                sf.fp_is_nan(fmt, tgt_ret_expr), tgt_ret_expr, nan
                            )
                            break
                for seed in (
                    match_seed,
                    match_last_seed,
                    identity_seed,
                    defined_seed,
                ):
                    if primed not in seed:
                        seed[primed] = value
        seeds = [match_seed, identity_seed, defined_seed]
        if match_last_seed and match_last_seed != match_seed:
            seeds.insert(1, match_last_seed)
        # Relational seed: same positional pairing, but *across renamed
        # registers* — the relational analysis pairs src/tgt nondet sites
        # (freezes with congruent operands) whose registers the optimizer
        # renamed, which the same-origin match above cannot see.
        omap = (
            self.relational.origin_map() if self.relational is not None else {}
        )
        if omap:
            translated: Dict[str, Term] = {}
            position: Dict[str, int] = {}
            for qv in self.src.nondet_all:
                origin = self.src.origin.get(qv.name)
                if origin is None or origin not in omap:
                    continue
                pos = position.get(origin, 0)
                position[origin] = pos + 1
                hits = tgt_by_origin.get(omap[origin], [])
                hit = hits[min(pos, len(hits) - 1)] if hits else None
                if hit is not None and hit[1] == qv.width:
                    translated[f"{qv.name}'"] = var_term(hit[0], qv.width)
            if translated:
                relational_seed = dict(match_seed)
                relational_seed.update(translated)
                if relational_seed not in seeds:
                    seeds.insert(0, relational_seed)
                self._rel_seed_pairs = len(translated)
                REL_STATS.seed_pairs += len(translated)
        return [s for s in seeds if s]

    def _build_union_seeds(self) -> List[Tuple[Term, Term]]:
        """Term-level (src, tgt) equalities the e-graph may assume.

        The relational analysis marks a congruent register pair
        *unconditional* when its derivation is purely structural over
        shared inputs — no load forwarding, freeze pairing, phi matching
        or call adoption, whose claims only hold under the witness.  If
        additionally neither encoded term mentions a nondeterministic
        reading (so the forall-copy renaming is a no-op on both), the two
        terms are semantically equal functions of the shared argument and
        global variables, and merging them in the e-graph is ordinary
        ground congruence closure: verdict-sound in every query.
        """
        if self.relational is None or self.simplifier is None:
            return []
        src_nondet = {qv.name for qv in self.src.nondet_all}
        tgt_nondet = {qv.name for qv in self.tgt.nondet_all}
        out: List[Tuple[Term, Term]] = []
        seen = set()
        for s_name, t_name in self.relational.unconditional_pairs():
            sv = self.src.regs.get(s_name)
            tv = self.tgt.regs.get(t_name)
            if not isinstance(sv, SymValue) or not isinstance(tv, SymValue):
                continue  # aggregates: element seeds not worth the churn
            for a, b in ((sv.expr, tv.expr), (sv.poison, tv.poison)):
                if a == b or (a, b) in seen:
                    continue  # identical terms: the merge is a no-op
                if term_vars(a) & src_nondet or term_vars(b) & tgt_nondet:
                    continue
                seen.add((a, b))
                out.append((a, b))
                if len(out) >= 32:
                    return out
        return out

    def _prime(self, term: Term) -> Term:
        return substitute(term, self._prime_map)

    def _limits(self) -> ResourceLimits:
        timeout = self.deadline.remaining()
        return ResourceLimits(
            timeout_s=timeout,
            max_conflicts=self.options.max_conflicts,
            max_learned_lits=self.options.max_learned_lits,
        )

    # -- the query sequence (§5.3) ------------------------------------------------
    def run(self) -> RefinementResult:
        src, tgt = self.src, self.tgt
        pre_src = bool_and(src.pre, bool_not(src.sink), self.pairing_src)
        pre_tgt = bool_and(
            tgt.pre, bool_not(tgt.sink), self.pairing_tgt, self.pairing_src
        )
        ub_tgt = bool_or(tgt.ub, self.tgt_call_ub)

        # Check 1: preconditions must be satisfiable.
        sat_check = self._is_satisfiable(bool_and(pre_src, pre_tgt))
        if sat_check is not None:
            return sat_check

        phi_base = bool_and(pre_src, pre_tgt)
        pre_src_primed = self._prime(pre_src)
        ub_src_primed = self._prime(src.ub)

        # Check 2: target is UB only when the source is.
        result = self._query(
            "ub",
            phi=bool_and(phi_base, ub_tgt),
            psi=bool_and(pre_src_primed, ub_src_primed),
        )
        if result is not None:
            return result

        # Check 3: return domain (incl. noreturn) matches unless source is UB.
        domains_agree = bool_and(
            bool_not(
                bool_or(
                    bool_and(self._prime(src.ret_domain), bool_not(tgt.ret_domain)),
                    bool_and(bool_not(self._prime(src.ret_domain)), tgt.ret_domain),
                )
            ),
            bool_not(
                bool_or(
                    bool_and(self._prime(src.noreturn), bool_not(tgt.noreturn)),
                    bool_and(bool_not(self._prime(src.noreturn)), tgt.noreturn),
                )
            ),
        )
        result = self._query(
            "return-domain",
            phi=bool_and(phi_base, bool_not(ub_tgt)),
            psi=bool_and(
                pre_src_primed, bool_or(ub_src_primed, domains_agree)
            ),
        )
        if result is not None:
            return result

        # Checks 4-6: the return value refines.
        if src.ret_value is not None and tgt.ret_value is not None:
            # Check 4 (separately reported): poison refinement.
            tgt_poison = _value_poison(tgt.ret_value)
            src_poison_primed = self._prime(_value_poison(src.ret_value))
            result = self._query(
                "return-poison",
                phi=bool_and(phi_base, bool_not(ub_tgt), tgt.ret_domain, tgt_poison),
                psi=bool_and(
                    pre_src_primed,
                    bool_or(
                        ub_src_primed,
                        bool_and(self._prime(src.ret_domain), src_poison_primed),
                    ),
                ),
            )
            if result is not None:
                return result

            # Checks 5+6: value refinement (covers undef per-reading).
            refines = self._prime_refines_value(src.ret_value, tgt.ret_value)
            result = self._query(
                "return-value",
                phi=bool_and(phi_base, bool_not(ub_tgt), tgt.ret_domain),
                psi=bool_and(
                    pre_src_primed,
                    bool_or(
                        ub_src_primed,
                        bool_and(self._prime(src.ret_domain), refines),
                    ),
                ),
            )
            if result is not None:
                return result

        # Check 7: memory refinement over caller-visible blocks.  The
        # R-alias-disjoint prescreen rule runs first: when both sides'
        # clobber sets avoid every caller-visible writable block, the
        # check holds without building a single byte-comparison clause.
        if self.options.check_memory:
            if self.prescreener is not None and self.prescreener.screen_memory(
                self.src, self.tgt
            ):
                mem_ref = TRUE
            else:
                mem_ref = self._memory_refines()
            if mem_ref is not TRUE:
                result = self._query(
                    "memory",
                    phi=bool_and(phi_base, bool_not(ub_tgt), tgt.ret_domain),
                    psi=bool_and(
                        pre_src_primed,
                        bool_or(
                            ub_src_primed,
                            bool_and(self._prime(src.ret_domain), mem_ref),
                        ),
                    ),
                )
                if result is not None:
                    return result

        return self._attach(RefinementResult(Verdict.CORRECT))

    # -- helpers ----------------------------------------------------------------------
    @staticmethod
    def _collect_var_terms(term: Term) -> List[Term]:
        """Every distinct variable term in ``term``, first-occurrence order."""
        seen = set()
        out: List[Term] = []
        stack = [term]
        while stack:
            t = stack.pop()
            if t in seen:
                continue
            seen.add(t)
            if t.op == "var":
                out.append(t)
            else:
                stack.extend(reversed(t.args))
        return out

    def _seeded_psis(self, psi: BoolTerm) -> List[BoolTerm]:
        """ψ under each symbolic seed, universals completed with zeros.

        Mirrors :func:`solve_exists_forall`'s seed handling: a seed is a
        witness-function candidate N := f(O), so if any substituted ψ is
        a tautology the ∀-obligation holds for every candidate O and the
        e-graph rung may discharge the query without a solver.
        """
        names = term_vars(psi)
        relevant = [qv for qv in self.forall_vars if qv.name in names]
        if not relevant:
            return []

        def zero(qv: QuantVar) -> Term:
            return FALSE if qv.width == 0 else bv_const(0, qv.width)

        out: List[BoolTerm] = []
        for seed in list(self.seeds) + self._query_seeds(psi):
            if not any(qv.name in seed for qv in relevant):
                continue
            mapping = {qv.name: seed.get(qv.name, zero(qv)) for qv in relevant}
            out.append(substitute(psi, mapping))
        return out

    def _query_seeds(self, psi: BoolTerm) -> List[Dict[str, Term]]:
        """Per-query witness candidates from the active pairing mechanism.

        With the relational analysis on, the analysis-backed generalised
        pairing replaces the PR 7 lone-forall-var heuristic; the old
        heuristic stays reachable behind ``VerifyOptions.legacy_pairing``
        for one PR (parity-asserted in tests) and remains the default
        whenever the analysis is off, so ``--no-relational`` reproduces
        the previous pipeline exactly.
        """
        seeds: List[Dict[str, Term]] = []
        if self.relational is not None:
            seeds.extend(self._relational_pairing_seeds(psi))
            if self.options.legacy_pairing:
                seeds.extend(self._pairing_seeds(psi))
        else:
            seeds.extend(self._pairing_seeds(psi))
        return seeds

    def _relational_pairing_seeds(self, psi: BoolTerm) -> List[Dict[str, Term]]:
        """Analysis-backed witness candidates for the live ∀-vars of ψ.

        Generalises ``_pairing_seeds`` in two ways: it handles *any*
        small number of live ∀-vars (one single-var candidate seed per
        live var plus one combined seed, not just the lone-var case),
        and it ranks candidate free variables by the relational origin
        pairing — a tgt nondet reading whose site the analysis paired
        with the src reading's site comes first.  Every candidate is a
        total substitution of universals, hence sound.
        """
        if not self.options.witness_pairing:
            return []
        names = term_vars(psi)
        relevant = [qv for qv in self.forall_vars if qv.name in names]
        if not relevant or len(relevant) > 4:
            return []
        forall_names = {q.name for q in self.forall_vars}
        frees = [
            free
            for free in self._collect_var_terms(psi)
            if free.payload not in forall_names
        ]
        omap = self.relational.origin_map()
        out: List[Dict[str, Term]] = []
        combined: Dict[str, Term] = {}
        for qv in relevant:
            base = qv.name[:-1] if qv.name.endswith("'") else qv.name
            src_origin = self.src.origin.get(base)
            want = omap.get(src_origin, src_origin)
            candidates = [f for f in frees if f.width == qv.width]
            if want is not None:
                candidates.sort(
                    key=lambda f: 0 if self.tgt.origin.get(f.payload) == want else 1
                )
            for free in candidates[:8]:
                out.append({qv.name: free})
            if candidates:
                combined[qv.name] = candidates[0]
        if len(combined) > 1:
            out.append(combined)
        return out[:24]

    def _pairing_seeds(self, psi: BoolTerm) -> List[Dict[str, Term]]:
        """Witness candidates pairing a lone ∀-var with ψ's free variables.

        A ∀ undef read usually matches the *other* side's nondet read,
        but the CEGAR seeds pair reads positionally across the whole
        function and can miss when only a few survive into ψ.  Mapping
        the lone ∀-var onto each same-width free variable of ψ directly
        is always a sound candidate (any total substitution of the
        ∀-vars is), and on equivalence-shaped queries one of them makes
        both sides the same interned term.  Shared by the e-graph rung
        and the ∃∀ solver so both discharge the same queries.
        """
        if not self.options.witness_pairing:
            return []
        names = term_vars(psi)
        relevant = [qv for qv in self.forall_vars if qv.name in names]
        if len(relevant) != 1:
            return []
        qv = relevant[0]
        forall_names = {q.name for q in self.forall_vars}
        candidates = [
            free
            for free in self._collect_var_terms(psi)
            if free.width == qv.width and free.payload not in forall_names
        ]
        return [{qv.name: free} for free in candidates[:8]]

    def _cache_items(self, phi: BoolTerm, psi: BoolTerm) -> list:
        """The tagged term sequence whose canonical hash keys this query.

        Besides (phi, psi) it must pin down which variables are universal
        and what the symbolic seeds are: two structurally equal formula
        pairs with a different quantifier split are different queries.
        """
        items = [("phi", phi), ("psi", psi)]
        widths = {qv.name: qv.width for qv in self.forall_vars}
        psi_names = term_vars(psi)
        for i, qv in enumerate(self.forall_vars):
            if qv.name not in psi_names:
                continue  # solve_exists_forall ignores it too
            var = bool_var(qv.name) if qv.width == 0 else bv_var(qv.name, qv.width)
            items.append((f"A{i}", var))
        for i, seed in enumerate(self.seeds):
            for j, name in enumerate(sorted(seed)):
                width = widths.get(name)
                if width is None:
                    continue
                var = bool_var(name) if width == 0 else bv_var(name, width)
                items.append((f"s{i}.{j}k", var))
                items.append((f"s{i}.{j}v", seed[name]))
        return items

    def _is_satisfiable(self, formula: BoolTerm) -> Optional[RefinementResult]:
        # A concrete satisfying witness settles this plain SAT probe
        # without a solver (and without touching the query cache).
        if self.prescreener is not None:
            t0 = time.monotonic()
            hit = self.prescreener.screen_sat(formula)
            self.phase_times["prescreen"] += time.monotonic() - t0
            if hit:
                return None
        if self.simplifier is not None:
            # Saturation can only rewrite to an equivalent formula, so a
            # TRUE extraction is a satisfiability proof; anything else
            # still feeds the (possibly smaller) formula to the solver.
            t0 = time.monotonic()
            formula = self.simplifier.simplify(formula)
            self.phase_times["egraph"] += time.monotonic() - t0
            if formula is TRUE:
                return None
        solve_start = time.monotonic()
        try:
            cache = qcache.active()
            certify = self.options.certify
            digest = None
            res = None
            if cache is not None:
                digest, _ = qcache.canonical_fingerprint([("satcheck", formula)])
                hit = cache.lookup(digest, require_certified_unsat=certify)
                if hit is not None:
                    res = CheckResult(hit["result"])
            if res is None:
                solver = SmtSolver(certify=certify)
                solver.assert_term(formula)
                res = solver.check(self._limits())
                self._certs.extend(solver.certificates)
                bad = [c for c in solver.certificates if not c.valid]
                if bad:
                    return self._reject_unsound("precondition", bad)
                if cache is not None:
                    # Exhaustion verdicts are dropped by the cache itself:
                    # they reflect this test's remaining deadline, not the query.
                    cache.store(
                        digest,
                        res.value,
                        certified=bool(solver.certificates)
                        and all(c.valid for c in solver.certificates),
                    )
            if res is CheckResult.UNSAT:
                return self._attach(
                    RefinementResult(Verdict.EMPTY_PRE, failed_check="precondition")
                )
            if res is CheckResult.TIMEOUT:
                return self._attach(
                    RefinementResult(Verdict.TIMEOUT, failed_check="precondition")
                )
            if res is CheckResult.MEMOUT:
                return self._attach(
                    RefinementResult(Verdict.OOM, failed_check="precondition")
                )
            return None
        finally:
            self.phase_times["solve"] += time.monotonic() - solve_start

    def _query(self, name: str, phi: BoolTerm, psi: BoolTerm) -> Optional[RefinementResult]:
        """Run one exists-forall query; None means the check passed."""
        psi = bool_and(self.env_consistency, psi)
        if self.prescreener is not None:
            t0 = time.monotonic()
            hit = self.prescreener.screen_query(name, phi, psi, self.src, self.tgt)
            self.phase_times["prescreen"] += time.monotonic() - t0
            if hit:
                return None
        if self.simplifier is not None:
            # E-graph rung: saturating the certified rules either proves
            # the query outright (psi is a tautology / phi is vacuous —
            # the forall obligation holds with no SAT call) or yields
            # equivalent, usually smaller terms for the bit-blaster.  The
            # query-cache fingerprint below hashes these post-extraction
            # canonical terms, so semantically equal queries share entries.
            t0 = time.monotonic()
            proved, phi, psi = self.simplifier.screen_query(
                phi,
                psi,
                seeded_psis=self._seeded_psis(psi),
                union_seeds=self.union_seeds,
            )
            self.phase_times["egraph"] += time.monotonic() - t0
            if proved:
                return None
        solve_start = time.monotonic()
        outcome = self._solve_cached(phi, psi)
        self.phase_times["solve"] += time.monotonic() - solve_start
        self._certs.extend(outcome.certificates)
        bad = [c for c in outcome.certificates if not getattr(c, "valid", True)]
        if bad:
            return self._reject_unsound(name, bad)
        if outcome.result is EFResult.UNSAT:
            return None
        if outcome.result is EFResult.TIMEOUT:
            return self._attach(RefinementResult(Verdict.TIMEOUT, failed_check=name))
        if outcome.result is EFResult.MEMOUT:
            return self._attach(RefinementResult(Verdict.OOM, failed_check=name))
        if outcome.core_names:
            self._notes.append(_describe_core(name, outcome.core_names))
        # Counterexample found; filter for over-approximation (§3.8).
        approx = sorted(
            (self.src.approx_vars | self.tgt.approx_vars)
            & set(outcome.model.keys())
        )
        if approx:
            return self._attach(
                RefinementResult(
                    Verdict.APPROX, failed_check=name, approx_features=approx
                )
            )
        cex = {
            k: v
            for k, v in outcome.model.items()
            if k.startswith(("arg_", "isundef_", "ispoison_", "glob_", "argmem_"))
        }
        if self.relational is not None:
            divergence = self.relational.describe_divergence()
            if divergence is not None:
                self._notes.append(divergence)
        return self._attach(
            RefinementResult(
                Verdict.INCORRECT,
                failed_check=name,
                counterexample=cex or dict(outcome.model),
            )
        )

    def _solve_cached(self, phi: BoolTerm, psi: BoolTerm) -> EFOutcome:
        """The exists-forall solve, short-circuited by the query cache.

        A hit replays the recorded verdict without constructing a solver;
        the stored model is keyed by canonical variable names and gets
        translated back through this query's renaming.
        """
        cache = qcache.active()
        certify = self.options.certify
        # phi/psi are already post-extraction canonical forms (the e-graph
        # rung ran before this); re-saturating every CEGAR instantiation
        # costs far more than the CNF it would save, so the per-clause
        # simplify hook stays off.
        simplify = None
        query_seeds = self._query_seeds(psi)
        if self.relational is not None and (self._rel_seed_pairs or query_seeds):
            REL_STATS.seeded_queries += 1
        seeds = list(self.seeds) + query_seeds
        if cache is None:
            return solve_exists_forall(
                phi,
                psi,
                self.forall_vars,
                limits=self._limits(),
                max_iterations=self.options.max_ef_iterations,
                symbolic_seeds=seeds,
                certify=certify,
                simplify=simplify,
            )
        digest, rename = qcache.canonical_fingerprint(self._cache_items(phi, psi))
        hit = cache.lookup(digest, require_certified_unsat=certify)
        if hit is not None:
            unrename = {canon: real for real, canon in rename.items()}
            model = {
                unrename[canon]: value
                for canon, value in hit.get("model", {}).items()
                if canon in unrename
            }
            return EFOutcome(
                EFResult(hit["result"]),
                model=model,
                iterations=int(hit.get("iterations", 0)),
            )
        outcome = solve_exists_forall(
            phi,
            psi,
            self.forall_vars,
            limits=self._limits(),
            max_iterations=self.options.max_ef_iterations,
            symbolic_seeds=seeds,
            certify=certify,
            simplify=simplify,
        )
        canon_model = {
            rename[name]: value
            for name, value in outcome.model.items()
            if name in rename
        }
        if all(getattr(c, "valid", True) for c in outcome.certificates):
            # A verdict whose proof the checker rejected is suspect; never
            # let it replay into later tests or non-certify runs.
            cache.store(
                digest,
                outcome.result.value,
                model=canon_model,
                iterations=outcome.iterations,
                certified=bool(outcome.certificates)
                and all(c.valid for c in outcome.certificates),
            )
        return outcome

    def _prime_refines_value(self, src_value, tgt_value) -> BoolTerm:
        """src' ⊒ tgt for return values (Figure 4 rules, element-wise)."""
        if isinstance(src_value, SymAggregate) or isinstance(tgt_value, SymAggregate):
            src_elems = src_value.elems if isinstance(src_value, SymAggregate) else None
            tgt_elems = tgt_value.elems if isinstance(tgt_value, SymAggregate) else None
            if src_elems is None or tgt_elems is None or len(src_elems) != len(tgt_elems):
                return FALSE
            return bool_and(
                *[
                    self._prime_refines_value(s, t)
                    for s, t in zip(src_elems, tgt_elems)
                ]
            )
        assert isinstance(src_value, SymValue) and isinstance(tgt_value, SymValue)
        s_poison = self._prime(src_value.poison)
        s_expr = self._prime(src_value.expr)
        return bool_or(
            s_poison,
            bool_and(
                bool_not(tgt_value.poison), bv_eq(s_expr, tgt_value.expr)
            ),
        )

    def _memory_refines(self) -> BoolTerm:
        src_mem = self.src.final_memory
        tgt_mem = self.tgt.final_memory
        if src_mem is None or tgt_mem is None:
            return TRUE
        # Clobber facts let us skip whole blocks: when neither side's
        # stores can touch shared bid b (both clobber sets are finite and
        # exclude b), b's final bytes equal its initial bytes in every
        # UB-free execution, so the per-byte clauses are valid exactly
        # where the query evaluates them (the ``dom' ∧ mem_ref`` branch
        # is only reachable with ``¬ub'``, and ``φ ⊇ ¬ub_tgt``).
        untouched: FrozenSet[int] = frozenset()
        if self.memdf_src is not None and self.memdf_tgt is not None:
            s_clob = self.memdf_src.clobbered
            t_clob = self.memdf_tgt.clobbered
            if (
                s_clob is not None
                and t_clob is not None
                and not self.memdf_src.has_calls
                and not self.memdf_tgt.has_calls
            ):
                untouched = (
                    frozenset(src_mem.non_local_bids()) - s_clob - t_clob
                )
        clauses: List[BoolTerm] = []
        for bid in src_mem.non_local_bids():
            s_bytes = src_mem.blocks.get(bid)
            t_bytes = tgt_mem.blocks.get(bid)
            if s_bytes is None or t_bytes is None:
                continue
            info = src_mem.infos[bid]
            if not info.writable:
                continue  # read-only blocks cannot change
            if bid in untouched:
                MEMDF_STATS.refine_skips += 1
                continue
            for sb, tb in zip(s_bytes, t_bytes):
                s_poison = self._prime(sb.poison)
                s_value = self._prime(sb.value)
                s_tag = self._prime(sb.is_ptr)
                clause = bool_or(
                    s_poison,
                    bool_and(
                        bool_not(tb.poison),
                        bv_eq(s_value, tb.value),
                        bool_not(
                            bool_or(
                                bool_and(s_tag, bool_not(tb.is_ptr)),
                                bool_and(bool_not(s_tag), tb.is_ptr),
                            )
                        ),
                    ),
                )
                if clause is not TRUE:
                    clauses.append(clause)
        if not clauses:
            return TRUE
        return bool_and(*clauses)


def _classify_core_name(name: str) -> str:
    """Bucket one unsat-core variable by what it encodes.

    Core variables come from the inner CEGAR solver's assumption literals,
    which pin existentials to the candidate model: function inputs
    (``arg_``), UB/poison/undef shadow variables, memory contents and the
    encoder's nondeterminism variables (``src.freeze_x!1`` etc.; a
    trailing ``'`` marks the primed source copy).
    """
    base = name.rstrip("'")
    leaf = base.split(".")[-1]
    low = leaf.lower()
    if "poison" in low or low.startswith(("callp_", "hvp")):
        return "poison"
    if "undef" in low:
        return "undef"
    if low.startswith("arg_"):
        return "input"
    if low.startswith(("glob_", "argmem_", "hv_")):
        return "memory"
    if low.startswith(("freeze_", "call", "fpnan_", "nanbits_", "nsz_", "nd")):
        return "nondet"
    return "value"


def _describe_core(check_name: str, core_names: List[str]) -> str:
    """Human-readable unsat-core summary for ``RefinementResult.notes``."""
    buckets: Dict[str, List[str]] = {}
    for name in core_names:
        buckets.setdefault(_classify_core_name(name), []).append(name)
    parts = [
        f"{kind}={len(buckets[kind])}" for kind in sorted(buckets)
    ]
    shown = ", ".join(core_names[:6])
    if len(core_names) > 6:
        shown += ", ..."
    return (
        f"unsat core ({check_name}): {' '.join(parts)} [{shown}]"
    )


def _value_poison(value) -> BoolTerm:
    if isinstance(value, SymAggregate):
        return bool_or(*[_value_poison(e) for e in value.elems])
    return value.poison


# ---------------------------------------------------------------------------
# Call pairing (§6)
# ---------------------------------------------------------------------------


def _args_equal(a: CallRecord, b: CallRecord) -> BoolTerm:
    """Exact input equality for source-source dedup axioms (§6).

    Possibly-undef arguments disable the axiom (the two reads may have
    resolved differently), which only makes the source *more*
    nondeterministic — sound for the zero-false-alarm goal.
    """
    if len(a.args) != len(b.args):
        return FALSE
    clauses = []
    for x, y in zip(a.args, b.args):
        if x.expr.width != y.expr.width:
            return FALSE
        same_poison = bool_not(
            bool_or(
                bool_and(x.poison, bool_not(y.poison)),
                bool_and(bool_not(x.poison), y.poison),
            )
        )
        clauses.append(
            bool_and(
                bool_not(x.varies),
                bool_not(y.varies),
                same_poison,
                bool_or(x.poison, bv_eq(x.expr, y.expr)),
            )
        )
    return bool_and(*clauses)


def _args_refined(src_call: CallRecord, tgt_call: CallRecord) -> BoolTerm:
    """Each src arg ⊒ tgt arg (Fig. 5).

    An undef source argument (``varies``) refines *any* target argument —
    the value-level rule of Figure 4, which a per-reading equality would
    miss and then misreport as an introduced call.
    """
    if len(src_call.args) != len(tgt_call.args):
        return FALSE
    clauses = []
    for s, t in zip(src_call.args, tgt_call.args):
        if s.expr.width != t.expr.width:
            return FALSE
        clauses.append(
            bool_or(
                s.poison,
                s.varies,
                bool_and(bool_not(t.poison), bv_eq(s.expr, t.expr)),
            )
        )
    return bool_and(*clauses)


def _compatible(a: CallRecord, b: CallRecord) -> bool:
    if a.callee == b.callee:
        same = True
    else:
        ca, cb = pair_class_of(a.callee), pair_class_of(b.callee)
        same = ca is not None and ca == cb
    if not same:
        return False
    if not (a.reads_memory or b.reads_memory):
        # Memory-oblivious callees: prior calls cannot influence them.
        return True
    # §6 pruning: ranges of prior-call counts must overlap (a call with
    # strictly more preceding calls may have observed different memory).
    return not (a.max_prior < b.min_prior or b.max_prior < a.min_prior)


def _pair_calls(
    src: EncodedFunction, tgt: EncodedFunction
) -> Tuple[BoolTerm, BoolTerm, BoolTerm]:
    """Build (source-side axioms, target-side axioms, target no-match UB)."""
    src_axioms: List[BoolTerm] = []
    # Source-source: same function, equal inputs => equal outputs.  Only for
    # calls that do not read memory (we do not relate memory inputs).
    for i, c1 in enumerate(src.calls):
        for c2 in src.calls[i + 1 :]:
            if c1.callee != c2.callee or c1.reads_memory or c2.reads_memory:
                continue
            if not _compatible(c1, c2):
                continue
            if c1.result is None or c2.result is None:
                continue
            cond = bool_and(c1.dom, c2.dom, _args_equal(c1, c2))
            same_out = bool_and(
                bool_not(
                    bool_or(
                        bool_and(c1.result.poison, bool_not(c2.result.poison)),
                        bool_and(bool_not(c1.result.poison), c2.result.poison),
                    )
                ),
                bool_or(c1.result.poison, bv_eq(c1.result.expr, c2.result.expr)),
            )
            src_axioms.append(bool_implies(cond, same_out))

    tgt_axioms: List[BoolTerm] = []
    tgt_ub = FALSE
    for t in tgt.calls:
        candidates = [s for s in src.calls if _compatible(s, t)]
        if not candidates:
            # A call the source never makes: introducing calls is illegal.
            tgt_ub = bool_or(tgt_ub, t.dom)
            continue
        sel_width = max(1, len(candidates).bit_length())
        sel = bv_var(fresh_name("tgt.callsel"), sel_width)
        # sel <= len(candidates); == len means "no source call matches".
        tgt_axioms.append(bv_ule(sel, bv_const(len(candidates), sel_width)))
        matches: List[BoolTerm] = []
        for j, s in enumerate(candidates):
            is_j = bv_eq(sel, bv_const(j, sel_width))
            match = bool_and(s.dom, _args_refined(s, t))
            matches.append(match)
            tgt_axioms.append(bool_implies(is_j, match))
            if t.result is not None and s.result is not None:
                out_ref = bool_or(
                    s.result.poison,
                    bool_and(
                        bool_not(t.result.poison),
                        bv_eq(s.result.expr, t.result.expr),
                    ),
                )
                tgt_axioms.append(bool_implies(is_j, out_ref))
            elif t.result is not None and s.result is None:
                tgt_axioms.append(bool_implies(is_j, FALSE))
            # Fig. 5: the memory output of the paired calls must be related
            # too (M_o ⊒ M'_o); tie the target's havoc bytes to the source
            # call's havoc bytes.
            for key, (t_val, t_poison) in t.havoc.items():
                hit = s.havoc.get(key)
                if hit is None:
                    continue
                s_val, s_poison = hit
                byte_ref = bool_or(
                    bool_var(s_poison),
                    bool_and(
                        bool_not(bool_var(t_poison)),
                        bv_eq(bv_var(s_val, 8), bv_var(t_val, 8)),
                    ),
                )
                tgt_axioms.append(bool_implies(is_j, byte_ref))
        # §6: i = |C| holds iff NO source call is refined by this call —
        # without this direction the solver could simply "choose" no-match
        # and fabricate target UB.
        no_match = bv_eq(sel, bv_const(len(candidates), sel_width))
        tgt_axioms.append(
            bool_implies(no_match, bool_and(*[bool_not(m) for m in matches]))
        )
        tgt_ub = bool_or(tgt_ub, bool_and(t.dom, no_match))

    src_pre = bool_and(*src_axioms) if src_axioms else TRUE
    tgt_pre = bool_and(*tgt_axioms) if tgt_axioms else TRUE
    return src_pre, tgt_pre, tgt_ub
