"""Refinement checking (§5 of the Alive2 paper)."""

from repro.refinement.check import (
    RefinementResult,
    Verdict,
    VerifyOptions,
    verify_refinement,
)

__all__ = ["verify_refinement", "Verdict", "VerifyOptions", "RefinementResult"]
