"""SimplifyCFG: branch folding, block merging, and if-conversion.

The buggy variant ``bug:speculate-branch`` performs the *inverse* of
if-conversion — it turns a select into a conditional branch.  Under the
branch-on-undef-is-UB semantics that Alive2 drove into LLVM (§8.3), this
introduces UB the source did not have.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.cfg import predecessors, remove_unreachable_blocks
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Br, Phi, Select
from repro.ir.module import Module
from repro.ir.values import Register
from repro.opt.passmanager import register_pass
from repro.opt.util import const_int


def _fold_constant_branches(fn: Function) -> bool:
    changed = False
    for block in fn.blocks.values():
        term = block.terminator
        if isinstance(term, Br) and term.cond is not None:
            c = const_int(term.cond)
            if c is not None:
                target = term.true_label if c else term.false_label
                dropped = term.false_label if c else term.true_label
                block.instructions[-1] = Br(None, target)
                if dropped != target:
                    for phi in fn.blocks[dropped].phis():
                        phi.incoming = [
                            (v, b) for v, b in phi.incoming if b != block.label
                        ]
                changed = True
            elif term.true_label == term.false_label:
                # br c, %x, %x -> br %x is only valid because branching on
                # poison was UB anyway... no: this *removes* UB, which is
                # allowed (target has fewer behaviours).
                block.instructions[-1] = Br(None, term.true_label)
                changed = True
    return changed


def _merge_straight_line(fn: Function) -> bool:
    """Merge blocks with a single successor whose successor has a single
    predecessor (and no phis)."""
    preds = predecessors(fn)
    for label, block in list(fn.blocks.items()):
        term = block.terminator
        if not isinstance(term, Br) or term.cond is not None:
            continue
        succ_label = term.true_label
        if succ_label == label or succ_label not in fn.blocks:
            continue
        succ = fn.blocks[succ_label]
        if len(preds.get(succ_label, [])) != 1 or succ.phis():
            continue
        if succ_label in fn.sink_labels:
            continue
        block.instructions = block.instructions[:-1] + succ.instructions
        del fn.blocks[succ_label]
        # Phis in succ's successors must be re-labelled.
        for other in fn.blocks.values():
            for phi in other.phis():
                phi.incoming = [
                    (v, label if b == succ_label else b) for v, b in phi.incoming
                ]
        return True
    return False


def _if_convert(fn: Function) -> bool:
    """Convert a diamond (or triangle) with an empty body into a select."""
    preds = predecessors(fn)
    for label, block in list(fn.blocks.items()):
        term = block.terminator
        if not isinstance(term, Br) or term.cond is None:
            continue
        t_label, f_label = term.true_label, term.false_label
        if t_label == f_label:
            continue
        t_block = fn.blocks.get(t_label)
        f_block = fn.blocks.get(f_label)
        if t_block is None or f_block is None:
            continue

        def is_empty_forwarder(b: BasicBlock) -> Optional[str]:
            if len(b.instructions) == 1 and isinstance(b.terminator, Br):
                t = b.terminator
                if t.cond is None:
                    return t.true_label
            return None

        join_t = is_empty_forwarder(t_block)
        join_f = is_empty_forwarder(f_block)
        if join_t is None or join_t != join_f:
            continue
        join = fn.blocks.get(join_t)
        if join is None:
            continue
        if len(preds.get(t_label, [])) != 1 or len(preds.get(f_label, [])) != 1:
            continue
        # Replace each phi in the join by a select in `block`.
        selects: List[Select] = []
        ok = True
        for phi in join.phis():
            v_t = v_f = None
            for v, b in phi.incoming:
                if b == t_label:
                    v_t = v
                elif b == f_label:
                    v_f = v
            if v_t is None or v_f is None or len(phi.incoming) != 2:
                ok = False
                break
            selects.append(Select(phi.name, phi.type, term.cond, v_t, v_f))
        if not ok:
            continue
        join.instructions = selects + join.non_phi_instructions()
        block.instructions = block.instructions[:-1] + [Br(None, join_t)]
        del fn.blocks[t_label]
        del fn.blocks[f_label]
        return True
    return False


def _speculate_selects(fn: Function) -> bool:
    """BUGGY inverse if-conversion: select -> conditional branch.

    Introduces a branch on a possibly-undef/poison condition — exactly the
    class of §8.2 bugs 'optimizations that introduce a branch on undef or
    poison'.
    """
    for label, block in list(fn.blocks.items()):
        for idx, inst in enumerate(block.instructions):
            if not isinstance(inst, Select) or not isinstance(inst.cond, Register):
                continue
            rest = block.instructions[idx + 1 :]
            t_label = fn.fresh_label(f"{label}.sel.t")
            f_label = fn.fresh_label(f"{label}.sel.f")
            join_label = fn.fresh_label(f"{label}.sel.join")
            phi = Phi(inst.name, inst.type, [
                (inst.on_true, t_label),
                (inst.on_false, f_label),
            ])
            fn.blocks[t_label] = BasicBlock(t_label, [Br(None, join_label)])
            fn.blocks[f_label] = BasicBlock(f_label, [Br(None, join_label)])
            fn.blocks[join_label] = BasicBlock(join_label, [phi] + rest)
            block.instructions = block.instructions[:idx] + [
                Br(inst.cond, t_label, f_label)
            ]
            # Phis referring to `label` from `rest`'s successors move.
            for other in fn.blocks.values():
                if other.label in (t_label, f_label, join_label):
                    continue
                for p in other.phis():
                    p.incoming = [
                        (v, join_label if b == label else b)
                        for v, b in p.incoming
                    ]
            return True
    return False


@register_pass("simplifycfg")
def simplifycfg(fn: Function, module: Module, options: dict) -> bool:
    changed = False
    if options.get("bug:speculate-branch", False):
        while _speculate_selects(fn):
            changed = True
        return changed
    while True:
        local = _fold_constant_branches(fn)
        local |= remove_unreachable_blocks(fn)
        local |= _merge_straight_line(fn)
        local |= _if_convert(fn)
        if not local:
            return changed
        changed = True
