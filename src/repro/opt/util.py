"""Shared helpers for optimization passes."""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    Call,
    Instruction,
    Load,
    Store,
)
from repro.ir.values import ConstantInt, Register, Value


def replace_all_uses(fn: Function, name: str, replacement: Value) -> int:
    """Replace every use of register ``name`` with ``replacement``."""
    count = 0
    mapping = {name: replacement}
    for inst in fn.instructions():
        before = [
            op.name
            for op in inst.operands
            if isinstance(op, Register) and op.name == name
        ]
        if before:
            inst.replace_operands(mapping)
            count += len(before)
    return count


def has_side_effects(inst: Instruction) -> bool:
    """Conservative: may the instruction affect state beyond its result?"""
    if isinstance(inst, (Store, Call)):
        return True
    if inst.is_terminator():
        return True
    if isinstance(inst, Alloca):
        return True  # its identity is observable through the pointer
    return False


def may_trigger_ub(inst: Instruction) -> bool:
    """May executing the instruction be immediate UB? (blocks speculation)"""
    from repro.ir.instructions import BinOp

    if isinstance(inst, (Load, Store, Call)):
        return True
    if isinstance(inst, BinOp) and inst.opcode in ("udiv", "sdiv", "urem", "srem"):
        return True
    return False


def use_counts(fn: Function) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for inst in fn.instructions():
        for op in inst.operands:
            if isinstance(op, Register):
                counts[op.name] = counts.get(op.name, 0) + 1
    return counts


def const_int(value: Value) -> Optional[int]:
    if isinstance(value, ConstantInt):
        return value.value
    return None


def is_zero(value: Value) -> bool:
    return isinstance(value, ConstantInt) and value.value == 0


def is_all_ones(value: Value) -> bool:
    return (
        isinstance(value, ConstantInt)
        and value.value == (1 << value.type.width) - 1
    )


def same_register(a: Value, b: Value) -> bool:
    return (
        isinstance(a, Register) and isinstance(b, Register) and a.name == b.name
    )
