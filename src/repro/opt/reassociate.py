"""Reassociation / SLP-style add-chain balancing.

Rebalances a chain ``((a + b) + c) + d`` into ``(a + b) + (c + d)`` — the
scalar core of the Selected Bug #1 transformation.  The correct variant
drops ``nsw`` flags (the paper's fix); the buggy variant
``bug:nsw-reassoc`` keeps them, which is unsound because nsw addition is
not associative.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import BinOp
from repro.ir.module import Module
from repro.ir.types import IntType
from repro.ir.values import Register, Value
from repro.opt.passmanager import register_pass
from repro.opt.util import use_counts


def _collect_chain(
    fn: Function, root: BinOp, defs, counts
) -> Optional[Tuple[List[Value], List[str], bool]]:
    """Collect the leaves of a single-use add chain rooted at ``root``."""
    leaves: List[Value] = []
    internal: List[str] = []
    all_nsw = "nsw" in root.flags

    def walk(value: Value, is_root: bool) -> bool:
        nonlocal all_nsw
        if isinstance(value, Register):
            inner = defs.get(value.name)
            if (
                isinstance(inner, BinOp)
                and inner.opcode == "add"
                and counts.get(value.name, 0) == 1
            ):
                if "nsw" not in inner.flags:
                    all_nsw = False
                internal.append(inner.name)
                return walk(inner.lhs, False) and walk(inner.rhs, False)
        leaves.append(value)
        return True

    if not walk(root.lhs, True) or not walk(root.rhs, True):
        return None
    if len(leaves) < 4:
        return None
    return leaves, internal, all_nsw


@register_pass("reassociate")
def reassociate(fn: Function, module: Module, options: dict) -> bool:
    keep_nsw = options.get("bug:nsw-reassoc", False)
    changed = False
    defs = fn.defined_names()
    counts = use_counts(fn)
    for block in fn.blocks.values():
        for idx, inst in enumerate(list(block.instructions)):
            if not (
                isinstance(inst, BinOp)
                and inst.opcode == "add"
                and isinstance(inst.type, IntType)
            ):
                continue
            chain = _collect_chain(fn, inst, defs, counts)
            if chain is None:
                continue
            leaves, internal, all_nsw = chain
            flags = (
                frozenset({"nsw"}) if (keep_nsw and all_nsw) else frozenset()
            )
            # Build a balanced tree over the leaves.
            new_insts: List[BinOp] = []
            level: List[Value] = list(leaves)
            counter = 0
            while len(level) > 1:
                next_level: List[Value] = []
                for i in range(0, len(level) - 1, 2):
                    if len(level) == 2:
                        name = inst.name  # the root keeps its register
                    else:
                        name = fn.fresh_register(f"{inst.name}.ra{counter}")
                        counter += 1
                    add = BinOp(name, "add", inst.type, level[i], level[i + 1], flags)
                    new_insts.append(add)
                    next_level.append(Register(inst.type, name))
                if len(level) % 2:
                    next_level.append(level[-1])
                level = next_level
            # Splice: remove the internal chain instructions and the root,
            # insert the balanced tree at the root's position.
            internal_set = set(internal)
            out = []
            for existing in block.instructions:
                name = getattr(existing, "name", None)
                if name in internal_set:
                    continue
                if existing is inst:
                    out.extend(new_insts)
                    continue
                out.append(existing)
            block.instructions = out
            changed = True
            defs = fn.defined_names()
            counts = use_counts(fn)
    return changed
