"""InstCombine: canonicalizing peepholes that may create new instructions.

Includes the optional *buggy variants* from §8.2 of the paper:

* ``bug:select-to-and-or`` — replace ``select %x, %y, false`` with
  ``and %x, %y`` (and the ``or`` dual).  This was LLVM's behaviour at the
  time of the paper and is wrong when %y may be poison (§8.4).
* ``bug:fadd-zero`` — fold ``fadd (fmul nsz a b), +0.0`` to the bare
  ``fmul`` (Selected Bug #2).
* ``bug:undef-shift`` — fold ``shl undef, %x`` to ``undef`` (an
  undef-as-input class bug: the result must be 0 for %x != 0... actually
  poison-aware folds of shifts with undef operands were a recurring §8.2
  category).
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.fpformat import float_to_bits
from repro.ir.function import Function
from repro.ir.instructions import BinOp, Cast, FBinOp, Select
from repro.ir.module import Module
from repro.ir.types import IntType
from repro.ir.values import ConstantFloat, ConstantInt, Register, UndefValue, Value
from repro.opt.passmanager import register_pass
from repro.opt.util import const_int, replace_all_uses, same_register


def _is_pos_zero(value: Value) -> bool:
    return (
        isinstance(value, ConstantFloat)
        and value.bits == float_to_bits(0.0, value.type)
    )


def _is_neg_zero(value: Value) -> bool:
    return (
        isinstance(value, ConstantFloat)
        and value.bits == float_to_bits(-0.0, value.type)
    )


def _power_of_two(value: Optional[int]) -> Optional[int]:
    if value is None or value <= 0 or value & (value - 1):
        return None
    return value.bit_length() - 1


@register_pass("instcombine")
def instcombine(fn: Function, module: Module, options: dict) -> bool:
    buggy_select = options.get("bug:select-to-and-or", False)
    buggy_fadd = options.get("bug:fadd-zero", False)
    buggy_undef_shift = options.get("bug:undef-shift", False)
    changed = False
    defs = fn.defined_names()

    for block in fn.blocks.values():
        new_instructions: List = []
        for inst in block.instructions:
            replacement_value: Optional[Value] = None
            replacement_inst = None

            if isinstance(inst, BinOp) and isinstance(inst.type, IntType):
                op = inst.opcode
                rc = const_int(inst.rhs)
                # add x, x -> shl x, 1  (dropping flags: the add's nsw does
                # not simply transfer; LLVM emits shl nsw which is fine —
                # we conservatively drop flags).
                if op == "add" and same_register(inst.lhs, inst.rhs):
                    replacement_inst = BinOp(
                        inst.name, "shl", inst.type, inst.lhs,
                        ConstantInt(inst.type, 1), frozenset(),
                    )
                # mul x, 2^k -> shl x, k
                elif op == "mul" and _power_of_two(rc) is not None:
                    replacement_inst = BinOp(
                        inst.name, "shl", inst.type, inst.lhs,
                        ConstantInt(inst.type, _power_of_two(rc)), frozenset(),
                    )
                # udiv x, 2^k -> lshr x, k  (exact flag preserved)
                elif op == "udiv" and _power_of_two(rc) is not None:
                    replacement_inst = BinOp(
                        inst.name, "lshr", inst.type, inst.lhs,
                        ConstantInt(inst.type, _power_of_two(rc)),
                        inst.flags & frozenset({"exact"}),
                    )
                # urem x, 2^k -> and x, 2^k-1
                elif op == "urem" and _power_of_two(rc) is not None:
                    replacement_inst = BinOp(
                        inst.name, "and", inst.type, inst.lhs,
                        ConstantInt(inst.type, rc - 1), frozenset(),
                    )
                elif (
                    buggy_undef_shift
                    and op in ("shl", "lshr", "ashr")
                    and isinstance(inst.lhs, UndefValue)
                ):
                    # BUG (§8.2 "incorrect when undef is given as input"):
                    # shl undef, x is 0 when x = width-1 is not... folding
                    # to undef claims more behaviours than the source has.
                    replacement_value = UndefValue(inst.type)
                # (x + C1) + C2 -> x + (C1+C2)
                elif op == "add" and rc is not None and isinstance(inst.lhs, Register):
                    inner = defs.get(inst.lhs.name)
                    if (
                        isinstance(inner, BinOp)
                        and inner.opcode == "add"
                        and const_int(inner.rhs) is not None
                        and not inner.flags
                        and not inst.flags
                    ):
                        total = (const_int(inner.rhs) + rc) & (
                            (1 << inst.type.width) - 1
                        )
                        replacement_inst = BinOp(
                            inst.name, "add", inst.type, inner.lhs,
                            ConstantInt(inst.type, total), frozenset(),
                        )

            elif isinstance(inst, Select) and isinstance(inst.type, IntType):
                if inst.type.width == 1:
                    tc = const_int(inst.on_true)
                    fc = const_int(inst.on_false)
                    # select c, true, false -> c ; select c, false, true -> xor c, 1
                    if tc == 1 and fc == 0:
                        replacement_value = inst.cond
                    elif tc == 0 and fc == 1:
                        replacement_inst = BinOp(
                            inst.name, "xor", inst.type, inst.cond,
                            ConstantInt(IntType(1), 1), frozenset(),
                        )
                    elif buggy_select and fc == 0 and tc is None:
                        # BUG (§8.4): select %x, %y, false -> and %x, %y
                        replacement_inst = BinOp(
                            inst.name, "and", inst.type, inst.cond,
                            inst.on_true, frozenset(),
                        )
                    elif buggy_select and tc == 1 and fc is None:
                        # BUG dual: select %x, true, %y -> or %x, %y
                        replacement_inst = BinOp(
                            inst.name, "or", inst.type, inst.cond,
                            inst.on_false, frozenset(),
                        )

            elif isinstance(inst, FBinOp):
                # fadd x, -0.0 -> x   (always correct)
                if inst.opcode == "fadd" and _is_neg_zero(inst.rhs):
                    replacement_value = inst.lhs
                # BUG (Selected Bug #2): fadd x, +0.0 -> x.  Wrong when x
                # can be -0.0 (e.g. the result of an nsz fmul).
                elif buggy_fadd and inst.opcode == "fadd" and _is_pos_zero(inst.rhs):
                    replacement_value = inst.lhs
                # fmul x, 1.0 -> x
                elif inst.opcode == "fmul" and isinstance(inst.rhs, ConstantFloat):
                    if inst.rhs.bits == float_to_bits(1.0, inst.rhs.type):
                        replacement_value = inst.lhs

            elif isinstance(inst, Cast):
                # zext (trunc x) -> and x, mask  when widths round-trip.
                if inst.opcode == "zext" and isinstance(inst.operand, Register):
                    inner = defs.get(inst.operand.name)
                    if (
                        isinstance(inner, Cast)
                        and inner.opcode == "trunc"
                        and isinstance(inner.operand.type, IntType)
                        and inner.operand.type == inst.type
                    ):
                        mask = (1 << inner.type.width) - 1
                        replacement_inst = BinOp(
                            inst.name, "and", inst.type, inner.operand,
                            ConstantInt(inst.type, mask), frozenset(),
                        )

            if replacement_value is not None:
                replace_all_uses(fn, inst.name, replacement_value)
                changed = True
                continue
            if replacement_inst is not None:
                new_instructions.append(replacement_inst)
                defs[replacement_inst.name] = replacement_inst
                changed = True
                continue
            new_instructions.append(inst)
        block.instructions = new_instructions
    return changed
