"""Registry of buggy pass variants, one per §8.2 miscompilation class.

Each entry names the pass-manager option that switches the defect on, the
pass it lives in, and the §8.2 result category it reproduces.  The
evaluation harness uses this table to build a compiler with a realistic
defect distribution and then measures how many of the injected bugs the
translation validator reports (experiment E1 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class BugSpec:
    option: str  # pass-manager option key
    pass_name: str
    category: str  # §8.2 category this defect belongs to
    description: str


BUG_REGISTRY: List[BugSpec] = [
    BugSpec(
        "bug:select-to-and-or",
        "instcombine",
        "select-ub",
        "select %x, %y, false -> and %x, %y: wrong when %y may be poison "
        "(the §8.4 miscompilation; 5 'UB-related select' bugs in §8.2)",
    ),
    BugSpec(
        "bug:nsw-reassoc",
        "reassociate",
        "arithmetic",
        "reassociating add-nsw chains keeps nsw: nsw addition is not "
        "associative (Selected Bug #1; 4 'incorrect arithmetic' in §8.2)",
    ),
    BugSpec(
        "bug:fadd-zero",
        "instcombine",
        "fast-math",
        "fadd x, +0.0 -> x: wrong for x = -0.0 from an nsz fmul "
        "(Selected Bug #2; 3 'fast-math' bugs in §8.2)",
    ),
    BugSpec(
        "bug:speculate-branch",
        "simplifycfg",
        "branch-on-undef",
        "select -> conditional branch introduces a branch on a possibly "
        "undef/poison value (18 such bugs in §8.2)",
    ),
    BugSpec(
        "bug:undef-shift",
        "instcombine",
        "undef-input",
        "shl undef, x -> undef: over-claims behaviours; the largest §8.2 "
        "category (43 'incorrect when undef is input' bugs)",
    ),
    BugSpec(
        "bug:licm-speculate-div",
        "licm",
        "loop-memory",
        "LICM hoists division out of conditionally-executed loop bodies, "
        "speculating UB (4 'loop optimizations' bugs in §8.2)",
    ),
    BugSpec(
        "bug:gvn-flags",
        "gvn",
        "arithmetic",
        "GVN merges instructions that differ only in poison flags, keeping "
        "the flagged one",
    ),
    BugSpec(
        "bug:gvn-alias-forward",
        "gvn",
        "memory",
        "redundant-load elimination keeps earlier loads available across a "
        "store through a different SSA pointer, forwarding across a "
        "may-alias store (§8.2 'memory optimizations' class)",
    ),
    BugSpec(
        "bug:gvn-dse-alias",
        "gvn",
        "memory",
        "dead-store elimination treats loads through a syntactically "
        "different pointer as non-aliasing, deleting a store still live "
        "through a second provenance of the same bytes",
    ),
]

BUGS_BY_OPTION: Dict[str, BugSpec] = {b.option: b for b in BUG_REGISTRY}
BUGS_BY_CATEGORY: Dict[str, List[BugSpec]] = {}
for _bug in BUG_REGISTRY:
    BUGS_BY_CATEGORY.setdefault(_bug.category, []).append(_bug)
