"""Aggregator: importing this module registers every pass."""

import repro.opt.dce  # noqa: F401
import repro.opt.gvn  # noqa: F401
import repro.opt.instcombine  # noqa: F401
import repro.opt.instsimplify  # noqa: F401
import repro.opt.licm  # noqa: F401
import repro.opt.mem2reg  # noqa: F401
import repro.opt.reassociate  # noqa: F401
import repro.opt.simplifycfg  # noqa: F401
