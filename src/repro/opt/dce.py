"""Dead code elimination: drop unused side-effect-free instructions and
unreachable blocks."""

from __future__ import annotations

from repro.ir.cfg import remove_unreachable_blocks
from repro.ir.function import Function
from repro.ir.module import Module
from repro.opt.passmanager import register_pass
from repro.opt.util import has_side_effects, use_counts


@register_pass("dce")
def dce(fn: Function, module: Module, options: dict) -> bool:
    changed = remove_unreachable_blocks(fn)
    while True:
        counts = use_counts(fn)
        removed = False
        for block in fn.blocks.values():
            keep = []
            for inst in block.instructions:
                name = getattr(inst, "name", None)
                if (
                    name is not None
                    and counts.get(name, 0) == 0
                    and not has_side_effects(inst)
                ):
                    removed = True
                    continue
                keep.append(inst)
            block.instructions = keep
        if not removed:
            break
        changed = True
    return changed
