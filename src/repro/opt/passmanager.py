"""Pass manager: named passes, pipelines, per-pass IR snapshots.

Mirrors the slice of LLVM's pass infrastructure that translation
validation interacts with: run a named pass over every function, report
whether anything changed (the plugin skips validation for no-change runs,
§8.1), and let drivers snapshot the IR before/after each pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.ir.function import Function
from repro.ir.module import Module

# A pass takes (function, module, options) and returns True when it
# changed the function.
PassFn = Callable[[Function, Module, dict], bool]

PASS_REGISTRY: Dict[str, PassFn] = {}


def register_pass(name: str):
    def decorate(fn: PassFn) -> PassFn:
        PASS_REGISTRY[name] = fn
        return fn

    return decorate


@dataclass
class PassRun:
    """One pass execution over one function."""

    pass_name: str
    function: str
    changed: bool
    before: Module
    after: Module


@dataclass
class PassManager:
    """Runs a pipeline of named passes over a module.

    ``options`` is visible to every pass; buggy variants are switched on
    through it (see :mod:`repro.opt.bugs`).
    """

    pipeline: List[str]
    options: dict = field(default_factory=dict)

    def run(self, module: Module) -> List[PassRun]:
        """Run the pipeline; returns one PassRun per (pass, function)."""
        import repro.opt.passes  # noqa: F401  (registers all passes)

        runs: List[PassRun] = []
        for name in self.pipeline:
            pass_fn = PASS_REGISTRY.get(name)
            if pass_fn is None:
                raise KeyError(f"unknown pass {name!r}")
            for fn in module.definitions():
                before = module.clone()
                changed = pass_fn(fn, module, self.options)
                after = module.clone()
                runs.append(PassRun(name, fn.name, changed, before, after))
        return runs


def run_pipeline(
    module: Module, pipeline: List[str], options: Optional[dict] = None
) -> List[PassRun]:
    """Convenience wrapper used by the tools and the evaluation harness."""
    return PassManager(list(pipeline), options or {}).run(module)
