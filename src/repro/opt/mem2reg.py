"""mem2reg / SROA-lite: promote allocas to SSA registers.

Promotes allocas whose only uses are whole-value loads and stores (no
geps, no escapes).  Uses the standard pruned-SSA construction: phi
placement on the iterated dominance frontier of the store blocks, then a
renaming walk over the dominator tree.  Loads before any store read
``undef`` — exactly LLVM's semantics for uninitialized stack slots.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.cfg import predecessors
from repro.ir.dominators import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import Alloca, Load, Phi, Store
from repro.ir.module import Module
from repro.ir.values import Register, UndefValue, Value
from repro.opt.passmanager import register_pass
from repro.opt.util import replace_all_uses


def _promotable_allocas(fn: Function) -> List[Alloca]:
    allocas = [
        inst for inst in fn.instructions() if isinstance(inst, Alloca)
    ]
    out = []
    for alloca in allocas:
        ok = True
        for inst in fn.instructions():
            for op in inst.operands:
                if isinstance(op, Register) and op.name == alloca.name:
                    if isinstance(inst, Load) and inst.type == alloca.allocated_type:
                        continue
                    if (
                        isinstance(inst, Store)
                        and isinstance(inst.pointer, Register)
                        and inst.pointer.name == alloca.name
                        and inst.value.type == alloca.allocated_type
                        and not (
                            isinstance(inst.value, Register)
                            and inst.value.name == alloca.name
                        )
                    ):
                        continue
                    ok = False
            if not ok:
                break
        if ok:
            out.append(alloca)
    return out


def _dominance_frontiers(fn: Function, dom: DominatorTree) -> Dict[str, Set[str]]:
    preds = predecessors(fn)
    df: Dict[str, Set[str]] = {label: set() for label in dom.order}
    for label in dom.order:
        ps = [p for p in preds.get(label, []) if p in dom.idom]
        if len(ps) < 2:
            continue
        for p in ps:
            runner = p
            while runner != dom.idom[label] and runner is not None:
                df[runner].add(label)
                if runner == dom.idom[runner]:
                    break
                runner = dom.idom[runner]
    return df


@register_pass("mem2reg")
def mem2reg(fn: Function, module: Module, options: dict) -> bool:
    allocas = _promotable_allocas(fn)
    if not allocas:
        return False
    dom = DominatorTree(fn)
    df = _dominance_frontiers(fn, dom)

    for alloca in allocas:
        _promote(fn, alloca, dom, df)
    return True


def _promote(
    fn: Function, alloca: Alloca, dom: DominatorTree, df: Dict[str, Set[str]]
) -> None:
    ty = alloca.allocated_type
    store_blocks: Set[str] = set()
    for label, block in fn.blocks.items():
        for inst in block.instructions:
            if (
                isinstance(inst, Store)
                and isinstance(inst.pointer, Register)
                and inst.pointer.name == alloca.name
            ):
                store_blocks.add(label)

    # Phi placement on the iterated dominance frontier.
    phi_blocks: Set[str] = set()
    work = list(store_blocks)
    while work:
        b = work.pop()
        for frontier in df.get(b, ()):  # may include unreachable-removed
            if frontier not in phi_blocks:
                phi_blocks.add(frontier)
                if frontier not in store_blocks:
                    work.append(frontier)

    phis: Dict[str, Phi] = {}
    for label in phi_blocks:
        name = fn.fresh_register(f"{alloca.name}.phi")
        phi = Phi(name, ty, [])
        fn.blocks[label].instructions.insert(0, phi)
        phis[label] = phi

    # Renaming walk over the dominator tree.
    children = dom.children()
    preds = predecessors(fn)

    def visit(label: str, incoming: Value) -> None:
        block = fn.blocks[label]
        if label in phis:
            current = Register(ty, phis[label].name)
        else:
            current = incoming
        keep = []
        for inst in block.instructions:
            if (
                isinstance(inst, Store)
                and isinstance(inst.pointer, Register)
                and inst.pointer.name == alloca.name
            ):
                current = inst.value
                continue
            if (
                isinstance(inst, Load)
                and isinstance(inst.pointer, Register)
                and inst.pointer.name == alloca.name
            ):
                replace_all_uses(fn, inst.name, current)
                continue
            keep.append(inst)
        block.instructions = keep
        for succ in block.successors():
            phi = phis.get(succ)
            if phi is not None:
                phi.incoming.append((current, label))
        for child in children.get(label, []):
            visit(child, current)

    entry = next(iter(fn.blocks))
    visit(entry, UndefValue(ty))

    # Remove the alloca itself.
    for block in fn.blocks.values():
        block.instructions = [
            inst
            for inst in block.instructions
            if not (isinstance(inst, Alloca) and inst.name == alloca.name)
        ]

    # Prune phi incoming entries from non-predecessor blocks (unreachable
    # or never-visited edges).
    for label, phi in phis.items():
        valid = set(preds.get(label, []))
        phi.incoming = [(v, b) for v, b in phi.incoming if b in valid]
