"""Global value numbering + simple redundant-load elimination.

Value numbering is dominance-based: an instruction is replaced by an
earlier, structurally identical one whose block dominates it.  Load
elimination forwards a prior store/load through the same pointer within
a block when no intervening instruction may write memory.

The buggy variant ``bug:gvn-flags`` treats instructions that differ only
in their poison flags as equal and keeps the *flagged* one — a classic
§8.2 "incorrect arithmetic" defect (the surviving instruction claims
``nsw`` on paths where the eliminated one did not).

Two further variants model the §8.2 "memory optimizations" class, both
rooted in over-strong alias assumptions:

* ``bug:gvn-alias-forward`` — load elimination keeps prior loads
  available across a store through a *different* SSA pointer, illegally
  forwarding across a may-alias store;
* ``bug:gvn-dse-alias`` — dead-store elimination lets only loads through
  the *same* SSA pointer keep a store alive, deleting stores still live
  through a second provenance of the same bytes (a zero-offset gep, a
  select of the pointer, ...).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.dominators import DominatorTree
from repro.ir.cfg import reverse_postorder
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Call,
    Cast,
    Gep,
    ICmp,
    Load,
    Select,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import Register, Value
from repro.opt.passmanager import register_pass
from repro.opt.util import replace_all_uses


def _operand_key(value: Value):
    if isinstance(value, Register):
        return ("reg", value.name)
    return ("const", str(value.type), str(value))


def _value_key(inst, ignore_flags: bool) -> Optional[Tuple]:
    if isinstance(inst, BinOp):
        flags = frozenset() if ignore_flags else inst.flags
        key = [
            "bin", inst.opcode, str(inst.type), flags,
            _operand_key(inst.lhs), _operand_key(inst.rhs),
        ]
        if inst.opcode in ("add", "mul", "and", "or", "xor"):
            ops = sorted([_operand_key(inst.lhs), _operand_key(inst.rhs)])
            key = ["bin", inst.opcode, str(inst.type), flags] + ops
        return tuple(key)
    if isinstance(inst, ICmp):
        return (
            "icmp", inst.pred, _operand_key(inst.lhs), _operand_key(inst.rhs)
        )
    if isinstance(inst, Cast):
        return ("cast", inst.opcode, str(inst.type), _operand_key(inst.operand))
    if isinstance(inst, Select):
        return (
            "select", str(inst.type), _operand_key(inst.cond),
            _operand_key(inst.on_true), _operand_key(inst.on_false),
        )
    if isinstance(inst, Gep):
        return (
            "gep", str(inst.source_type), inst.inbounds,
            _operand_key(inst.pointer),
            tuple(_operand_key(i) for i in inst.indices),
        )
    return None


@register_pass("gvn")
def gvn(fn: Function, module: Module, options: dict) -> bool:
    ignore_flags = options.get("bug:gvn-flags", False)
    changed = False
    dom = DominatorTree(fn)
    # name -> (block, key); visit in RPO so dominators come first.
    seen: Dict[Tuple, Tuple[str, str]] = {}
    for label in reverse_postorder(fn):
        block = fn.blocks[label]
        keep: List = []
        for inst in block.instructions:
            key = _value_key(inst, ignore_flags)
            if key is None:
                keep.append(inst)
                continue
            hit = seen.get(key)
            if hit is not None and dom.dominates(hit[1], label):
                replace_all_uses(fn, inst.name, Register(inst.type, hit[0]))
                changed = True
                continue
            seen[key] = (inst.name, label)
            keep.append(inst)
        block.instructions = keep
    if _eliminate_redundant_loads(
        fn, options.get("bug:gvn-alias-forward", False)
    ):
        changed = True
    if _eliminate_dead_stores(fn, options.get("bug:gvn-dse-alias", False)):
        changed = True
    return changed


def _eliminate_redundant_loads(
    fn: Function, forward_across_aliases: bool = False
) -> bool:
    changed = False
    for block in fn.blocks.values():
        available: Dict[Tuple, Value] = {}  # (ptr key, type) -> value
        keep: List = []
        for inst in block.instructions:
            if isinstance(inst, Store):
                key = (_operand_key(inst.pointer), str(inst.value.type))
                if forward_across_aliases:
                    # BUG: assumes syntactically distinct pointers never
                    # alias, so loads recorded before this store stay
                    # available — illegal forwarding when they do alias.
                    available[key] = inst.value
                else:
                    # A store may alias anything: invalidate, then record
                    # the stored value for its own pointer.
                    available = {key: inst.value}
                keep.append(inst)
            elif isinstance(inst, Load):
                key = (_operand_key(inst.pointer), str(inst.type))
                hit = available.get(key)
                if hit is not None:
                    replace_all_uses(fn, inst.name, hit)
                    changed = True
                    continue
                available[key] = Register(inst.type, inst.name)
                keep.append(inst)
            elif isinstance(inst, Call):
                available = {}
                keep.append(inst)
            else:
                keep.append(inst)
        block.instructions = keep
    return changed


def _eliminate_dead_stores(
    fn: Function, ignore_other_provenance: bool = False
) -> bool:
    """In-block dead-store elimination.

    A store is dead when a later store through the same pointer with the
    same width overwrites it before anything can observe the bytes.
    Loads and calls observe memory, so either one kills every pending
    candidate; stores still pending at block exit are kept (successors
    and the caller can observe them).  The buggy variant only lets a
    load through the *same* SSA pointer keep a store alive, so a load
    through a second provenance of the same bytes no longer protects it.
    """
    changed = False
    for block in fn.blocks.values():
        pending: Dict[Tuple, Store] = {}  # (ptr key, type) -> store
        dead: set = set()
        for inst in block.instructions:
            if isinstance(inst, Store):
                key = (_operand_key(inst.pointer), str(inst.value.type))
                prev = pending.get(key)
                if prev is not None:
                    dead.add(id(prev))
                pending[key] = inst
            elif isinstance(inst, Load):
                if ignore_other_provenance:
                    # BUG: a load through a different pointer is assumed
                    # not to alias any pending store.
                    pending.pop((_operand_key(inst.pointer), str(inst.type)), None)
                else:
                    pending.clear()
            elif isinstance(inst, Call):
                pending.clear()
        if dead:
            block.instructions = [
                i for i in block.instructions if id(i) not in dead
            ]
            changed = True
    return changed
