"""Global value numbering + simple redundant-load elimination.

Value numbering is dominance-based: an instruction is replaced by an
earlier, structurally identical one whose block dominates it.  Load
elimination forwards a prior store/load through the same pointer within
a block when no intervening instruction may write memory.

The buggy variant ``bug:gvn-flags`` treats instructions that differ only
in their poison flags as equal and keeps the *flagged* one — a classic
§8.2 "incorrect arithmetic" defect (the surviving instruction claims
``nsw`` on paths where the eliminated one did not).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.dominators import DominatorTree
from repro.ir.cfg import reverse_postorder
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Call,
    Cast,
    Gep,
    ICmp,
    Load,
    Select,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import Register, Value
from repro.opt.passmanager import register_pass
from repro.opt.util import replace_all_uses


def _operand_key(value: Value):
    if isinstance(value, Register):
        return ("reg", value.name)
    return ("const", str(value.type), str(value))


def _value_key(inst, ignore_flags: bool) -> Optional[Tuple]:
    if isinstance(inst, BinOp):
        flags = frozenset() if ignore_flags else inst.flags
        key = [
            "bin", inst.opcode, str(inst.type), flags,
            _operand_key(inst.lhs), _operand_key(inst.rhs),
        ]
        if inst.opcode in ("add", "mul", "and", "or", "xor"):
            ops = sorted([_operand_key(inst.lhs), _operand_key(inst.rhs)])
            key = ["bin", inst.opcode, str(inst.type), flags] + ops
        return tuple(key)
    if isinstance(inst, ICmp):
        return (
            "icmp", inst.pred, _operand_key(inst.lhs), _operand_key(inst.rhs)
        )
    if isinstance(inst, Cast):
        return ("cast", inst.opcode, str(inst.type), _operand_key(inst.operand))
    if isinstance(inst, Select):
        return (
            "select", str(inst.type), _operand_key(inst.cond),
            _operand_key(inst.on_true), _operand_key(inst.on_false),
        )
    if isinstance(inst, Gep):
        return (
            "gep", str(inst.source_type), inst.inbounds,
            _operand_key(inst.pointer),
            tuple(_operand_key(i) for i in inst.indices),
        )
    return None


@register_pass("gvn")
def gvn(fn: Function, module: Module, options: dict) -> bool:
    ignore_flags = options.get("bug:gvn-flags", False)
    changed = False
    dom = DominatorTree(fn)
    # name -> (block, key); visit in RPO so dominators come first.
    seen: Dict[Tuple, Tuple[str, str]] = {}
    for label in reverse_postorder(fn):
        block = fn.blocks[label]
        keep: List = []
        for inst in block.instructions:
            key = _value_key(inst, ignore_flags)
            if key is None:
                keep.append(inst)
                continue
            hit = seen.get(key)
            if hit is not None and dom.dominates(hit[1], label):
                replace_all_uses(fn, inst.name, Register(inst.type, hit[0]))
                changed = True
                continue
            seen[key] = (inst.name, label)
            keep.append(inst)
        block.instructions = keep
    if _eliminate_redundant_loads(fn):
        changed = True
    return changed


def _eliminate_redundant_loads(fn: Function) -> bool:
    changed = False
    for block in fn.blocks.values():
        available: Dict[Tuple, Value] = {}  # (ptr key, type) -> value
        keep: List = []
        for inst in block.instructions:
            if isinstance(inst, Store):
                # A store may alias anything: invalidate, then record the
                # stored value for its own pointer.
                available = {
                    (_operand_key(inst.pointer), str(inst.value.type)): inst.value
                }
                keep.append(inst)
            elif isinstance(inst, Load):
                key = (_operand_key(inst.pointer), str(inst.type))
                hit = available.get(key)
                if hit is not None:
                    replace_all_uses(fn, inst.name, hit)
                    changed = True
                    continue
                available[key] = Register(inst.type, inst.name)
                keep.append(inst)
            elif isinstance(inst, Call):
                available = {}
                keep.append(inst)
            else:
                keep.append(inst)
        block.instructions = keep
    return changed
