"""InstSimplify: fold instructions to existing values (no new instructions).

The model for the paper's running example (§8.2): a collection of
peephole folds that replace an instruction with a constant or an
already-available value.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.function import Function
from repro.ir.instructions import BinOp, ICmp, Select
from repro.ir.module import Module
from repro.ir.types import IntType
from repro.ir.values import ConstantInt, Register, Value
from repro.opt.passmanager import register_pass
from repro.opt.util import (
    const_int,
    is_all_ones,
    is_zero,
    replace_all_uses,
    same_register,
)


def _fold_binop(inst: BinOp) -> Optional[Value]:
    op = inst.opcode
    lhs, rhs = inst.lhs, inst.rhs
    ty = inst.type
    if not isinstance(ty, IntType):
        return None
    lc, rc = const_int(lhs), const_int(rhs)
    width = ty.width
    mask = (1 << width) - 1

    if lc is not None and rc is not None:
        # Full constant folding (poison-free operand case).
        table = {
            "add": lambda: lc + rc,
            "sub": lambda: lc - rc,
            "mul": lambda: lc * rc,
            "and": lambda: lc & rc,
            "or": lambda: lc | rc,
            "xor": lambda: lc ^ rc,
        }
        fn = table.get(op)
        if fn is not None:
            return ConstantInt(ty, fn() & mask)
        if op == "udiv" and rc != 0:
            return ConstantInt(ty, lc // rc)
        if op == "urem" and rc != 0:
            return ConstantInt(ty, lc % rc)
        if op in ("shl", "lshr") and rc < width:
            val = (lc << rc) if op == "shl" else (lc >> rc)
            return ConstantInt(ty, val & mask)

    if op == "add" and is_zero(rhs):
        return lhs
    if op == "add" and is_zero(lhs):
        return rhs
    if op == "sub" and is_zero(rhs):
        return lhs
    if op == "sub" and same_register(lhs, rhs):
        return ConstantInt(ty, 0)
    if op == "mul":
        if is_zero(rhs) or is_zero(lhs):
            return ConstantInt(ty, 0)
        if const_int(rhs) == 1:
            return lhs
        if const_int(lhs) == 1:
            return rhs
    if op == "and":
        if is_zero(rhs) or is_zero(lhs):
            return ConstantInt(ty, 0)
        if is_all_ones(rhs):
            return lhs
        if is_all_ones(lhs):
            return rhs
        if same_register(lhs, rhs):
            return lhs
    if op == "or":
        if is_zero(rhs):
            return lhs
        if is_zero(lhs):
            return rhs
        if is_all_ones(rhs) or is_all_ones(lhs):
            return ConstantInt(ty, mask)
        if same_register(lhs, rhs):
            return lhs
    if op == "xor":
        if is_zero(rhs):
            return lhs
        if is_zero(lhs):
            return rhs
        if same_register(lhs, rhs):
            return ConstantInt(ty, 0)
    if op == "udiv" and const_int(rhs) == 1:
        return lhs
    if op in ("shl", "lshr", "ashr") and is_zero(rhs):
        return lhs
    # NOTE: `udiv 0, x -> 0` would be wrong (x may be 0: UB must stay).
    return None


def _fold_icmp(inst: ICmp, defs) -> Optional[Value]:
    pred = inst.pred
    lhs, rhs = inst.lhs, inst.rhs
    i1 = IntType(1)
    if same_register(lhs, rhs):
        # x pred x — but only for poison-insensitive folds: icmp of a
        # register with itself still propagates poison, and true/false are
        # MORE defined, which is a valid refinement.
        if pred in ("eq", "ule", "uge", "sle", "sge"):
            return ConstantInt(i1, 1)
        if pred in ("ne", "ult", "ugt", "slt", "sgt"):
            return ConstantInt(i1, 0)
    lc, rc = const_int(lhs), const_int(rhs)
    if lc is not None and rc is not None and isinstance(lhs.type, IntType):
        w = lhs.type.width

        def signed(x):
            return x - (1 << w) if x >= 1 << (w - 1) else x

        table = {
            "eq": lc == rc, "ne": lc != rc,
            "ult": lc < rc, "ule": lc <= rc, "ugt": lc > rc, "uge": lc >= rc,
            "slt": signed(lc) < signed(rc), "sle": signed(lc) <= signed(rc),
            "sgt": signed(lc) > signed(rc), "sge": signed(lc) >= signed(rc),
        }
        return ConstantInt(i1, 1 if table[pred] else 0)
    # The paper's unit-test example: %m = max(%x, %y); icmp slt %m, %x is
    # always false.
    if pred in ("slt", "sgt") and isinstance(rhs, Register):
        sel = defs.get(lhs.name) if isinstance(lhs, Register) else None
        if isinstance(sel, Select) and isinstance(sel.cond, Register):
            cmp_def = defs.get(sel.cond.name)
            if (
                isinstance(cmp_def, ICmp)
                and cmp_def.pred == "sgt"
                and same_register(cmp_def.lhs, sel.on_true)
                and same_register(cmp_def.rhs, sel.on_false)
            ):
                # %m = select (sgt x y), x, y  — the smax pattern.
                if pred == "slt" and (
                    same_register(rhs, sel.on_true)
                    or same_register(rhs, sel.on_false)
                ):
                    return ConstantInt(i1, 0)
    return None


def _fold_select(inst: Select) -> Optional[Value]:
    cond_c = const_int(inst.cond)
    if cond_c is not None:
        return inst.on_true if cond_c else inst.on_false
    if (
        same_register(inst.on_true, inst.on_false)
        or inst.on_true == inst.on_false
    ):
        # select c, x, x -> x is only correct if c's poison may be dropped:
        # select on poison cond is poison, so this REMOVES poison — allowed.
        return inst.on_true
    return None


@register_pass("instsimplify")
def instsimplify(fn: Function, module: Module, options: dict) -> bool:
    changed = False
    while True:
        defs = fn.defined_names()
        local_change = False
        for block in fn.blocks.values():
            for inst in list(block.instructions):
                replacement: Optional[Value] = None
                if isinstance(inst, BinOp):
                    replacement = _fold_binop(inst)
                elif isinstance(inst, ICmp):
                    replacement = _fold_icmp(inst, defs)
                elif isinstance(inst, Select):
                    replacement = _fold_select(inst)
                if replacement is None:
                    continue
                replace_all_uses(fn, inst.name, replacement)
                block.instructions.remove(inst)
                local_change = True
        if not local_change:
            break
        changed = True
    return changed
