"""The optimizer under test.

Alive2 validates LLVM's optimizer; since LLVM itself is not available in
this reproduction, this package implements the optimizer substrate: a
pass manager and a set of intra-procedural passes covering the families
the paper's evaluation exercises (instsimplify, instcombine, DCE, GVN,
simplifycfg, mem2reg, LICM, reassociation/SLP).

Every pass is correct by default; :mod:`repro.opt.bugs` provides *buggy
variants* that reproduce the root causes of the miscompilation classes
reported in §8.2, so the evaluation harness can regenerate the paper's
bug-finding results against a compiler with realistic defects.
"""

from repro.opt.passmanager import PASS_REGISTRY, PassManager, run_pipeline

__all__ = ["PassManager", "run_pipeline", "PASS_REGISTRY"]
