"""Loop-invariant code motion.

Hoists loop-invariant, speculatable instructions into the preheader.
The buggy variant ``bug:licm-speculate-div`` also hoists division, which
speculates UB (division by zero) onto paths where the loop body never
ran — one of the §8.2 "loop optimizations incorrectly handling" class.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.ir.function import Function
from repro.ir.instructions import BinOp, Br, Cast, ICmp, Instruction, Select
from repro.ir.loops import LoopForest
from repro.ir.module import Module
from repro.ir.values import Register
from repro.opt.passmanager import register_pass


def _is_invariant(inst: Instruction, loop_defs: Set[str]) -> bool:
    return all(
        not (isinstance(op, Register) and op.name in loop_defs)
        for op in inst.operands
    )


def _speculatable(inst: Instruction, allow_div: bool) -> bool:
    if isinstance(inst, (ICmp, Select, Cast)):
        return True
    if isinstance(inst, BinOp):
        if inst.opcode in ("udiv", "sdiv", "urem", "srem"):
            return allow_div  # BUG when allowed: speculates division UB
        return True
    return False


def _preheader(fn: Function, header: str, body: Set[str]) -> Optional[str]:
    preds = [p for p in fn.predecessors()[header] if p not in body]
    if len(preds) != 1:
        return None
    pred_block = fn.blocks[preds[0]]
    term = pred_block.terminator
    if isinstance(term, Br) and term.cond is None:
        return preds[0]
    return None


@register_pass("licm")
def licm(fn: Function, module: Module, options: dict) -> bool:
    allow_div = options.get("bug:licm-speculate-div", False)
    forest = LoopForest(fn)
    changed = False
    for loop in forest.innermost_first():
        if loop.irreducible:
            continue
        pre = _preheader(fn, loop.header, loop.body)
        if pre is None:
            continue
        loop_defs: Set[str] = set()
        for label in loop.body:
            for inst in fn.blocks[label].instructions:
                name = getattr(inst, "name", None)
                if name is not None:
                    loop_defs.add(name)
        moved = True
        while moved:
            moved = False
            for label in list(loop.body):
                block = fn.blocks.get(label)
                if block is None:
                    continue
                for inst in list(block.instructions):
                    if inst.is_terminator() or not hasattr(inst, "name"):
                        continue
                    if not _speculatable(inst, allow_div):
                        continue
                    if not _is_invariant(inst, loop_defs):
                        continue
                    block.instructions.remove(inst)
                    pre_block = fn.blocks[pre]
                    pre_block.instructions.insert(
                        len(pre_block.instructions) - 1, inst
                    )
                    loop_defs.discard(inst.name)
                    moved = True
                    changed = True
    return changed
