"""Encoding of IR functions into SMT (§3 of the Alive2 paper).

The encoder works on the unrolled, loop-free CFG: one forward pass in
reverse postorder computes, per basic block, a *domain* (path condition),
a memory state, and symbolic values for every register.  Undefined
behaviour, noreturn exits, and unroll-sink reachability are accumulated
as disjunctions over path conditions.

Undef values follow §3.3: every register's value carries the set of its
quantified undef variables, and each *use* renames them to fresh
variables; ``freeze`` clears the set.  The per-register ``varies`` bit
implements the closed-form undef detection of §3.7 (used for
branch-on-undef UB and the return-undef refinement query).
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.pointsto import assign_alloca_bids
from repro.harness.deadline import Deadline
from repro.ir.cfg import remove_unreachable_blocks, reverse_postorder
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    ExtractElement,
    ExtractValue,
    FBinOp,
    FCmp,
    FNeg,
    Freeze,
    Gep,
    ICmp,
    InsertElement,
    InsertValue,
    Load,
    Phi,
    Ret,
    Select,
    ShuffleVector,
    Store,
    Switch,
    Unreachable,
)
from repro.ir.module import Module
from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
    VectorType,
    VoidType,
    byte_size,
)
from repro.ir.unroll import UnrollError, unroll_function
from repro.ir.values import (
    ConstantAggregate,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    GlobalRef,
    PoisonValue,
    Register,
    UndefValue,
    Value,
)
from repro.semantics import softfloat as sf
from repro.semantics.memory import (
    MemoryConfig,
    MemoryLayout,
    SymByte,
    SymMemory,
    build_layout,
)
from repro.semantics.value import SymAggregate, SymValue
from repro.smt.exists_forall import QuantVar
from repro.smt.terms import (
    FALSE,
    TRUE,
    BoolTerm,
    BvTerm,
    bool_and,
    bool_ite,
    bool_not,
    bool_or,
    bool_to_bv,
    bv_add,
    bv_and,
    bv_ashr,
    bv_concat,
    bv_const,
    bv_eq,
    bv_extract,
    bv_ite,
    bv_lshr,
    bv_mul,
    bv_or,
    bv_sdiv,
    bv_sext,
    bv_shl,
    bv_sle,
    bv_slt,
    bv_srem,
    bv_sub,
    bv_udiv,
    bv_ule,
    bv_ult,
    bv_urem,
    bv_var,
    bv_xor,
    bv_zext,
    fresh_name,
    substitute,
)


class EncodeError(Exception):
    """Raised for features the encoder does not support (§3.8)."""

    def __init__(self, feature: str) -> None:
        super().__init__(f"unsupported feature: {feature}")
        self.feature = feature


@dataclass
class CallRecord:
    """One call site, for the §6 pairing constraints."""

    callee: str
    dom: BoolTerm
    args: List[SymValue]
    result: Optional[SymValue]
    out_value_name: Optional[str]
    out_poison_name: Optional[str]
    writes_memory: bool
    reads_memory: bool
    index: int
    # min/max number of preceding calls to the same callee (the §6
    # quadratic-pruning dataflow fact).
    min_prior: int = 0
    max_prior: int = 0
    # Memory havoc variables: (bid, byte offset) -> (value var, poison var).
    havoc: Dict[Tuple[int, int], Tuple[str, str]] = field(default_factory=dict)


@dataclass
class EncodedFunction:
    """The SMT summary of one function (its final state, §3.6)."""

    fn: Function
    prefix: str
    layout: MemoryLayout
    ret_value: Optional[object]  # SymValue | SymAggregate | None
    ret_domain: BoolTerm = TRUE
    ub: BoolTerm = FALSE
    noreturn: BoolTerm = FALSE
    sink: BoolTerm = FALSE
    pre: BoolTerm = TRUE
    undef_vars: List[QuantVar] = field(default_factory=list)
    nondet_vars: List[QuantVar] = field(default_factory=list)
    final_memory: Optional[SymMemory] = None
    calls: List[CallRecord] = field(default_factory=list)
    approx_vars: Set[str] = field(default_factory=set)
    origin: Dict[str, str] = field(default_factory=dict)
    # Final symbolic value per SSA register (SymValue | SymAggregate):
    # consumed by the relational analysis to translate IR-level
    # congruence into term-level union seeds for the e-graph rung.
    regs: Dict[str, object] = field(default_factory=dict)

    @property
    def nondet_all(self) -> List[QuantVar]:
        return self.undef_vars + self.nondet_vars


def encode_function(
    fn: Function,
    module: Module,
    prefix: str,
    layout: Optional[MemoryLayout] = None,
    unroll_factor: int = 4,
    config: Optional[MemoryConfig] = None,
) -> EncodedFunction:
    """Encode ``fn`` (a definition in ``module``) into an SMT summary.

    ``prefix`` namespaces function-local variables ("src"/"tgt"); the
    function arguments and global contents use shared (unprefixed) names
    so a source/target pair meets on the same inputs.
    """
    work = _copy.deepcopy(fn)
    try:
        unroll_function(work, unroll_factor)
    except UnrollError as exc:
        raise EncodeError("irreducible-loop") from exc
    remove_unreachable_blocks(work)
    if layout is None:
        pointer_args = [
            a.name for a in work.args if isinstance(a.type, PointerType)
        ]
        num_allocas = sum(
            1 for inst in work.instructions() if isinstance(inst, Alloca)
        )
        layout = build_layout(module.globals, pointer_args, num_allocas, config)
    return _Encoder(work, module, prefix, layout).encode()


class _Encoder:
    def __init__(
        self,
        fn: Function,
        module: Module,
        prefix: str,
        layout: MemoryLayout,
        deadline: Optional[Deadline] = None,
        fold_known_bits: bool = False,
        memdf=None,
    ) -> None:
        self.fn = fn
        self.module = module
        self.prefix = prefix
        self.layout = layout
        self.deadline = deadline
        self.fold_known_bits = fold_known_bits
        # Memory dataflow facts (repro.analysis.memdf.MemDF) for this
        # function, or None: enables pruning the per-access ite chains
        # over blocks a points-to fact excludes.
        self.memdf = memdf
        self.regs: Dict[str, object] = {}
        self.reg_used: Set[str] = set()
        self.undef_vars: List[QuantVar] = []
        self.nondet_vars: List[QuantVar] = []
        self.pre_terms: List[BoolTerm] = [TRUE]
        self.ub_terms: List[BoolTerm] = []
        self.noret_terms: List[BoolTerm] = []
        self.sink_terms: List[BoolTerm] = []
        self.ret_records: List[Tuple[BoolTerm, Optional[object], SymMemory]] = []
        self.calls: List[CallRecord] = []
        self.approx_vars: Set[str] = set()
        self.origin: Dict[str, str] = {}
        self._alloca_bids = assign_alloca_bids(fn, layout)
        self._call_counts: Dict[str, int] = {}
        self._cur_name: Optional[str] = None

    # -- fresh variables --------------------------------------------------------
    def _fresh_undef(self, width: int, origin: Optional[str] = None) -> BvTerm:
        name = fresh_name(f"{self.prefix}.undef")
        self.undef_vars.append(QuantVar(name, width))
        if origin is not None:
            self.origin[name] = origin
        return bv_var(name, width)

    def _fresh_nondet(self, width: int, tag: str = "nd") -> BvTerm:
        name = fresh_name(f"{self.prefix}.{tag}")
        self.nondet_vars.append(QuantVar(name, width))
        self.origin[name] = tag
        return bv_var(name, width)

    # -- argument encoding (§3.2) -------------------------------------------------
    def _scalar_width(self, ty: Type) -> int:
        if isinstance(ty, PointerType):
            return self.layout.ptr_bits
        return ty.bit_width

    def _encode_argument(self, name: str, ty: Type, attrs: frozenset) -> object:
        from repro.smt.terms import bool_var

        if isinstance(ty, (VectorType, ArrayType)):
            elems = tuple(
                self._encode_argument(f"{name}.e{i}", ty.elem, attrs)
                for i in range(ty.count)
            )
            return SymAggregate(elems)  # type: ignore[arg-type]
        if isinstance(ty, StructType):
            elems = tuple(
                self._encode_argument(f"{name}.f{i}", field_ty, attrs)
                for i, field_ty in enumerate(ty.fields)
            )
            return SymAggregate(elems)  # type: ignore[arg-type]
        width = self._scalar_width(ty)
        value = bv_var(f"arg_{name}", width)  # shared input
        isundef = bool_var(f"isundef_{name}")  # shared input
        ispoison = bool_var(f"ispoison_{name}")  # shared input
        undef = self._fresh_undef(width, origin=f"argundef_{name}")
        expr = bv_ite(isundef, undef, value)
        sv = SymValue(expr, ispoison, frozenset({undef.payload}), isundef)
        if "noundef" in attrs:
            self.ub_terms.append(bool_or(isundef, ispoison))
        if "nonnull" in attrs and isinstance(ty, PointerType):
            zero = bv_const(0, width)
            self.pre_terms.append(bool_not(bv_eq(value, zero)))
        if isinstance(ty, PointerType):
            # Constrain the defined value to null or the argument's block
            # at a caller-chosen offset (our pointer args do not alias each
            # other or globals; see DESIGN.md).
            block = self._block_for_arg(name)
            if block is None:
                # Element of an aggregate-of-pointers: unsupported for now.
                raise EncodeError("aggregate-of-pointers")
            bid = bv_extract(
                value, width - 1, self.layout.config.off_bits
            )
            valid = bool_or(
                bv_eq(value, bv_const(0, width)),
                bv_eq(bid, bv_const(block, bid.width)),
            )
            self.pre_terms.append(valid)
        return sv

    def _block_for_arg(self, name: str) -> Optional[int]:
        for info in self.layout.shared_blocks:
            if info.name == f"%{name}":
                return info.bid
        return None

    # -- operand reading (undef renaming, §3.3) -----------------------------------
    def _read(self, value: Value) -> object:
        if isinstance(value, Register):
            sv = self.regs.get(value.name)
            if sv is None:
                raise EncodeError(f"undefined-register-{value.name}")
            if value.name in self.reg_used:
                sv = self._rename_undef(sv)
            else:
                self.reg_used.add(value.name)
            return sv
        if isinstance(value, ConstantInt):
            return SymValue(bv_const(value.value, value.type.width))
        if isinstance(value, ConstantFloat):
            return SymValue(bv_const(value.bits, value.type.bit_width))
        if isinstance(value, ConstantNull):
            return SymValue(bv_const(0, self.layout.ptr_bits))
        if isinstance(value, PoisonValue):
            return self._poison_of_type(value.type)
        if isinstance(value, UndefValue):
            return self._undef_of_type(value.type)
        if isinstance(value, ConstantAggregate):
            return SymAggregate(tuple(self._read(e) for e in value.elems))
        if isinstance(value, GlobalRef):
            bid = self._bid_of_global(value.name)
            return SymValue(
                bv_concat(
                    bv_const(bid, self.layout.bid_bits),
                    bv_const(0, self.layout.config.off_bits),
                )
            )
        raise EncodeError(f"operand-{type(value).__name__}")

    def _bid_of_global(self, name: str) -> int:
        for info in self.layout.shared_blocks:
            if info.name == f"@{name}":
                return info.bid
        raise EncodeError(f"unknown-global-{name}")

    def _poison_of_type(self, ty: Type) -> object:
        if isinstance(ty, (VectorType, ArrayType)):
            return SymAggregate(
                tuple(self._poison_of_type(ty.elem) for _ in range(ty.count))
            )
        if isinstance(ty, StructType):
            return SymAggregate(
                tuple(self._poison_of_type(f) for f in ty.fields)
            )
        return SymValue(bv_const(0, self._scalar_width(ty)), TRUE)

    def _undef_of_type(self, ty: Type) -> object:
        if isinstance(ty, (VectorType, ArrayType)):
            return SymAggregate(
                tuple(self._undef_of_type(ty.elem) for _ in range(ty.count))
            )
        if isinstance(ty, StructType):
            return SymAggregate(
                tuple(self._undef_of_type(f) for f in ty.fields)
            )
        u = self._fresh_undef(self._scalar_width(ty))
        return SymValue(u, FALSE, frozenset({u.payload}), TRUE)

    def _rename_undef(self, sv: object) -> object:
        if isinstance(sv, SymAggregate):
            return SymAggregate(tuple(self._rename_undef(e) for e in sv.elems))
        assert isinstance(sv, SymValue)
        sv = sv.normalized()
        if not sv.undef_vars:
            return sv
        mapping: Dict[str, BvTerm] = {}
        new_names = set()
        for name in sv.undef_vars:
            width = _width_of_var(name, self.undef_vars)
            fresh = self._fresh_undef(width, origin=self.origin.get(name))
            mapping[name] = fresh
            new_names.add(fresh.payload)
        return SymValue(
            substitute(sv.expr, mapping),
            substitute(sv.poison, mapping),
            frozenset(new_names),
            sv.varies,
        )

    # -- main walk ------------------------------------------------------------------
    def encode(self) -> EncodedFunction:
        fn = self.fn
        for arg in fn.args:
            self.regs[arg.name] = self._encode_argument(arg.name, arg.type, arg.attrs)

        order = reverse_postorder(fn)
        dom: Dict[str, BoolTerm] = {label: FALSE for label in order}
        dom[order[0]] = TRUE
        edge_cond: Dict[Tuple[str, str], BoolTerm] = {}
        mem_out: Dict[str, SymMemory] = {}
        init_mem = SymMemory.initial(self.layout, self.module.globals, self.prefix)

        for label in order:
            # Cooperative checkpoint: unrolled functions can have thousands
            # of blocks, and encoding must stay inside the job deadline.
            if self.deadline is not None:
                self.deadline.check("encode")
            block = fn.blocks[label]
            block_dom = dom[label]
            # Merge memory from predecessors.
            preds = [
                p
                for p in fn.predecessors()[label]
                if p in mem_out and (p, label) in edge_cond
            ]
            if not preds:
                mem = init_mem.clone()
            else:
                mem = mem_out[preds[0]].clone()
                for p in preds[1:]:
                    cond = bool_and(dom[p], edge_cond[(p, label)])
                    mem = SymMemory.merge(cond, mem_out[p].clone(), mem)
            if label in fn.sink_labels:
                self.sink_terms.append(block_dom)
                mem_out[label] = mem
                continue
            # Phi nodes first (they read on the incoming edges).
            for phi in block.phis():
                self.regs[phi.name] = self._encode_phi(phi, dom, edge_cond)
                self._fold_reg(phi.name)
            alive = block_dom
            for inst in block.non_phi_instructions():
                if inst.is_terminator():
                    self._encode_terminator(
                        inst, label, alive, dom, edge_cond, mem
                    )
                    break
                alive = self._encode_instruction(inst, alive, mem)
                self._fold_reg(getattr(inst, "name", None))
                if alive is FALSE:
                    break
            mem_out[label] = mem

        return self._finalize(init_mem)

    def _finalize(self, init_mem: SymMemory) -> EncodedFunction:
        ub = bool_or(*self.ub_terms) if self.ub_terms else FALSE
        noreturn = bool_or(*self.noret_terms) if self.noret_terms else FALSE
        sink = bool_or(*self.sink_terms) if self.sink_terms else FALSE
        pre = bool_and(*self.pre_terms)

        ret_value: Optional[object] = None
        ret_domain = FALSE
        final_memory: Optional[SymMemory] = None
        for dom_b, value, mem in self.ret_records:
            ret_domain = bool_or(ret_domain, dom_b)
            if final_memory is None:
                final_memory = mem
                ret_value = value
            else:
                final_memory = SymMemory.merge(dom_b, mem, final_memory)
                if value is not None:
                    ret_value = _merge_values(dom_b, value, ret_value)
        if final_memory is None:
            final_memory = init_mem

        return EncodedFunction(
            fn=self.fn,
            prefix=self.prefix,
            layout=self.layout,
            ret_value=ret_value,
            ret_domain=ret_domain,
            ub=ub,
            noreturn=noreturn,
            sink=sink,
            pre=pre,
            undef_vars=self.undef_vars,
            nondet_vars=self.nondet_vars,
            final_memory=final_memory,
            calls=self.calls,
            approx_vars=self.approx_vars,
            origin=self.origin,
            regs=dict(self.regs),
        )

    # -- phi ------------------------------------------------------------------------
    def _encode_phi(
        self,
        phi: Phi,
        dom: Dict[str, BoolTerm],
        edge_cond: Dict[Tuple[str, str], BoolTerm],
    ) -> object:
        result: Optional[object] = None
        for value, pred in phi.incoming:
            cond = bool_and(
                dom.get(pred, FALSE), edge_cond.get((pred, _phi_block(phi, self.fn)), FALSE)
            )
            if cond is FALSE:
                continue
            sv = self._read(value)
            sv = _coerce_shape(sv, phi.type, self)
            if result is None:
                result = sv
            else:
                result = _merge_values(cond, sv, result)
        if result is None:
            result = self._poison_of_type(phi.type)
        return result

    # -- terminators ------------------------------------------------------------------
    def _encode_terminator(
        self,
        inst,
        label: str,
        alive: BoolTerm,
        dom: Dict[str, BoolTerm],
        edge_cond: Dict[Tuple[str, str], BoolTerm],
        mem: SymMemory,
    ) -> None:
        if isinstance(inst, Ret):
            value = None
            if inst.value is not None:
                value = self._read(inst.value)
            self.ret_records.append((alive, value, mem.clone()))
            return
        if isinstance(inst, Br):
            if inst.cond is None:
                self._add_edge(label, inst.true_label, TRUE, alive, dom, edge_cond)
                return
            sv = self._read(inst.cond)
            assert isinstance(sv, SymValue)
            # Branching on undef or poison is UB (§2).
            self.ub_terms.append(bool_and(alive, bool_or(sv.poison, sv.varies)))
            taken = bv_eq(sv.expr, bv_const(1, 1))
            self._add_edge(label, inst.true_label, taken, alive, dom, edge_cond)
            self._add_edge(
                label, inst.false_label, bool_not(taken), alive, dom, edge_cond
            )
            return
        if isinstance(inst, Switch):
            sv = self._read(inst.value)
            assert isinstance(sv, SymValue)
            self.ub_terms.append(bool_and(alive, bool_or(sv.poison, sv.varies)))
            not_any = TRUE
            for case_value, case_label in inst.cases:
                cv = self._read(case_value)
                assert isinstance(cv, SymValue)
                cond = bv_eq(sv.expr, cv.expr)
                self._add_edge(label, case_label, cond, alive, dom, edge_cond)
                not_any = bool_and(not_any, bool_not(cond))
            self._add_edge(label, inst.default_label, not_any, alive, dom, edge_cond)
            return
        if isinstance(inst, Unreachable):
            self.ub_terms.append(alive)
            return
        raise EncodeError(f"terminator-{type(inst).__name__}")

    def _add_edge(
        self,
        src: str,
        dst: str,
        cond: BoolTerm,
        alive: BoolTerm,
        dom: Dict[str, BoolTerm],
        edge_cond: Dict[Tuple[str, str], BoolTerm],
    ) -> None:
        prev = edge_cond.get((src, dst), FALSE)
        edge_cond[(src, dst)] = bool_or(prev, cond)
        if dst in dom:
            dom[dst] = bool_or(dom[dst], bool_and(alive, cond))

    # -- non-terminator instructions -----------------------------------------------
    def _encode_instruction(self, inst, alive: BoolTerm, mem: SymMemory) -> BoolTerm:
        """Encode one instruction; returns the (possibly reduced) domain."""
        self._cur_name = getattr(inst, "name", None)
        if isinstance(inst, BinOp):
            self.regs[inst.name] = self._map_binary(
                inst.type,
                self._read(inst.lhs),
                self._read(inst.rhs),
                lambda a, b, ty: self._int_binop(inst, a, b, ty, alive),
            )
            return alive
        if isinstance(inst, ICmp):
            op_ty = inst.lhs.type
            elem_ty = op_ty.elem if isinstance(op_ty, VectorType) else op_ty
            self.regs[inst.name] = self._map_binary(
                inst.type,
                self._read(inst.lhs),
                self._read(inst.rhs),
                lambda a, b, _ty: self._icmp(inst.pred, a, b, elem_ty),
            )
            return alive
        if isinstance(inst, FBinOp):
            self.regs[inst.name] = self._map_binary(
                inst.type,
                self._read(inst.lhs),
                self._read(inst.rhs),
                lambda a, b, ty: self._fp_binop(inst, a, b, ty),
            )
            return alive
        if isinstance(inst, FNeg):
            sv = self._read(inst.operand)
            ty = inst.type
            if isinstance(ty, VectorType):
                assert isinstance(sv, SymAggregate)
                self.regs[inst.name] = SymAggregate(
                    tuple(
                        SymValue(
                            sf.fp_neg(ty.elem, e.expr), e.poison, e.undef_vars, e.varies
                        )
                        for e in sv.elems
                    )
                )
            else:
                assert isinstance(sv, SymValue)
                self.regs[inst.name] = SymValue(
                    sf.fp_neg(ty, sv.expr), sv.poison, sv.undef_vars, sv.varies
                )
            return alive
        if isinstance(inst, FCmp):
            op_ty = inst.lhs.type
            elem_ty = op_ty.elem if isinstance(op_ty, VectorType) else op_ty
            self.regs[inst.name] = self._map_binary(
                inst.type,
                self._read(inst.lhs),
                self._read(inst.rhs),
                lambda a, b, _ty: self._fcmp(inst, a, b, elem_ty),
            )
            return alive
        if isinstance(inst, Select):
            cond = self._read(inst.cond)
            tv = self._read(inst.on_true)
            fv = self._read(inst.on_false)
            tv = _coerce_shape(tv, inst.type, self)
            fv = _coerce_shape(fv, inst.type, self)
            assert isinstance(cond, SymValue)
            taken = bv_eq(cond.expr, bv_const(1, 1))
            merged = _merge_values(taken, tv, fv)
            self.regs[inst.name] = _poison_if(
                cond.poison, _varies_or(merged, cond.varies)
            )
            return alive
        if isinstance(inst, Freeze):
            self.regs[inst.name] = self._freeze(self._read(inst.operand))
            return alive
        if isinstance(inst, Cast):
            self.regs[inst.name] = self._cast(inst)
            return alive
        if isinstance(inst, Alloca):
            # Bids come from the shared syntactic assignment so the
            # points-to facts and the encoding name the same blocks.
            bid = self._alloca_bids[inst.name]
            size = byte_size(inst.allocated_type)
            mem.add_local_block(bid, f"%{inst.name}", size)
            self.regs[inst.name] = SymValue(mem.make_pointer(bid, 0))
            return alive
        if isinstance(inst, Load):
            return self._load(inst, alive, mem)
        if isinstance(inst, Store):
            return self._store(inst, alive, mem)
        if isinstance(inst, Gep):
            self.regs[inst.name] = self._gep(inst, mem)
            return alive
        if isinstance(inst, Call):
            return self._call(inst, alive, mem)
        if isinstance(inst, ExtractValue):
            agg = self._read(inst.aggregate)
            for idx in inst.indices:
                assert isinstance(agg, SymAggregate), "extractvalue of scalar"
                agg = agg.elems[idx]
            self.regs[inst.name] = agg
            return alive
        if isinstance(inst, InsertValue):
            agg = self._read(inst.aggregate)
            elem = self._read(inst.element)
            self.regs[inst.name] = _insert_at(agg, elem, inst.indices)
            return alive
        if isinstance(inst, ExtractElement):
            return self._extractelement(inst, alive)
        if isinstance(inst, InsertElement):
            return self._insertelement(inst, alive)
        if isinstance(inst, ShuffleVector):
            return self._shufflevector(inst, alive)
        raise EncodeError(f"instruction-{type(inst).__name__}")

    def _fold_reg(self, name) -> None:
        """Replace fully-determined bits of a register with constants.

        Term-level known-bits facts (:mod:`repro.analysis.termfacts`)
        hold for *every* assignment, so swapping a fully-determined expr
        for its constant — or a decided poison bit for TRUE/FALSE —
        preserves the encoded semantics while shrinking what reaches the
        bit-blaster (the paper's §3.7 formula-shrinking idea).
        """
        if not self.fold_known_bits or name is None:
            return
        folded = _fold_value(self.regs.get(name))
        if folded is not None:
            self.regs[name] = folded

    # -- scalars ---------------------------------------------------------------------
    def _map_binary(self, ty: Type, lhs, rhs, fn) -> object:
        if isinstance(ty, (VectorType, ArrayType)):
            lhs_elems = _as_elems(lhs, ty.count, self)
            rhs_elems = _as_elems(rhs, ty.count, self)
            return SymAggregate(
                tuple(
                    fn(a, b, ty.elem) for a, b in zip(lhs_elems, rhs_elems)
                )
            )
        return fn(lhs, rhs, ty)

    def _int_binop(
        self, inst: BinOp, a: SymValue, b: SymValue, ty: IntType, alive: BoolTerm
    ) -> SymValue:
        op = inst.opcode
        w = ty.width
        x, y = a.expr, b.expr
        poison = bool_or(a.poison, b.poison)
        undef = a.undef_vars | b.undef_vars
        varies = bool_or(a.varies, b.varies)
        extra_poison = FALSE

        if op in ("udiv", "urem", "sdiv", "srem"):
            # udiv-ub (Fig. 3): divisor poison, undef-can-be-zero, or zero.
            zero = bv_const(0, w)
            self.ub_terms.append(
                bool_and(alive, bool_or(b.poison, bv_eq(y, zero)))
            )
            if op in ("sdiv", "srem"):
                int_min = bv_const(1 << (w - 1), w)
                minus1 = bv_const((1 << w) - 1, w)
                self.ub_terms.append(
                    bool_and(
                        alive,
                        bool_not(b.poison),
                        bool_not(a.poison),
                        bv_eq(x, int_min),
                        bv_eq(y, minus1),
                    )
                )
            poison = bool_or(a.poison, b.poison)

        if op == "add":
            expr = bv_add(x, y)
            if "nsw" in inst.flags:
                xs, ys = bv_sext(x, w + 1), bv_sext(y, w + 1)
                wide = bv_add(xs, ys)
                extra_poison = bool_or(
                    extra_poison, bool_not(bv_eq(wide, bv_sext(expr, w + 1)))
                )
            if "nuw" in inst.flags:
                xz, yz = bv_zext(x, w + 1), bv_zext(y, w + 1)
                wide = bv_add(xz, yz)
                extra_poison = bool_or(
                    extra_poison, bool_not(bv_eq(wide, bv_zext(expr, w + 1)))
                )
        elif op == "sub":
            expr = bv_sub(x, y)
            if "nsw" in inst.flags:
                wide = bv_sub(bv_sext(x, w + 1), bv_sext(y, w + 1))
                extra_poison = bool_or(
                    extra_poison, bool_not(bv_eq(wide, bv_sext(expr, w + 1)))
                )
            if "nuw" in inst.flags:
                extra_poison = bool_or(extra_poison, bv_ult(x, y))
        elif op == "mul":
            expr = bv_mul(x, y)
            if "nsw" in inst.flags:
                wide = bv_mul(bv_sext(x, 2 * w), bv_sext(y, 2 * w))
                extra_poison = bool_or(
                    extra_poison, bool_not(bv_eq(wide, bv_sext(expr, 2 * w)))
                )
            if "nuw" in inst.flags:
                wide = bv_mul(bv_zext(x, 2 * w), bv_zext(y, 2 * w))
                extra_poison = bool_or(
                    extra_poison, bool_not(bv_eq(wide, bv_zext(expr, 2 * w)))
                )
        elif op == "udiv":
            expr = bv_udiv(x, y)
            if "exact" in inst.flags:
                extra_poison = bool_or(
                    extra_poison,
                    bool_not(bv_eq(bv_urem(x, y), bv_const(0, w))),
                )
        elif op == "urem":
            expr = bv_urem(x, y)
        elif op == "sdiv":
            expr = bv_sdiv(x, y)
            if "exact" in inst.flags:
                extra_poison = bool_or(
                    extra_poison,
                    bool_not(bv_eq(bv_srem(x, y), bv_const(0, w))),
                )
        elif op == "srem":
            expr = bv_srem(x, y)
        elif op in ("shl", "lshr", "ashr"):
            # Shifting by >= bit-width yields poison (§2).
            too_far = bool_not(bv_ult(y, bv_const(w, w)))
            extra_poison = bool_or(extra_poison, too_far)
            if op == "shl":
                expr = bv_shl(x, y)
                if "nsw" in inst.flags:
                    back = bv_ashr(expr, y)
                    extra_poison = bool_or(extra_poison, bool_not(bv_eq(back, x)))
                if "nuw" in inst.flags:
                    back = bv_lshr(expr, y)
                    extra_poison = bool_or(extra_poison, bool_not(bv_eq(back, x)))
            elif op == "lshr":
                expr = bv_lshr(x, y)
                if "exact" in inst.flags:
                    back = bv_shl(expr, y)
                    extra_poison = bool_or(extra_poison, bool_not(bv_eq(back, x)))
            else:
                expr = bv_ashr(x, y)
                if "exact" in inst.flags:
                    back = bv_shl(expr, y)
                    extra_poison = bool_or(extra_poison, bool_not(bv_eq(back, x)))
        elif op == "and":
            expr = bv_and(x, y)
        elif op == "or":
            expr = bv_or(x, y)
        elif op == "xor":
            expr = bv_xor(x, y)
        else:
            raise EncodeError(f"binop-{op}")
        return SymValue(expr, bool_or(poison, extra_poison), undef, varies).normalized()

    def _icmp(self, pred: str, a: SymValue, b: SymValue, ty: Type) -> SymValue:
        x, y = a.expr, b.expr
        if isinstance(ty, PointerType) and pred not in ("eq", "ne"):
            raise EncodeError("pointer-relational-compare")
        table = {
            "eq": lambda: bv_eq(x, y),
            "ne": lambda: bool_not(bv_eq(x, y)),
            "ugt": lambda: bv_ult(y, x),
            "uge": lambda: bv_ule(y, x),
            "ult": lambda: bv_ult(x, y),
            "ule": lambda: bv_ule(x, y),
            "sgt": lambda: bv_slt(y, x),
            "sge": lambda: bv_sle(y, x),
            "slt": lambda: bv_slt(x, y),
            "sle": lambda: bv_sle(x, y),
        }
        return SymValue(
            bool_to_bv(table[pred]()),
            bool_or(a.poison, b.poison),
            a.undef_vars | b.undef_vars,
            bool_or(a.varies, b.varies),
        ).normalized()

    def _fp_binop(self, inst: FBinOp, a: SymValue, b: SymValue, ty: FloatType) -> SymValue:
        fmf = inst.fmf
        x, y = a.expr, b.expr
        if inst.opcode == "fadd":
            expr = sf.fp_add(ty, x, y)
        elif inst.opcode == "fsub":
            expr = sf.fp_sub(ty, x, y)
        elif inst.opcode == "fmul":
            expr = sf.fp_mul(ty, x, y)
        elif inst.opcode == "fdiv":
            expr = sf.fp_div(ty, x, y)
        else:
            raise EncodeError(f"fp-{inst.opcode}")  # frem: like Alive2 (§3.5)
        # A NaN result has a nondeterministic payload: semantically floats
        # carry a single NaN (SMT FPA / §3.5); the payload only becomes
        # observable through bitcast, where it is unconstrained.  Without
        # this, folds like `fmul x, 1.0 -> x` would be misreported because
        # our circuits canonicalize payloads.
        nan_nd = self._fresh_nondet(ty.bit_width, f"fpnan_{self._cur_name}")
        self.pre_terms.append(sf.fp_is_nan(ty, nan_nd))
        expr = bv_ite(sf.fp_is_nan(ty, expr), nan_nd, expr)
        poison = bool_or(a.poison, b.poison)
        if "nnan" in fmf or "fast" in fmf:
            poison = bool_or(
                poison,
                sf.fp_is_nan(ty, x),
                sf.fp_is_nan(ty, y),
                sf.fp_is_nan(ty, expr),
            )
        if "ninf" in fmf or "fast" in fmf:
            poison = bool_or(
                poison,
                sf.fp_is_inf(ty, x),
                sf.fp_is_inf(ty, y),
                sf.fp_is_inf(ty, expr),
            )
        if "nsz" in fmf or "fast" in fmf:
            # The result may be +/-0 nondeterministically when it is zero.
            sign_choice = self._fresh_nondet(1, f"nsz_{self._cur_name}")
            is_zero = sf.fp_is_zero(ty, expr)
            flipped = bv_xor(
                expr,
                bv_ite(
                    bool_and(is_zero, bv_eq(sign_choice, bv_const(1, 1))),
                    bv_const(1 << (ty.bit_width - 1), ty.bit_width),
                    bv_const(0, ty.bit_width),
                ),
            )
            expr = flipped
        return SymValue(
            expr, poison, a.undef_vars | b.undef_vars, bool_or(a.varies, b.varies)
        ).normalized()

    def _fcmp(self, inst: FCmp, a: SymValue, b: SymValue, ty: FloatType) -> SymValue:
        x, y = a.expr, b.expr
        pred = inst.pred
        lt = sf.fp_lt(ty, x, y)
        gt = sf.fp_lt(ty, y, x)
        eq = sf.fp_eq(ty, x, y)
        uno = sf.fp_unordered(ty, x, y)
        table = {
            "false": FALSE,
            "oeq": eq,
            "ogt": gt,
            "oge": bool_or(gt, eq),
            "olt": lt,
            "ole": bool_or(lt, eq),
            "one": bool_or(lt, gt),
            "ord": bool_not(uno),
            "ueq": bool_or(uno, eq),
            "ugt": bool_or(uno, gt),
            "uge": bool_or(uno, gt, eq),
            "ult": bool_or(uno, lt),
            "ule": bool_or(uno, lt, eq),
            "une": bool_or(uno, lt, gt),
            "uno": uno,
            "true": TRUE,
        }
        poison = bool_or(a.poison, b.poison)
        if "nnan" in inst.fmf or "fast" in inst.fmf:
            poison = bool_or(poison, uno)
        return SymValue(
            bool_to_bv(table[pred]),
            poison,
            a.undef_vars | b.undef_vars,
            bool_or(a.varies, b.varies),
        ).normalized()

    def _freeze(self, sv: object) -> object:
        if isinstance(sv, SymAggregate):
            return SymAggregate(tuple(self._freeze(e) for e in sv.elems))
        assert isinstance(sv, SymValue)
        if sv.poison is FALSE and not sv.undef_vars:
            return sv
        choice = self._fresh_nondet(sv.expr.width, f"freeze_{self._cur_name}")
        expr = bv_ite(sv.poison, choice, sv.expr)
        return SymValue(expr, FALSE, frozenset(), FALSE)

    def _cast(self, inst: Cast) -> object:
        sv = self._read(inst.operand)
        src_ty = inst.operand.type
        dst_ty = inst.type
        op = inst.opcode
        if op in ("ptrtoint", "inttoptr"):
            raise EncodeError("ptr-int-cast")
        if isinstance(dst_ty, VectorType) and isinstance(src_ty, VectorType):
            elems = _as_elems(sv, src_ty.count, self)
            return SymAggregate(
                tuple(
                    self._cast_scalar(op, e, src_ty.elem, dst_ty.elem)
                    for e in elems
                )
            )
        if isinstance(dst_ty, VectorType) != isinstance(src_ty, VectorType):
            # bitcast between vector and scalar of equal total width.
            if op != "bitcast":
                raise EncodeError(f"cast-shape-{op}")
            return self._bitcast_shape(sv, src_ty, dst_ty)
        assert isinstance(sv, SymValue)
        return self._cast_scalar(op, sv, src_ty, dst_ty)

    def _cast_scalar(self, op: str, sv: SymValue, src_ty: Type, dst_ty: Type) -> SymValue:
        x = sv.expr
        if op == "zext":
            expr = bv_zext(x, dst_ty.bit_width)
        elif op == "sext":
            expr = bv_sext(x, dst_ty.bit_width)
        elif op == "trunc":
            expr = bv_extract(x, dst_ty.bit_width - 1, 0)
        elif op == "bitcast":
            if isinstance(src_ty, FloatType) and isinstance(dst_ty, IntType):
                # NaN gets a nondeterministic payload (§3.5, semantics #2).
                nd = self._fresh_nondet(dst_ty.bit_width, f"nanbits_{self._cur_name}")
                fb, eb = src_ty.frac_bits, src_ty.exp_bits
                exp_ones = bv_const((1 << eb) - 1, eb)
                nd_exp = bv_extract(nd, fb + eb - 1, fb)
                nd_frac = bv_extract(nd, fb - 1, 0)
                is_nan_nd = bool_and(
                    bv_eq(nd_exp, exp_ones),
                    bool_not(bv_eq(nd_frac, bv_const(0, fb))),
                )
                self.pre_terms.append(is_nan_nd)
                expr = bv_ite(sf.fp_is_nan(src_ty, x), nd, x)
            else:
                if _bits_of(src_ty, self) != _bits_of(dst_ty, self):
                    raise EncodeError("bitcast-width-mismatch")
                expr = x
        elif op in ("fpext", "fptrunc", "fptoui", "fptosi", "uitofp", "sitofp"):
            expr = self._fp_convert(op, x, src_ty, dst_ty, sv)
            if isinstance(expr, SymValue):
                return expr
        else:
            raise EncodeError(f"cast-{op}")
        return SymValue(expr, sv.poison, sv.undef_vars, sv.varies).normalized()

    def _fp_convert(self, op: str, x: BvTerm, src_ty: Type, dst_ty: Type, sv: SymValue):
        # Conversions between our scaled formats are implemented by table
        # over the (small) source domain only for fpext/fptrunc; int<->fp
        # go through comparisons of exactly representable values.
        raise EncodeError(f"cast-{op}")

    def _bitcast_shape(self, sv: object, src_ty: Type, dst_ty: Type) -> object:
        # Concatenate source scalars and re-split for the destination.
        if isinstance(src_ty, VectorType):
            elems = _as_elems(sv, src_ty.count, self)
            expr = elems[0].expr
            poison = elems[0].poison
            undef = elems[0].undef_vars
            varies = elems[0].varies
            for e in elems[1:]:
                expr = bv_concat(e.expr, expr)
                poison = bool_or(poison, e.poison)
                undef = undef | e.undef_vars
                varies = bool_or(varies, e.varies)
            whole = SymValue(expr, poison, undef, varies)
        else:
            assert isinstance(sv, SymValue)
            whole = sv
        if isinstance(dst_ty, VectorType):
            width = dst_ty.elem.bit_width
            elems = tuple(
                SymValue(
                    bv_extract(whole.expr, (i + 1) * width - 1, i * width),
                    whole.poison,
                    whole.undef_vars,
                    whole.varies,
                )
                for i in range(dst_ty.count)
            )
            return SymAggregate(elems)
        return whole

    # -- memory instructions -------------------------------------------------------
    def _pointer_operand(self, value: Value) -> SymValue:
        sv = self._read(value)
        assert isinstance(sv, SymValue), "pointers are scalars"
        return sv

    def _candidate_bids(self, pointer, mem: SymMemory):
        """Points-to candidate bids for an access through ``pointer``.

        ``None`` (no restriction) without memdf facts or when the fact is
        ⊤.  Sound to restrict the access ite-chains to these blocks: the
        points-to contract pins the concrete bid of a defined pointer to
        the candidate set under the encoder precondition, every query
        conjoins that precondition, and poison/undef pointers take the
        access-UB path regardless.
        """
        if self.memdf is None:
            return None
        pts = self.memdf.pointer_fact(pointer)
        if pts.bids is None:
            return None
        from repro.analysis.memdf import STATS as _MEMDF_STATS

        skipped = sum(1 for b in mem.infos if b not in pts.bids)
        if skipped:
            _MEMDF_STATS.narrowed_accesses += 1
            _MEMDF_STATS.block_skips += skipped
        return pts.bids

    def _load(self, inst: Load, alive: BoolTerm, mem: SymMemory) -> BoolTerm:
        ptr = self._pointer_operand(inst.pointer)
        nbytes = byte_size(inst.type)
        bid, off = mem.decode_pointer(ptr.expr)
        cand = self._candidate_bids(inst.pointer, mem)
        ub = bool_or(
            ptr.poison,
            ptr.varies,
            bool_not(mem._valid_range(bid, off, nbytes, cand)),
        )
        self.ub_terms.append(bool_and(alive, ub))
        data = mem.load_bytes(bid, off, nbytes, cand)
        self.regs[inst.name] = self._value_from_bytes(data, inst.type)
        return alive

    def _value_from_bytes(self, data: List[SymByte], ty: Type) -> object:
        if isinstance(ty, (VectorType, ArrayType)):
            per = byte_size(ty.elem)
            return SymAggregate(
                tuple(
                    self._value_from_bytes(data[i * per : (i + 1) * per], ty.elem)
                    for i in range(ty.count)
                )
            )
        want_ptr = isinstance(ty, PointerType)
        poison = FALSE
        undef: frozenset = frozenset()
        expr: Optional[BvTerm] = None
        for byte in data:
            poison = bool_or(poison, byte.poison)
            mismatched = bool_not(byte.is_ptr) if want_ptr else byte.is_ptr
            poison = bool_or(poison, mismatched)
            undef = undef | byte.undef_vars
            expr = byte.value if expr is None else bv_concat(byte.value, expr)
        assert expr is not None
        width = self._scalar_width(ty)
        if width < expr.width:
            expr = bv_extract(expr, width - 1, 0)
        varies = TRUE if undef else FALSE
        return SymValue(expr, poison, undef, varies).normalized()

    def _store(self, inst: Store, alive: BoolTerm, mem: SymMemory) -> BoolTerm:
        ptr = self._pointer_operand(inst.pointer)
        value = self._read(inst.value)
        ty = inst.value.type
        nbytes = byte_size(ty)
        bid, off = mem.decode_pointer(ptr.expr)
        cand = self._candidate_bids(inst.pointer, mem)
        ub = bool_or(
            ptr.poison,
            ptr.varies,
            bool_not(mem._valid_range(bid, off, nbytes, cand)),
            bool_not(mem._writable(bid, cand)),
        )
        self.ub_terms.append(bool_and(alive, ub))
        data = self._bytes_of_value(value, ty)
        mem.store_bytes(alive, bid, off, data, cand)
        return alive

    def _bytes_of_value(self, sv: object, ty: Type) -> List[SymByte]:
        if isinstance(ty, (VectorType, ArrayType)):
            elems = _as_elems(sv, ty.count, self)
            out: List[SymByte] = []
            for e in elems:
                out.extend(self._bytes_of_value(e, ty.elem))
            return out
        assert isinstance(sv, SymValue)
        is_ptr = TRUE if isinstance(ty, PointerType) else FALSE
        nbytes = byte_size(ty)
        expr = sv.expr
        if expr.width < nbytes * 8:
            expr = bv_zext(expr, nbytes * 8)
        return [
            SymByte(
                bv_extract(expr, 8 * i + 7, 8 * i),
                sv.poison,
                is_ptr,
                sv.undef_vars,
            )
            for i in range(nbytes)
        ]

    def _gep(self, inst: Gep, mem: SymMemory) -> SymValue:
        ptr = self._pointer_operand(inst.pointer)
        ob = self.layout.config.off_bits
        bid, off = mem.decode_pointer(ptr.expr)
        poison = ptr.poison
        undef = ptr.undef_vars
        varies = ptr.varies
        total = off
        scale = byte_size(inst.source_type)
        src: Type = inst.source_type
        for idx_value in inst.indices:
            iv = self._read(idx_value)
            assert isinstance(iv, SymValue)
            poison = bool_or(poison, iv.poison)
            undef = undef | iv.undef_vars
            varies = bool_or(varies, iv.varies)
            idx = iv.expr
            if idx.width < ob:
                idx = bv_sext(idx, ob)
            elif idx.width > ob:
                idx = bv_extract(idx, ob - 1, 0)
            total = bv_add(total, bv_mul(idx, bv_const(scale, ob)))
            if isinstance(src, (ArrayType, VectorType)):
                src = src.elem
                scale = byte_size(src)
        if inst.inbounds:
            size = self._size_of_bid(
                bid, mem, self._candidate_bids(inst.pointer, mem)
            )
            in_bounds = bool_and(
                bv_sle(bv_const(0, ob), total),
                bv_sle(total, size),
                bv_sle(bv_const(0, ob), off),
                bv_sle(off, size),
            )
            poison = bool_or(poison, bool_not(in_bounds))
        return SymValue(
            bv_concat(bid, total), poison, undef, varies
        ).normalized()

    def _size_of_bid(self, bid: BvTerm, mem: SymMemory, cand=None) -> BvTerm:
        ob = self.layout.config.off_bits
        size = bv_const(0, ob)
        for info in mem.infos.values():
            if cand is not None and info.bid not in cand:
                continue
            size = bv_ite(
                bv_eq(bid, bv_const(info.bid, bid.width)),
                bv_const(min(info.size, (1 << (ob - 1)) - 1), ob),
                size,
            )
        return size

    # -- vectors ---------------------------------------------------------------------
    def _extractelement(self, inst: ExtractElement, alive: BoolTerm) -> BoolTerm:
        vec = self._read(inst.vector)
        idx = self._read(inst.index)
        assert isinstance(idx, SymValue)
        vec_ty = inst.vector.type
        assert isinstance(vec_ty, VectorType)
        elems = _as_elems(vec, vec_ty.count, self)
        width = self._scalar_width(vec_ty.elem)
        result = SymValue(bv_const(0, width), TRUE)  # OOB index -> poison
        for i, e in enumerate(elems):
            cond = bv_eq(idx.expr, bv_const(i, idx.expr.width))
            result = _merge_values(cond, e, result)  # type: ignore[assignment]
        result = _poison_if(idx.poison, result)
        self.regs[inst.name] = _varies_or(result, idx.varies)
        return alive

    def _insertelement(self, inst: InsertElement, alive: BoolTerm) -> BoolTerm:
        vec = self._read(inst.vector)
        elem = self._read(inst.element)
        idx = self._read(inst.index)
        assert isinstance(idx, SymValue) and isinstance(elem, SymValue)
        vec_ty = inst.type
        assert isinstance(vec_ty, VectorType)
        elems = list(_as_elems(vec, vec_ty.count, self))
        out = []
        for i, e in enumerate(elems):
            cond = bv_eq(idx.expr, bv_const(i, idx.expr.width))
            merged = _merge_values(cond, elem, e)
            out.append(_poison_if(idx.poison, merged))
        # Whole-vector poison if the index is OOB.
        oob = bool_not(bv_ult(idx.expr, bv_const(vec_ty.count, idx.expr.width)))
        out = [_poison_if(oob, e) for e in out]
        self.regs[inst.name] = SymAggregate(tuple(out))
        return alive

    def _shufflevector(self, inst: ShuffleVector, alive: BoolTerm) -> BoolTerm:
        v1 = self._read(inst.v1)
        v2 = self._read(inst.v2)
        v1_ty = inst.v1.type
        assert isinstance(v1_ty, VectorType)
        n = v1_ty.count
        pool = list(_as_elems(v1, n, self)) + list(_as_elems(v2, n, self))
        width = self._scalar_width(v1_ty.elem)
        out = []
        for m in inst.mask:
            if m is None:
                # Undef mask element: the result element is undef (the
                # semantics the community settled on, §8.3 "Vectors and UB").
                u = self._fresh_undef(width)
                out.append(SymValue(u, FALSE, frozenset({u.payload}), TRUE))
            elif m < len(pool):
                out.append(pool[m])
            else:
                out.append(SymValue(bv_const(0, width), TRUE))
        self.regs[inst.name] = SymAggregate(tuple(out))
        return alive

    # -- calls (§6) --------------------------------------------------------------------
    def _call(self, inst: Call, alive: BoolTerm, mem: SymMemory) -> BoolTerm:
        from repro.semantics.intrinsics import encode_intrinsic
        from repro.semantics.libfuncs import LIBRARY_SPECS

        if inst.callee.startswith("llvm."):
            handled = encode_intrinsic(self, inst, alive, mem)
            if handled is not None:
                return handled
            # Over-approximate an unknown intrinsic as an unknown call.
            return self._unknown_call(inst, alive, mem, approximate=True)
        callee_fn = self.module.get_function(inst.callee)
        spec = LIBRARY_SPECS.get(inst.callee)
        attrs = set(inst.attrs)
        if callee_fn is not None:
            attrs |= set(callee_fn.attrs)
        if spec is not None:
            attrs |= spec.attrs
        return self._unknown_call(inst, alive, mem, attrs=frozenset(attrs))

    def _unknown_call(
        self,
        inst: Call,
        alive: BoolTerm,
        mem: SymMemory,
        attrs: frozenset = frozenset(),
        approximate: bool = False,
    ) -> BoolTerm:
        if isinstance(inst.type, PointerType):
            raise EncodeError("call-returning-pointer")
        args: List[SymValue] = []
        for a in inst.args:
            sv = self._read(a)
            if isinstance(sv, SymAggregate):
                args.extend(sv.elems)
            else:
                args.append(sv)
        index = self._call_counts.get(inst.callee, 0)
        self._call_counts[inst.callee] = index + 1

        reads = not ("readnone" in attrs)
        writes = not ("readnone" in attrs or "readonly" in attrs)

        result: Optional[SymValue] = None
        out_value_name = out_poison_name = None
        if not isinstance(inst.type, VoidType):
            if isinstance(inst.type, (VectorType, ArrayType)):
                raise EncodeError("call-returning-aggregate")
            width = self._scalar_width(inst.type)
            value_var = self._fresh_nondet(width, f"call_{inst.callee}_{index}")
            from repro.smt.terms import bool_var

            poison_name = fresh_name(f"{self.prefix}.callp_{inst.callee}_{index}")
            self.nondet_vars.append(QuantVar(poison_name, 0))
            self.origin[poison_name] = f"callp_{inst.callee}_{index}"
            poison_var = bool_var(poison_name)
            result = SymValue(value_var, poison_var, frozenset(), FALSE)
            out_value_name = value_var.payload
            out_poison_name = poison_name
            if approximate:
                self.approx_vars.add(out_value_name)
                self.approx_vars.add(poison_name)
        havoc: Dict[Tuple[int, int], Tuple[str, str]] = {}
        if writes:
            # Havoc every non-local block (locals are not modified even when
            # escaped — the documented limitation shared with the paper).
            for bid in mem.non_local_bids():
                block = mem.blocks[bid]
                for j in range(len(block)):
                    hv = self._fresh_nondet(8, f"hv_{inst.callee}_{index}_{bid}_{j}")
                    from repro.smt.terms import bool_var

                    hp_name = fresh_name(f"{self.prefix}.hvp")
                    self.nondet_vars.append(QuantVar(hp_name, 0))
                    self.origin[hp_name] = f"hvp_{inst.callee}_{index}_{bid}_{j}"
                    if approximate:
                        self.approx_vars.add(hv.payload)
                        self.approx_vars.add(hp_name)
                    havoc[(bid, j)] = (hv.payload, hp_name)
                    new_byte = SymByte(hv, bool_var(hp_name), FALSE, frozenset())
                    cond = alive
                    old = block[j]
                    from repro.semantics.memory import _merge_byte

                    block[j] = _merge_byte(cond, new_byte, old)

        record = CallRecord(
            callee=inst.callee,
            dom=alive,
            args=args,
            result=result,
            out_value_name=out_value_name,
            out_poison_name=out_poison_name,
            writes_memory=writes,
            reads_memory=reads,
            index=index,
            min_prior=index,
            max_prior=index,
            havoc=havoc,
        )
        self.calls.append(record)
        if result is not None and inst.name is not None:
            self.regs[inst.name] = result

        if "noreturn" in attrs:
            self.noret_terms.append(alive)
            return FALSE
        return alive


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _insert_at(agg: object, elem: object, indices) -> object:
    assert isinstance(agg, SymAggregate)
    idx = indices[0]
    elems = list(agg.elems)
    if len(indices) == 1:
        elems[idx] = elem
    else:
        elems[idx] = _insert_at(elems[idx], elem, indices[1:])
    return SymAggregate(tuple(elems))


def _fold_value(value):
    """Constant-folded copy of a symbolic value, or None if unchanged."""
    from repro.analysis import termfacts

    if isinstance(value, SymAggregate):
        elems = [_fold_value(e) for e in value.elems]
        if all(e is None for e in elems):
            return None
        return SymAggregate(
            tuple(n if n is not None else o for n, o in zip(elems, value.elems))
        )
    if not isinstance(value, SymValue):
        return None
    expr, poison = value.expr, value.poison
    changed = False
    if expr.op != "const":
        const = termfacts.known_const(expr)
        if const is not None:
            expr = bv_const(const, expr.width)
            changed = True
    if poison.op != "const":
        fact = termfacts.term_fact(poison)
        if fact is True:
            poison, changed = TRUE, True
        elif fact is False:
            poison, changed = FALSE, True
    if not changed:
        return None
    return SymValue(expr, poison, value.undef_vars, value.varies).normalized()


def _merge_values(cond: BoolTerm, then: object, els: object) -> object:
    if isinstance(then, SymAggregate) or isinstance(els, SymAggregate):
        assert isinstance(then, SymAggregate) and isinstance(els, SymAggregate)
        return SymAggregate(
            tuple(
                _merge_values(cond, a, b)  # type: ignore[arg-type]
                for a, b in zip(then.elems, els.elems)
            )
        )
    assert isinstance(then, SymValue) and isinstance(els, SymValue)
    return SymValue(
        bv_ite(cond, then.expr, els.expr),
        bool_ite(cond, then.poison, els.poison),
        then.undef_vars | els.undef_vars,
        bool_ite(cond, then.varies, els.varies),
    ).normalized()


def _poison_if(cond: BoolTerm, sv: object) -> object:
    if isinstance(sv, SymAggregate):
        return SymAggregate(tuple(_poison_if(cond, e) for e in sv.elems))  # type: ignore[arg-type]
    assert isinstance(sv, SymValue)
    if cond is FALSE:
        return sv
    return SymValue(sv.expr, bool_or(sv.poison, cond), sv.undef_vars, sv.varies)


def _varies_or(sv: object, cond: BoolTerm) -> object:
    if isinstance(sv, SymAggregate):
        return SymAggregate(tuple(_varies_or(e, cond) for e in sv.elems))  # type: ignore[arg-type]
    assert isinstance(sv, SymValue)
    if cond is FALSE:
        return sv
    return SymValue(sv.expr, sv.poison, sv.undef_vars, bool_or(sv.varies, cond))


def _as_elems(sv: object, count: int, enc: "_Encoder") -> Tuple[SymValue, ...]:
    if isinstance(sv, SymAggregate):
        assert len(sv.elems) == count
        return sv.elems
    assert isinstance(sv, SymValue)
    # A scalar standing for an aggregate (poison/undef constant).
    return tuple(SymValue(sv.expr, sv.poison, sv.undef_vars, sv.varies) for _ in range(count))


def _coerce_shape(sv: object, ty: Type, enc: "_Encoder") -> object:
    if isinstance(ty, (VectorType, ArrayType)) and isinstance(sv, SymValue):
        return SymAggregate(tuple(_as_elems(sv, ty.count, enc)))
    return sv


def _bits_of(ty: Type, enc: "_Encoder") -> int:
    if isinstance(ty, PointerType):
        return enc.layout.ptr_bits
    return ty.bit_width


def _width_of_var(name: str, declared: List[QuantVar]) -> int:
    for qv in declared:
        if qv.name == name:
            return qv.width
    raise KeyError(name)


def _phi_block(phi: Phi, fn: Function) -> str:
    for label, block in fn.blocks.items():
        if phi in block.instructions:
            return label
    raise KeyError(phi.name)
