"""SMT encoding of the IR semantics (§3, §4 of the Alive2 paper).

* :mod:`repro.semantics.value` — symbolic values: (expr, poison, undef-set).
* :mod:`repro.semantics.softfloat` — IEEE-754 circuits for the scaled formats.
* :mod:`repro.semantics.memory` — the block-based memory model.
* :mod:`repro.semantics.encoder` — function -> SMT encoding.
* :mod:`repro.semantics.libfuncs` / ``intrinsics`` — known-function specs and
  over-approximation of unsupported features.
"""

__all__ = [
    "encode_function",
    "EncodedFunction",
    "EncodeError",
    "MemoryConfig",
]

_LAZY = {
    "encode_function": "repro.semantics.encoder",
    "EncodedFunction": "repro.semantics.encoder",
    "EncodeError": "repro.semantics.encoder",
    "MemoryConfig": "repro.semantics.memory",
}


def __getattr__(name):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib

    return getattr(importlib.import_module(module_name), name)
