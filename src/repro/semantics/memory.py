"""The SMT memory model (§4 of the paper, scaled down).

* The unit of allocation is the *memory block*; each global, pointer
  argument and alloca gets one.  Block ids are non-negative integers;
  bid 0 is the null block (size 0).
* A pointer is ``(bid, off)`` encoded as the bitvector ``bid ++ off``
  (offsets are signed).
* Block bytes are typed: a byte is (poison, is_pointer, value) — loading
  bytes whose type does not match the load type yields poison, as the
  paper specifies.
* The number of blocks is static after unrolling, so loads/stores
  scalarize to ite-chains over (block, offset) — the bounded analogue of
  Z3's array theory that keeps our bit-blaster fast.

Deviations (documented in DESIGN.md): no heap (malloc/free) and no block
liveness tracking — stack and global blocks live for the whole function;
escaped locals are not modified by unknown calls (the same limitation
§8.5 reports for Alive2 itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.ir.types import Type, byte_size
from repro.ir.values import GlobalVariable
from repro.smt.terms import (
    FALSE,
    TRUE,
    BoolTerm,
    BvTerm,
    bool_and,
    bool_ite,
    bool_not,
    bool_or,
    bv_concat,
    bv_const,
    bv_eq,
    bv_extract,
    bv_ite,
    bv_sle,
    bv_var,
)


@dataclass(frozen=True)
class MemoryConfig:
    """Widths and sizes for the scaled-down memory."""

    off_bits: int = 8  # signed byte offsets
    arg_block_bytes: int = 4  # size of the block behind each pointer arg
    max_blocks: int = 64


@dataclass(frozen=True)
class BlockInfo:
    bid: int
    name: str
    size: int  # bytes
    writable: bool = True
    is_local: bool = False  # allocas (not observable by the caller)


@dataclass
class MemoryLayout:
    """Static block numbering shared between source and target.

    Globals and pointer arguments get identical bids in both functions so
    that pointer values and memory contents are directly comparable.
    Allocas get function-local bids above the shared range.
    """

    config: MemoryConfig
    shared_blocks: List[BlockInfo] = field(default_factory=list)
    num_local_slots: int = 0

    @property
    def num_blocks(self) -> int:
        return 1 + len(self.shared_blocks) + self.num_local_slots  # +1 for null

    @property
    def bid_bits(self) -> int:
        return max(1, (self.num_blocks - 1).bit_length())

    @property
    def ptr_bits(self) -> int:
        return self.bid_bits + self.config.off_bits

    def first_local_bid(self) -> int:
        return 1 + len(self.shared_blocks)


def build_layout(
    globals_: Dict[str, GlobalVariable],
    pointer_args: List[str],
    num_allocas: int,
    config: Optional[MemoryConfig] = None,
) -> MemoryLayout:
    """Build the shared layout for a (source, target) function pair."""
    config = config or MemoryConfig()
    blocks: List[BlockInfo] = []
    bid = 1
    for name in sorted(globals_):
        g = globals_[name]
        blocks.append(
            BlockInfo(
                bid,
                f"@{name}",
                byte_size(g.value_type),
                writable=not g.is_constant,
            )
        )
        bid += 1
    for arg_name in pointer_args:
        blocks.append(BlockInfo(bid, f"%{arg_name}", config.arg_block_bytes))
        bid += 1
    layout = MemoryLayout(config, blocks, num_allocas)
    if layout.num_blocks > config.max_blocks:
        raise ValueError("too many memory blocks for the configured bid width")
    return layout


@dataclass(frozen=True)
class SymByte:
    """One byte of memory: typed, poison-aware (§4 'Block attributes and bytes')."""

    value: BvTerm  # 8 bits
    poison: BoolTerm = FALSE
    is_ptr: BoolTerm = FALSE
    undef_vars: frozenset = frozenset()

    @staticmethod
    def poison_byte() -> "SymByte":
        return SymByte(bv_const(0, 8), TRUE, FALSE, frozenset())


def _merge_byte(cond: BoolTerm, a: SymByte, b: SymByte) -> SymByte:
    if a == b:
        return a
    return SymByte(
        bv_ite(cond, a.value, b.value),
        bool_ite(cond, a.poison, b.poison),
        bool_ite(cond, a.is_ptr, b.is_ptr),
        a.undef_vars | b.undef_vars,
    )


class SymMemory:
    """Memory state: per-block byte lists.  Copy-on-write via ``clone``."""

    def __init__(self, layout: MemoryLayout, blocks: Dict[int, List[SymByte]],
                 infos: Dict[int, BlockInfo]) -> None:
        self.layout = layout
        self.blocks = blocks  # bid -> bytes
        self.infos = infos  # bid -> BlockInfo

    # -- construction -----------------------------------------------------
    @staticmethod
    def initial(
        layout: MemoryLayout,
        globals_: Dict[str, GlobalVariable],
        prefix: str,
    ) -> "SymMemory":
        """Initial memory: globals from initializers, arg blocks from shared
        input variables, null block empty."""
        from repro.ir.values import (
            ConstantAggregate,
            ConstantFloat,
            ConstantInt,
            ConstantNull,
            PoisonValue,
            UndefValue,
        )

        blocks: Dict[int, List[SymByte]] = {}
        infos: Dict[int, BlockInfo] = {}
        for info in layout.shared_blocks:
            infos[info.bid] = info
            data: List[SymByte] = []
            if info.name.startswith("@"):
                g = globals_[info.name[1:]]
                if g.initializer is not None:
                    data = _init_bytes(g.initializer, g.value_type)
                else:
                    # External global: unknown but fixed contents, shared by
                    # source and target (input variables).
                    data = [
                        SymByte(bv_var(f"glob_{g.name}_b{i}", 8))
                        for i in range(info.size)
                    ]
            else:
                arg = info.name[1:]
                data = [
                    SymByte(bv_var(f"argmem_{arg}_b{i}", 8))
                    for i in range(info.size)
                ]
            # Pad/trim to declared size.
            data = (data + [SymByte.poison_byte()] * info.size)[: info.size]
            blocks[info.bid] = data
        return SymMemory(layout, blocks, infos)

    def clone(self) -> "SymMemory":
        return SymMemory(
            self.layout, {k: list(v) for k, v in self.blocks.items()}, dict(self.infos)
        )

    def add_local_block(self, bid: int, name: str, size: int) -> None:
        self.infos[bid] = BlockInfo(bid, name, size, writable=True, is_local=True)
        self.blocks[bid] = [SymByte.poison_byte() for _ in range(size)]

    # -- pointers ------------------------------------------------------------
    def make_pointer(self, bid: int, off: int = 0) -> BvTerm:
        return bv_concat(
            bv_const(bid, self.layout.bid_bits),
            bv_const(off, self.layout.config.off_bits),
        )

    def decode_pointer(self, ptr: BvTerm) -> Tuple[BvTerm, BvTerm]:
        ob = self.layout.config.off_bits
        return bv_extract(ptr, ptr.width - 1, ob), bv_extract(ptr, ob - 1, 0)

    def null_pointer(self) -> BvTerm:
        return bv_const(0, self.layout.ptr_bits)

    # -- access --------------------------------------------------------------
    # The optional ``bids`` filter on the access methods restricts the
    # ite/case chains to the candidate blocks a points-to analysis proved
    # for the access (repro.analysis.pointsto).  Soundness: every
    # refinement query conjoins the encoder precondition, and the
    # points-to contract guarantees the concrete bid of a *defined*
    # pointer lies in the candidate set under that precondition; models
    # where the pointer is poison/undef already take the access-UB path.
    # Restricting therefore only changes the formula on models the query
    # excludes anyway.
    def _valid_range(
        self,
        bid: BvTerm,
        off: BvTerm,
        nbytes: int,
        bids: Optional[FrozenSet[int]] = None,
    ) -> BoolTerm:
        """Access of ``nbytes`` at (bid, off) is fully in-bounds."""
        ob = self.layout.config.off_bits
        cases = FALSE
        for info in self.infos.values():
            if bids is not None and info.bid not in bids:
                continue
            if info.size < nbytes:
                continue
            this = bool_and(
                bv_eq(bid, bv_const(info.bid, bid.width)),
                bv_sle(bv_const(0, ob), off),
                bv_sle(off, bv_const(info.size - nbytes, ob)),
            )
            cases = bool_or(cases, this)
        return cases

    def _writable(
        self, bid: BvTerm, bids: Optional[FrozenSet[int]] = None
    ) -> BoolTerm:
        bad = FALSE
        for info in self.infos.values():
            if bids is not None and info.bid not in bids:
                continue
            if not info.writable:
                bad = bool_or(bad, bv_eq(bid, bv_const(info.bid, bid.width)))
        return bool_not(bad)

    def load_bytes(
        self,
        bid: BvTerm,
        off: BvTerm,
        nbytes: int,
        bids: Optional[FrozenSet[int]] = None,
    ) -> List[SymByte]:
        """Read ``nbytes`` from (bid, off); caller checks bounds UB."""
        ob = self.layout.config.off_bits
        out: List[SymByte] = []
        for k in range(nbytes):
            byte = SymByte.poison_byte()
            for info in self.infos.values():
                if bids is not None and info.bid not in bids:
                    continue
                data = self.blocks[info.bid]
                is_block = bv_eq(bid, bv_const(info.bid, bid.width))
                for j in range(info.size):
                    if j < k:
                        continue
                    cond = bool_and(
                        is_block, bv_eq(off, bv_const(j - k, ob))
                    )
                    byte = _merge_byte(cond, data[j], byte)
            out.append(byte)
        return out

    def store_bytes(
        self,
        dom: BoolTerm,
        bid: BvTerm,
        off: BvTerm,
        data: List[SymByte],
        bids: Optional[FrozenSet[int]] = None,
    ) -> None:
        """Write bytes at (bid, off), guarded by path condition ``dom``."""
        ob = self.layout.config.off_bits
        for info in self.infos.values():
            if bids is not None and info.bid not in bids:
                continue
            block = self.blocks[info.bid]
            is_block = bv_eq(bid, bv_const(info.bid, bid.width))
            if is_block is FALSE:
                continue
            for j in range(info.size):
                new_byte = block[j]
                for k, b in enumerate(data):
                    if j - k < 0:
                        continue
                    cond = bool_and(
                        dom, is_block, bv_eq(off, bv_const(j - k, ob))
                    )
                    new_byte = _merge_byte(cond, b, new_byte)
                block[j] = new_byte

    # -- merging ----------------------------------------------------------------
    @staticmethod
    def merge(cond: BoolTerm, then: "SymMemory", els: "SymMemory") -> "SymMemory":
        assert then.layout is els.layout
        blocks: Dict[int, List[SymByte]] = {}
        infos = dict(then.infos)
        infos.update(els.infos)
        for bid, info in infos.items():
            t = then.blocks.get(bid)
            e = els.blocks.get(bid)
            if t is None:
                blocks[bid] = list(e)  # type: ignore[arg-type]
            elif e is None:
                blocks[bid] = list(t)
            else:
                blocks[bid] = [_merge_byte(cond, a, b) for a, b in zip(t, e)]
        return SymMemory(then.layout, blocks, infos)

    def non_local_bids(self) -> List[int]:
        return [info.bid for info in self.infos.values() if not info.is_local]


def _init_bytes(initializer, ty: Type) -> List[SymByte]:
    """Bytes for a constant global initializer."""
    from repro.ir.values import (
        ConstantAggregate,
        ConstantFloat,
        ConstantInt,
        ConstantNull,
        PoisonValue,
        UndefValue,
    )

    if isinstance(initializer, (ConstantAggregate,)):
        out: List[SymByte] = []
        for elem in initializer.elems:
            out.extend(_init_bytes(elem, elem.type))
        return out
    nbytes = byte_size(ty)
    if isinstance(initializer, (UndefValue, PoisonValue)):
        # Loading uninitialized memory is undef; poison bytes approximate it
        # on the safe side for globals (they are rare in the corpus).
        return [SymByte.poison_byte() for _ in range(nbytes)]
    if isinstance(initializer, ConstantInt):
        value = initializer.value
    elif isinstance(initializer, ConstantFloat):
        value = initializer.bits
    elif isinstance(initializer, ConstantNull):
        value = 0
    else:
        raise ValueError(f"unsupported initializer {initializer!r}")
    return [
        SymByte(bv_const((value >> (8 * i)) & 0xFF, 8)) for i in range(nbytes)
    ]
