"""Symbolic values: the (value, ispoison) pairs of §3.1.

A scalar value is a triple:

* ``expr`` — bitvector term for the defined value (meaningful when not
  poison),
* ``poison`` — boolean term, true when the value is poison,
* ``undef_vars`` — names of quantified *undef expansion* variables that
  occur in ``expr``/``poison``; each *use* of the value renames them to
  fresh variables (§3.3), and ``freeze`` clears the set,
* ``varies`` — a boolean term over-approximating "this value is undef"
  (can evaluate to more than one value).  It is used to encode
  branch-on-undef UB and the return-value undef check; when ``expr``
  no longer mentions any undef variable (constant folding removed them)
  it collapses to false, which implements the paper's closed-form
  special cases (§3.7).

Aggregates (vectors/arrays) are element-wise lists of scalars, matching
the element-wise refinement rules of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.smt.terms import (
    FALSE,
    BoolTerm,
    BvTerm,
    bool_or,
    term_vars,
)


@dataclass(frozen=True)
class SymValue:
    """A scalar symbolic value."""

    expr: BvTerm
    poison: BoolTerm = FALSE
    undef_vars: frozenset = frozenset()
    varies: BoolTerm = FALSE

    def normalized(self) -> "SymValue":
        """Drop undef bookkeeping that constant folding made irrelevant."""
        if not self.undef_vars:
            if self.varies is FALSE:
                return self
            return SymValue(self.expr, self.poison, frozenset(), FALSE)
        live = term_vars(self.expr) | term_vars(self.poison)
        kept = self.undef_vars & live
        if kept == self.undef_vars:
            return self
        varies = self.varies if kept else FALSE
        return SymValue(self.expr, self.poison, kept, varies)


@dataclass(frozen=True)
class SymAggregate:
    """An aggregate value: one SymValue per element."""

    elems: Tuple[SymValue, ...]

    @property
    def poison_any(self) -> BoolTerm:
        return bool_or(*[e.poison for e in self.elems])


SomeValue = object  # SymValue | SymAggregate


def make_poison_like(value) -> object:
    """A fully-poison value with the same shape as ``value``."""
    from repro.smt.terms import TRUE, bv_const

    if isinstance(value, SymAggregate):
        return SymAggregate(
            tuple(make_poison_like(e) for e in value.elems)  # type: ignore[arg-type]
        )
    return SymValue(bv_const(0, value.expr.width), TRUE, frozenset(), FALSE)
