"""Symbolic IEEE-754 circuits over bitvector terms.

Implements add/sub/mul/div, comparisons and classification for the scaled
binary formats of :mod:`repro.ir.types`, operating on symbolic bitvector
terms so the results can be bit-blasted.  Rounding is round-to-nearest,
ties-to-even; subnormals, signed zeros, infinities and NaNs all behave
per IEEE-754, which is exactly the structure the paper's floating-point
findings (the nsz bug, NaN bitcast nondeterminism) depend on.

The circuits are validated against :mod:`repro.ir.fpformat` (the concrete
reference) by randomized differential tests.
"""

from __future__ import annotations

from typing import Tuple

from repro.ir.types import FloatType
from repro.smt.terms import (
    BoolTerm,
    BvTerm,
    bool_and,
    bool_ite,
    bool_not,
    bool_or,
    bool_xor,
    bv_add,
    bv_and,
    bv_concat,
    bv_const,
    bv_eq,
    bv_extract,
    bv_ite,
    bv_lshr,
    bv_mul,
    bv_or,
    bv_shl,
    bv_sub,
    bv_udiv,
    bv_ult,
    bv_zext,
)


class FloatParts:
    """Decomposition of a float bit pattern."""

    def __init__(self, fmt: FloatType, bits: BvTerm) -> None:
        assert bits.width == fmt.bit_width
        self.fmt = fmt
        fb, eb = fmt.frac_bits, fmt.exp_bits
        self.sign = bv_eq(bv_extract(bits, fb + eb, fb + eb), bv_const(1, 1))
        self.exp = bv_extract(bits, fb + eb - 1, fb)
        self.frac = bv_extract(bits, fb - 1, 0)
        exp_ones = bv_const((1 << eb) - 1, eb)
        exp_zero = bv_const(0, eb)
        frac_zero = bv_const(0, fb)
        self.exp_all_ones = bv_eq(self.exp, exp_ones)
        self.exp_is_zero = bv_eq(self.exp, exp_zero)
        self.frac_is_zero = bv_eq(self.frac, frac_zero)
        self.is_nan = bool_and(self.exp_all_ones, bool_not(self.frac_is_zero))
        self.is_inf = bool_and(self.exp_all_ones, self.frac_is_zero)
        self.is_zero = bool_and(self.exp_is_zero, self.frac_is_zero)
        self.is_subnormal = bool_and(self.exp_is_zero, bool_not(self.frac_is_zero))


def fp_is_nan(fmt: FloatType, bits: BvTerm) -> BoolTerm:
    return FloatParts(fmt, bits).is_nan


def fp_is_inf(fmt: FloatType, bits: BvTerm) -> BoolTerm:
    return FloatParts(fmt, bits).is_inf


def fp_is_zero(fmt: FloatType, bits: BvTerm) -> BoolTerm:
    return FloatParts(fmt, bits).is_zero


def fp_nan(fmt: FloatType) -> BvTerm:
    """The canonical quiet NaN bit pattern."""
    fb, eb = fmt.frac_bits, fmt.exp_bits
    return bv_const(
        (((1 << eb) - 1) << fb) | (1 << (fb - 1)), fmt.bit_width
    )


def fp_inf(fmt: FloatType, sign: BoolTerm) -> BvTerm:
    fb, eb = fmt.frac_bits, fmt.exp_bits
    mag = bv_const(((1 << eb) - 1) << fb, fmt.bit_width)
    return bv_or(mag, _sign_bit(fmt, sign))


def fp_zero(fmt: FloatType, sign: BoolTerm) -> BvTerm:
    return _sign_bit(fmt, sign)


def _sign_bit(fmt: FloatType, sign: BoolTerm) -> BvTerm:
    return bv_ite(
        sign,
        bv_const(1 << (fmt.bit_width - 1), fmt.bit_width),
        bv_const(0, fmt.bit_width),
    )


def fp_neg(fmt: FloatType, bits: BvTerm) -> BvTerm:
    """Flip the sign bit (fneg is a pure bit operation, even for NaN)."""
    return bv_concat(
        bv_ite(
            bv_eq(bv_extract(bits, fmt.bit_width - 1, fmt.bit_width - 1), bv_const(1, 1)),
            bv_const(0, 1),
            bv_const(1, 1),
        ),
        bv_extract(bits, fmt.bit_width - 2, 0),
    )


def fp_abs(fmt: FloatType, bits: BvTerm) -> BvTerm:
    return bv_concat(bv_const(0, 1), bv_extract(bits, fmt.bit_width - 2, 0))


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def _mag(fmt: FloatType, parts: FloatParts) -> BvTerm:
    """Magnitude key (exp ++ frac) for ordering comparisons."""
    return bv_concat(parts.exp, parts.frac)


def fp_lt(fmt: FloatType, a: BvTerm, b: BvTerm) -> BoolTerm:
    """Ordered less-than (false if either is NaN)."""
    pa, pb = FloatParts(fmt, a), FloatParts(fmt, b)
    both_zero = bool_and(pa.is_zero, pb.is_zero)
    ma, mb = _mag(fmt, pa), _mag(fmt, pb)
    # Same sign: compare magnitudes (flip for negatives).
    pos_lt = bv_ult(ma, mb)
    neg_lt = bv_ult(mb, ma)
    same_sign = bool_ite(pa.sign, neg_lt, pos_lt)
    diff_sign = bool_and(pa.sign, bool_not(pb.sign))  # a < 0 <= b
    result = bool_ite(bool_xor(pa.sign, pb.sign), diff_sign, same_sign)
    return bool_and(
        bool_not(pa.is_nan), bool_not(pb.is_nan), bool_not(both_zero), result
    )


def fp_eq(fmt: FloatType, a: BvTerm, b: BvTerm) -> BoolTerm:
    """Ordered equality (+0 == -0; NaN != NaN)."""
    pa, pb = FloatParts(fmt, a), FloatParts(fmt, b)
    both_zero = bool_and(pa.is_zero, pb.is_zero)
    return bool_and(
        bool_not(pa.is_nan),
        bool_not(pb.is_nan),
        bool_or(both_zero, bv_eq(a, b)),
    )


def fp_unordered(fmt: FloatType, a: BvTerm, b: BvTerm) -> BoolTerm:
    return bool_or(fp_is_nan(fmt, a), fp_is_nan(fmt, b))


# ---------------------------------------------------------------------------
# Rounding / packing
# ---------------------------------------------------------------------------


def _count_leading_zeros(value: BvTerm) -> BvTerm:
    """CLZ of a bitvector, returned at the same width."""
    w = value.width
    out = bv_const(w, w)  # all-zero input
    for i in range(w):
        # If bit i is set, leading zeros = w - 1 - i; later (higher) bits win.
        bit = bv_extract(value, i, i)
        out = bv_ite(bv_eq(bit, bv_const(1, 1)), bv_const(w - 1 - i, w), out)
    return out


def _round_pack(
    fmt: FloatType,
    sign: BoolTerm,
    exp: BvTerm,
    sig: BvTerm,
) -> BvTerm:
    """Normalize, round (RNE) and pack.

    ``sig`` is an unsigned significand scaled so that a *normalized* value
    has its leading 1 at bit position ``fb + 3`` (三 extra low bits: guard,
    round, sticky).  ``exp`` is the unbiased-but-biased exponent (i.e. the
    final biased exponent if sig's MSB is exactly at position fb+3), as a
    signed value in a wide bitvector.  Zero ``sig`` gives a signed zero.
    """
    fb = fmt.frac_bits
    eb = fmt.exp_bits
    sw = sig.width
    ew = exp.width
    top = fb + 3  # position of the hidden bit in `sig`

    # Normalize left: shift so the leading 1 lands at `top` (if sig != 0).
    clz = _count_leading_zeros(sig)
    lead = bv_sub(bv_const(sw - 1, sw), clz)  # index of leading 1
    shift_left = bv_sub(bv_const(top, sw), lead)  # >0: shift left
    is_zero_sig = bv_eq(sig, bv_const(0, sw))
    # Apply: if lead > top shift right (collecting sticky), else shift left.
    right_amt = bv_sub(lead, bv_const(top, sw))
    needs_right = bv_ult(bv_const(top, sw), lead)
    # Sticky bits lost by the right shift.
    lost_mask = bv_sub(bv_shl(bv_const(1, sw), right_amt), bv_const(1, sw))
    lost = bv_and(sig, bv_ite(needs_right, lost_mask, bv_const(0, sw)))
    sticky_extra = bool_not(bv_eq(lost, bv_const(0, sw)))
    sig_norm = bv_ite(
        needs_right, bv_lshr(sig, right_amt), bv_shl(sig, shift_left)
    )
    sig_norm = bv_or(
        sig_norm, bv_ite(sticky_extra, bv_const(1, sw), bv_const(0, sw))
    )
    exp_adj = bv_ite(
        needs_right,
        bv_add(exp, _fit(right_amt, ew)),
        bv_sub(exp, _fit(shift_left, ew)),
    )

    # Subnormal handling: if exp_adj <= 0, shift right by (1 - exp_adj) and
    # use biased exponent 0.
    one = bv_const(1, ew)
    exp_pos = _slt(bv_const(0, ew), exp_adj)
    denorm_shift = bv_sub(one, exp_adj)  # >= 1 when exp_adj <= 0
    big_shift = bv_const(sw - 1, ew)
    denorm_shift = bv_ite(bv_ult(big_shift, denorm_shift), big_shift, denorm_shift)
    dshift = _fit(denorm_shift, sw)
    dlost = bv_and(sig_norm, bv_sub(bv_shl(bv_const(1, sw), dshift), bv_const(1, sw)))
    dsticky = bool_not(bv_eq(dlost, bv_const(0, sw)))
    sig_den = bv_or(
        bv_lshr(sig_norm, dshift),
        bv_ite(dsticky, bv_const(1, sw), bv_const(0, sw)),
    )
    sig_final = bv_ite(exp_pos, sig_norm, sig_den)
    biased = bv_ite(exp_pos, exp_adj, bv_const(0, ew))

    # Round to nearest even on the 3 low bits (guard at bit 2).
    keep = bv_lshr(sig_final, bv_const(3, sw))  # fb+1 significant bits at low end
    guard = bv_extract(sig_final, 2, 2)
    rest = bv_or(
        bv_extract(sig_final, 1, 1), bv_extract(sig_final, 0, 0)
    )
    lsb = bv_extract(keep, 0, 0)
    round_up = bool_and(
        bv_eq(guard, bv_const(1, 1)),
        bool_or(
            bv_eq(rest, bv_const(1, 1)),
            bv_eq(lsb, bv_const(1, 1)),
        ),
    )
    rounded = bv_add(keep, bv_ite(round_up, bv_const(1, sw), bv_const(0, sw)))

    # Rounding may carry out: 1.111..1 -> 10.000..0  => exponent + 1.
    carry_out = bv_eq(bv_extract(rounded, fb + 1, fb + 1), bv_const(1, 1))
    rounded = bv_ite(carry_out, bv_lshr(rounded, bv_const(1, sw)), rounded)
    biased = bv_add(biased, bv_ite(carry_out, one, bv_const(0, ew)))
    # Subnormal rounding may promote to normal: if biased == 0 and the hidden
    # bit (fb) is now set, the exponent becomes 1 -- which equals what the
    # packing below produces automatically since biased+hidden overlap:
    hidden_set = bv_eq(bv_extract(rounded, fb, fb), bv_const(1, 1))
    biased = bv_ite(
        bool_and(bv_eq(biased, bv_const(0, ew)), hidden_set), one, biased
    )

    # Overflow to infinity.
    max_exp = bv_const((1 << eb) - 1, ew)
    overflow = bool_not(bv_ult(biased, max_exp))

    frac_out = bv_extract(rounded, fb - 1, 0)
    exp_out = bv_extract(biased, eb - 1, 0)
    sign_bv = bv_ite(sign, bv_const(1, 1), bv_const(0, 1))
    packed = bv_concat(bv_concat(sign_bv, exp_out), frac_out)
    packed = bv_ite(overflow, fp_inf(fmt, sign), packed)
    return bv_ite(is_zero_sig, fp_zero(fmt, sign), packed)


def _fit(value: BvTerm, width: int) -> BvTerm:
    if value.width == width:
        return value
    if value.width < width:
        return bv_zext(value, width)
    return bv_extract(value, width - 1, 0)


def _slt(a: BvTerm, b: BvTerm) -> BoolTerm:
    from repro.smt.terms import bv_slt

    return bv_slt(a, b)


def _unpack(fmt: FloatType, parts: FloatParts, sw: int, ew: int) -> Tuple[BvTerm, BvTerm]:
    """Return (exp, sig) with sig = 1.f or 0.f scaled by 2^3 (grs = 0).

    The significand is placed with its hidden-bit position at fb+3 for
    normals; subnormals keep their natural (smaller) magnitude with
    exponent 1, to be normalized by :func:`_round_pack`.
    """
    fb = fmt.frac_bits
    frac_w = bv_zext(parts.frac, sw)
    hidden = bv_const(1 << (fb + 3), sw)
    sig_norm = bv_or(bv_shl(frac_w, bv_const(3, sw)), hidden)
    sig_sub = bv_shl(frac_w, bv_const(3, sw))
    sig = bv_ite(parts.exp_is_zero, sig_sub, sig_norm)
    exp = bv_ite(parts.exp_is_zero, bv_const(1, ew), bv_zext(parts.exp, ew))
    return exp, sig


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------


def fp_add(fmt: FloatType, a: BvTerm, b: BvTerm, negate_b: bool = False) -> BvTerm:
    """fadd (or fsub when ``negate_b``), full IEEE-754 semantics."""
    if negate_b:
        b = fp_neg(fmt, b)
    pa, pb = FloatParts(fmt, a), FloatParts(fmt, b)
    fb, eb = fmt.frac_bits, fmt.exp_bits
    sw = 2 * fb + 8
    ew = eb + 3

    exp_a, sig_a = _unpack(fmt, pa, sw, ew)
    exp_b, sig_b = _unpack(fmt, pb, sw, ew)

    # Order so |A| >= |B| (exp ++ frac compares as magnitude).
    a_smaller = bv_ult(_mag(fmt, pa), _mag(fmt, pb))
    exp_l = bv_ite(a_smaller, exp_b, exp_a)
    exp_s = bv_ite(a_smaller, exp_a, exp_b)
    sig_l = bv_ite(a_smaller, sig_b, sig_a)
    sig_s = bv_ite(a_smaller, sig_a, sig_b)
    sign_l = bool_ite(a_smaller, pb.sign, pa.sign)
    sign_s = bool_ite(a_smaller, pa.sign, pb.sign)

    # Align the smaller significand, folding shifted-out bits into sticky.
    diff = bv_sub(exp_l, exp_s)
    max_shift = bv_const(sw - 1, ew)
    diff = bv_ite(bv_ult(max_shift, diff), max_shift, diff)
    shift = _fit(diff, sw)
    lost = bv_and(sig_s, bv_sub(bv_shl(bv_const(1, sw), shift), bv_const(1, sw)))
    sticky = bool_not(bv_eq(lost, bv_const(0, sw)))
    sig_s_aligned = bv_or(
        bv_lshr(sig_s, shift),
        bv_ite(sticky, bv_const(1, sw), bv_const(0, sw)),
    )

    subtract = bool_xor(sign_l, sign_s)
    sig_sum = bv_ite(
        subtract,
        bv_sub(sig_l, sig_s_aligned),
        bv_add(sig_l, sig_s_aligned),
    )
    result_sign = sign_l
    # Exact cancellation: sign is + (RNE), unless both inputs were -0.
    cancel = bv_eq(sig_sum, bv_const(0, sw))
    result_sign = bool_ite(cancel, bool_and(pa.sign, pb.sign), result_sign)

    packed = _round_pack(fmt, result_sign, exp_l, sig_sum)

    # Special cases.
    any_nan = bool_or(pa.is_nan, pb.is_nan)
    inf_conflict = bool_and(pa.is_inf, pb.is_inf, bool_xor(pa.sign, pb.sign))
    result = packed
    result = bv_ite(pb.is_inf, fp_inf(fmt, pb.sign), result)
    result = bv_ite(pa.is_inf, fp_inf(fmt, pa.sign), result)
    result = bv_ite(bool_or(any_nan, inf_conflict), fp_nan(fmt), result)
    return result


def fp_sub(fmt: FloatType, a: BvTerm, b: BvTerm) -> BvTerm:
    return fp_add(fmt, a, b, negate_b=True)


def fp_mul(fmt: FloatType, a: BvTerm, b: BvTerm) -> BvTerm:
    pa, pb = FloatParts(fmt, a), FloatParts(fmt, b)
    fb, eb = fmt.frac_bits, fmt.exp_bits
    sw = 2 * fb + 8
    ew = eb + 3

    exp_a, sig_a = _unpack(fmt, pa, sw, ew)
    exp_b, sig_b = _unpack(fmt, pb, sw, ew)
    sign = bool_xor(pa.sign, pb.sign)

    # sig_a, sig_b have hidden bit at fb+3: product has value bit at
    # 2*(fb+3); shift down to keep grs precision: take product >> (fb + 3),
    # folding the dropped bits into sticky.
    prod = bv_mul(sig_a, sig_b)  # may wrap if sw too small: sw = 2fb+8 is
    # enough: max value < 2^(2fb+8).
    drop = fb + 3
    lost = bv_and(prod, bv_const((1 << drop) - 1, sw))
    sticky = bool_not(bv_eq(lost, bv_const(0, sw)))
    sig = bv_or(
        bv_lshr(prod, bv_const(drop, sw)),
        bv_ite(sticky, bv_const(1, sw), bv_const(0, sw)),
    )
    bias = bv_const(fmt.bias, ew)
    exp = bv_sub(bv_add(exp_a, exp_b), bias)

    packed = _round_pack(fmt, sign, exp, sig)

    any_nan = bool_or(pa.is_nan, pb.is_nan)
    any_inf = bool_or(pa.is_inf, pb.is_inf)
    any_zero = bool_or(pa.is_zero, pb.is_zero)
    result = packed
    result = bv_ite(any_zero, fp_zero(fmt, sign), result)
    result = bv_ite(any_inf, fp_inf(fmt, sign), result)
    result = bv_ite(
        bool_or(any_nan, bool_and(any_inf, any_zero)), fp_nan(fmt), result
    )
    return result


def fp_div(fmt: FloatType, a: BvTerm, b: BvTerm) -> BvTerm:
    pa, pb = FloatParts(fmt, a), FloatParts(fmt, b)
    fb, eb = fmt.frac_bits, fmt.exp_bits
    sw = 2 * fb + 10
    ew = eb + 3

    exp_a, sig_a = _unpack(fmt, pa, sw, ew)
    exp_b, sig_b = _unpack(fmt, pb, sw, ew)
    sign = bool_xor(pa.sign, pb.sign)

    # Pre-normalize subnormal significands so the quotient always carries
    # full precision; otherwise the post-division left-normalization in
    # _round_pack would shift the sticky bit into a value bit.
    def normalize(exp: BvTerm, sig: BvTerm) -> Tuple[BvTerm, BvTerm]:
        clz = _count_leading_zeros(sig)
        lead = bv_sub(bv_const(sw - 1, sw), clz)
        shift = bv_sub(bv_const(fb + 3, sw), lead)
        needs = bv_ult(lead, bv_const(fb + 3, sw))
        sig_n = bv_ite(needs, bv_shl(sig, shift), sig)
        exp_n = bv_ite(needs, bv_sub(exp, _fit(shift, ew)), exp)
        return exp_n, sig_n

    exp_a, sig_a = normalize(exp_a, sig_a)
    exp_b, sig_b = normalize(exp_b, sig_b)

    # Scale the dividend so the quotient keeps fb+4 bits of precision.
    scale = fb + 4
    num = bv_shl(sig_a, bv_const(scale, sw))
    quo = bv_udiv(num, sig_b)
    rem_exact = bv_eq(bv_mul(quo, sig_b), num)
    sig = bv_or(quo, bv_ite(rem_exact, bv_const(0, sw), bv_const(1, sw)))
    # Quotient of two 1.x significands lies in (0.5, 2): hidden position is
    # at (fb+3) + scale - (fb+3) = scale ... after the shift arithmetic the
    # leading bit sits near position `scale`; _round_pack renormalizes, we
    # only must get the exponent bias right:
    # value = sig * 2^(exp_a - exp_b + (fb+3) - scale - (fb+3) + ...):
    # with sig's hidden position for _round_pack at fb+3, the biased
    # exponent is  exp_a - exp_b + bias + (fb + 3) - scale.
    bias = bv_const(fmt.bias, ew)
    exp = bv_add(bv_sub(exp_a, exp_b), bias)
    exp = bv_add(exp, bv_const(fb + 3, ew))
    exp = bv_sub(exp, bv_const(scale, ew))

    packed = _round_pack(fmt, sign, exp, sig)

    any_nan = bool_or(pa.is_nan, pb.is_nan)
    result = packed
    # x / inf = 0; x / 0 = inf (x != 0); inf / x = inf.
    result = bv_ite(pb.is_inf, fp_zero(fmt, sign), result)
    result = bv_ite(pb.is_zero, fp_inf(fmt, sign), result)
    result = bv_ite(pa.is_inf, fp_inf(fmt, sign), result)
    result = bv_ite(pa.is_zero, fp_zero(fmt, sign), result)
    invalid = bool_or(
        bool_and(pa.is_zero, pb.is_zero),
        bool_and(pa.is_inf, pb.is_inf),
    )
    result = bv_ite(bool_or(any_nan, invalid), fp_nan(fmt), result)
    return result
