"""Supported intrinsics (§3.8).

Alive2 supports 54 of LLVM's 258 platform-independent intrinsics; we
implement the analogous most-used core.  Anything not in the table is
over-approximated as an unknown call and *tagged*, so a refinement
failure that depends on it is reported as "approximated", never as a bug
(the zero-false-alarm discipline).
"""

from __future__ import annotations

from typing import Optional

from repro.ir.instructions import Call
from repro.ir.types import VectorType
from repro.semantics.value import SymAggregate, SymValue
from repro.smt.terms import (
    FALSE,
    bool_and,
    bool_not,
    bool_or,
    bv_add,
    bv_const,
    bv_eq,
    bv_extract,
    bv_ite,
    bv_lshr,
    bv_mul,
    bv_neg,
    bv_sext,
    bv_shl,
    bv_slt,
    bv_sub,
    bv_ult,
    bv_zext,
)


def encode_intrinsic(enc, inst: Call, alive, mem) -> Optional[object]:
    """Encode a supported intrinsic; returns None when unsupported."""
    base = _base_name(inst.callee)
    handler = _HANDLERS.get(base)
    if handler is None:
        return None
    args = [enc._read(a) for a in inst.args]
    result = handler(enc, inst, args, alive)
    if result is _UNSUPPORTED:
        return None
    if inst.name is not None and result is not None:
        enc.regs[inst.name] = result
    return alive


_UNSUPPORTED = object()


def _base_name(callee: str) -> str:
    # llvm.sadd.sat.i8 -> sadd.sat ; llvm.ctpop.i8 -> ctpop
    parts = callee.split(".")
    out = []
    for p in parts[1:]:
        if p.startswith("i") and p[1:].isdigit():
            break
        if p.startswith("v") and "i" in p:
            break
        out.append(p)
    return ".".join(out)


def _scalarize(fn):
    """Lift a scalar handler over vector operands elementwise."""

    def wrapped(enc, inst, args, alive):
        ty = inst.type
        if isinstance(ty, VectorType):
            parts = []
            from repro.semantics.encoder import _as_elems

            elem_args = [
                _as_elems(a, ty.count, enc) if isinstance(a, (SymAggregate, SymValue)) else a
                for a in args
            ]
            for i in range(ty.count):
                scalar_args = [ea[i] for ea in elem_args]
                parts.append(fn(enc, inst, scalar_args, alive, ty.elem))
            return SymAggregate(tuple(parts))
        return fn(enc, inst, args, alive, ty)

    return wrapped


def _join(*svs: SymValue):
    poison = FALSE
    undef: frozenset = frozenset()
    varies = FALSE
    for sv in svs:
        poison = bool_or(poison, sv.poison)
        undef = undef | sv.undef_vars
        varies = bool_or(varies, sv.varies)
    return poison, undef, varies


@_scalarize
def _sat_arith(enc, inst, args, alive, ty):
    a, b = args
    w = ty.width
    x, y = a.expr, b.expr
    poison, undef, varies = _join(a, b)
    base = _base_name(inst.callee)
    if base.startswith("u"):
        wide = (bv_add if "add" in base else bv_sub)(bv_zext(x, w + 1), bv_zext(y, w + 1))
        overflow = bv_eq(bv_extract(wide, w, w), bv_const(1, 1))
        clamp = bv_const((1 << w) - 1, w) if "add" in base else bv_const(0, w)
        expr = bv_ite(overflow, clamp, bv_extract(wide, w - 1, 0))
    else:
        wide = (bv_add if "add" in base else bv_sub)(bv_sext(x, w + 1), bv_sext(y, w + 1))
        narrowed = bv_extract(wide, w - 1, 0)
        no_ovf = bv_eq(bv_sext(narrowed, w + 1), wide)
        is_neg = bv_eq(bv_extract(wide, w, w), bv_const(1, 1))
        clamp = bv_ite(
            is_neg, bv_const(1 << (w - 1), w), bv_const((1 << (w - 1)) - 1, w)
        )
        expr = bv_ite(no_ovf, narrowed, clamp)
    return SymValue(expr, poison, undef, varies).normalized()


@_scalarize
def _minmax(enc, inst, args, alive, ty):
    a, b = args
    base = _base_name(inst.callee)
    x, y = a.expr, b.expr
    if base == "smax":
        cond = bv_slt(y, x)
    elif base == "smin":
        cond = bv_slt(x, y)
    elif base == "umax":
        cond = bv_ult(y, x)
    else:
        cond = bv_ult(x, y)
    poison, undef, varies = _join(a, b)
    return SymValue(bv_ite(cond, x, y), poison, undef, varies).normalized()


@_scalarize
def _abs(enc, inst, args, alive, ty):
    a = args[0]
    w = ty.width
    # Second arg (is_int_min_poison) if present.
    poison = a.poison
    undef = a.undef_vars
    varies = a.varies
    neg = bv_slt(a.expr, bv_const(0, w))
    expr = bv_ite(neg, bv_neg(a.expr), a.expr)
    if len(args) > 1:
        flag = args[1]
        int_min = bv_const(1 << (w - 1), w)
        poison = bool_or(
            poison,
            bool_and(
                bv_eq(flag.expr, bv_const(1, flag.expr.width)),
                bv_eq(a.expr, int_min),
            ),
        )
    return SymValue(expr, poison, undef, varies).normalized()


@_scalarize
def _ctpop(enc, inst, args, alive, ty):
    a = args[0]
    w = ty.width
    total = bv_const(0, w)
    for i in range(w):
        bit = bv_zext(bv_extract(a.expr, i, i), w)
        total = bv_add(total, bit)
    return SymValue(total, a.poison, a.undef_vars, a.varies).normalized()


@_scalarize
def _ctlz(enc, inst, args, alive, ty):
    a = args[0]
    w = ty.width
    out = bv_const(w, w)
    for i in range(w):
        out = bv_ite(
            bv_eq(bv_extract(a.expr, i, i), bv_const(1, 1)),
            bv_const(w - 1 - i, w),
            out,
        )
    poison = a.poison
    if len(args) > 1:
        zero_poison = args[1]
        poison = bool_or(
            poison,
            bool_and(
                bv_eq(zero_poison.expr, bv_const(1, zero_poison.expr.width)),
                bv_eq(a.expr, bv_const(0, w)),
            ),
        )
    return SymValue(out, poison, a.undef_vars, a.varies).normalized()


@_scalarize
def _cttz(enc, inst, args, alive, ty):
    a = args[0]
    w = ty.width
    out = bv_const(w, w)
    for i in reversed(range(w)):
        out = bv_ite(
            bv_eq(bv_extract(a.expr, i, i), bv_const(1, 1)),
            bv_const(i, w),
            out,
        )
    poison = a.poison
    if len(args) > 1:
        zero_poison = args[1]
        poison = bool_or(
            poison,
            bool_and(
                bv_eq(zero_poison.expr, bv_const(1, zero_poison.expr.width)),
                bv_eq(a.expr, bv_const(0, w)),
            ),
        )
    return SymValue(out, poison, a.undef_vars, a.varies).normalized()


@_scalarize
def _bitreverse(enc, inst, args, alive, ty):
    a = args[0]
    w = ty.width
    expr = bv_extract(a.expr, w - 1, w - 1)
    for i in range(1, w):
        from repro.smt.terms import bv_concat

        expr = bv_concat(bv_extract(a.expr, i, i), expr)
    return SymValue(expr, a.poison, a.undef_vars, a.varies).normalized()


@_scalarize
def _bswap(enc, inst, args, alive, ty):
    a = args[0]
    w = ty.width
    assert w % 8 == 0
    from repro.smt.terms import bv_concat

    nbytes = w // 8
    expr = None
    for i in range(nbytes):
        byte = bv_extract(a.expr, 8 * i + 7, 8 * i)
        expr = byte if expr is None else bv_concat(expr, byte)
    return SymValue(expr, a.poison, a.undef_vars, a.varies).normalized()


@_scalarize
def _fshl(enc, inst, args, alive, ty):
    a, b, c = args
    w = ty.width
    from repro.smt.terms import bv_concat, bv_urem

    amt = bv_urem(c.expr, bv_const(w, w))
    cat = bv_concat(a.expr, b.expr)  # 2w bits
    base = _base_name(inst.callee)
    if base == "fshl":
        shifted = bv_shl(cat, bv_zext(amt, 2 * w))
        expr = bv_extract(shifted, 2 * w - 1, w)
    else:
        shifted = bv_lshr(cat, bv_zext(amt, 2 * w))
        expr = bv_extract(shifted, w - 1, 0)
    poison, undef, varies = _join(a, b, c)
    return SymValue(expr, poison, undef, varies).normalized()


def _with_overflow(enc, inst, args, alive):
    """llvm.sadd/uadd/ssub/usub/smul/umul.with.overflow -> {res, i1}."""
    a, b = args
    assert isinstance(a, SymValue) and isinstance(b, SymValue)
    w = a.expr.width
    base = _base_name(inst.callee)
    signed = base.startswith("s")
    op = base[1:4]
    ext = bv_sext if signed else bv_zext
    ww = 2 * w if op == "mul" else w + 1
    wide_op = {"add": bv_add, "sub": bv_sub, "mul": bv_mul}[op]
    wide = wide_op(ext(a.expr, ww), ext(b.expr, ww))
    narrow = bv_extract(wide, w - 1, 0)
    overflow = bool_not(bv_eq(ext(narrow, ww), wide))
    poison, undef, varies = _join(a, b)
    res = SymValue(narrow, poison, undef, varies).normalized()
    ovf = SymValue(
        bv_ite(overflow, bv_const(1, 1), bv_const(0, 1)), poison, undef, varies
    ).normalized()
    return SymAggregate((res, ovf))


def _assume(enc, inst, args, alive):
    cond = args[0]
    assert isinstance(cond, SymValue)
    # assume(false/poison/undef) is UB; otherwise constrains the path.
    enc.ub_terms.append(
        bool_and(
            alive,
            bool_or(
                cond.poison, cond.varies, bv_eq(cond.expr, bv_const(0, 1))
            ),
        )
    )
    return None


def _expect(enc, inst, args, alive):
    return args[0]


def _freeze_like(enc, inst, args, alive):
    return enc._freeze(args[0])


_HANDLERS = {
    "sadd.sat": _sat_arith,
    "uadd.sat": _sat_arith,
    "ssub.sat": _sat_arith,
    "usub.sat": _sat_arith,
    "smax": _minmax,
    "smin": _minmax,
    "umax": _minmax,
    "umin": _minmax,
    "abs": _abs,
    "ctpop": _ctpop,
    "ctlz": _ctlz,
    "cttz": _cttz,
    "bitreverse": _bitreverse,
    "bswap": _bswap,
    "fshl": _fshl,
    "fshr": _fshl,
    "sadd.with.overflow": _with_overflow,
    "uadd.with.overflow": _with_overflow,
    "ssub.with.overflow": _with_overflow,
    "usub.with.overflow": _with_overflow,
    "smul.with.overflow": _with_overflow,
    "umul.with.overflow": _with_overflow,
    "assume": _assume,
    "expect": _expect,
}

SUPPORTED_INTRINSICS = sorted(_HANDLERS)
