"""Library-function specifications (§3.8).

LLVM ships coarse-grained semantics for 463 library functions; optimizers
lean on predicates like "always returns", "never writes memory", or
"returns non-null".  Alive2 mirrors that knowledge for 117 functions; we
do the same for the set our optimizer and corpus use.  A spec contributes
function attributes that the call encoder (§6) honours, plus an optional
*pairing class* so that e.g. ``printf`` in the source can be refined by
``puts`` in the target (the paper's canonical example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class LibFuncSpec:
    name: str
    attrs: frozenset = frozenset()
    # Calls whose pair_class matches may be related across source/target
    # even when the callee names differ (printf -> puts).
    pair_class: Optional[str] = None
    # True when only some call shapes are modelled (paper: "some of which
    # only partially").
    partial: bool = False


def _spec(name, attrs=(), pair_class=None, partial=False):
    return LibFuncSpec(name, frozenset(attrs), pair_class, partial)


LIBRARY_SPECS: Dict[str, LibFuncSpec] = {
    spec.name: spec
    for spec in [
        # -- <stdlib.h> ----------------------------------------------------
        _spec("abort", attrs={"noreturn"}),
        _spec("exit", attrs={"noreturn"}),
        _spec("_Exit", attrs={"noreturn"}),
        _spec("abs", attrs={"readnone", "willreturn"}),
        _spec("labs", attrs={"readnone", "willreturn"}),
        _spec("atoi", attrs={"readonly", "willreturn"}, partial=True),
        _spec("rand", attrs={"willreturn"}),
        # -- <string.h> ----------------------------------------------------
        _spec("strlen", attrs={"readonly", "willreturn"}),
        _spec("strcmp", attrs={"readonly", "willreturn"}),
        _spec("strncmp", attrs={"readonly", "willreturn"}),
        _spec("strchr", attrs={"readonly", "willreturn"}, partial=True),
        _spec("memcmp", attrs={"readonly", "willreturn"}),
        _spec("memchr", attrs={"readonly", "willreturn"}, partial=True),
        _spec("memcpy", attrs={"willreturn"}, partial=True),
        _spec("memmove", attrs={"willreturn"}, partial=True),
        _spec("memset", attrs={"willreturn"}, partial=True),
        # -- <stdio.h> -----------------------------------------------------
        _spec("printf", pair_class="stdio-out", attrs={"willreturn"}),
        _spec("puts", pair_class="stdio-out", attrs={"willreturn"}),
        _spec("putchar", pair_class="stdio-out", attrs={"willreturn"}),
        _spec("fprintf", attrs={"willreturn"}, partial=True),
        _spec("fputs", attrs={"willreturn"}, partial=True),
        _spec("fputc", attrs={"willreturn"}, partial=True),
        # -- <math.h> (operate on our scaled formats) ------------------------
        _spec("fabs", attrs={"readnone", "willreturn"}),
        _spec("fabsf", attrs={"readnone", "willreturn"}),
        _spec("sqrt", attrs={"readnone", "willreturn"}, partial=True),
        _spec("sqrtf", attrs={"readnone", "willreturn"}, partial=True),
        _spec("fmin", attrs={"readnone", "willreturn"}),
        _spec("fmax", attrs={"readnone", "willreturn"}),
        _spec("floor", attrs={"readnone", "willreturn"}),
        _spec("ceil", attrs={"readnone", "willreturn"}),
        _spec("trunc", attrs={"readnone", "willreturn"}),
        _spec("round", attrs={"readnone", "willreturn"}),
        # -- pthreads / misc (treated as opaque but willreturn) -------------
        _spec("free", attrs={"willreturn"}, partial=True),
        _spec("malloc", attrs={"willreturn"}, partial=True),
        _spec("calloc", attrs={"willreturn"}, partial=True),
    ]
}


def pair_class_of(callee: str) -> Optional[str]:
    spec = LIBRARY_SPECS.get(callee)
    return spec.pair_class if spec is not None else None


def spec_count() -> int:
    return len(LIBRARY_SPECS)
