"""Independent RUP proof checker with backward trimming.

This module certifies UNSAT claims made by :class:`repro.sat.solver
.SatSolver` without trusting it: it has its own clause store, its own
two-watched-literal unit propagation, and shares nothing with the
solver beyond the DIMACS literal encoding.  A lemma is accepted iff it
is a reverse-unit-propagation (RUP) consequence of the clauses alive at
the point it was logged: asserting the negation of every lemma literal
and propagating exhaustively must yield a conflict.

Checking runs *backward* from the final lemma (DRAT-trim style): only
lemmas reachable through antecedent marking from the terminal conflict
are verified, so certification cost is proportional to the useful part
of the proof rather than to everything the search ever learned.  The
watch structures are maintained incrementally along the backward walk —
clauses are detached at their addition events and re-attached at their
deletion events — so the whole pass is a single traversal of the log.

Assumption support: an UNSAT under assumptions terminates the log with
the clause ``¬core``.  The checker verifies both that this final lemma
only negates declared assumption literals and that it is RUP with
respect to the clause database alone, which together certify that the
formula conjoined with the core is unsatisfiable.

Tolerated log artifacts (each only ever weakens the claim being
checked, never strengthens it): tautological clauses are ignored,
duplicate literals are merged, and a deletion that matches no live
clause is skipped — the clause simply stays in the database, which can
only make later RUP checks easier against a still-entailed set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sat.proof import ADD, DELETE, INPUT


@dataclass
class RupOutcome:
    """Result of checking one proof log."""

    valid: bool
    reason: str = ""
    total_lemmas: int = 0
    checked_lemmas: int = 0
    needed_inputs: int = 0


def _normalize(lits: Iterable[int]) -> Tuple[Optional[Tuple[int, ...]], bool]:
    """Dedup literals; returns (lits, is_tautology).  ``None`` on a bad lit."""
    seen: Dict[int, int] = {}
    out: List[int] = []
    taut = False
    for lit in lits:
        if not isinstance(lit, int) or lit == 0:
            return None, False
        prev = seen.get(abs(lit))
        if prev is None:
            seen[abs(lit)] = lit
            out.append(lit)
        elif prev != lit:
            taut = True
    return tuple(out), taut


class _ClauseDb:
    """Clause store + two-watched-literal propagation (checker-private)."""

    def __init__(self) -> None:
        self.clauses: List[Tuple[int, ...]] = []
        self.taut: List[bool] = []
        self._watch: Dict[int, List[int]] = {}  # lit -> cids watching lit
        self._pair: Dict[int, List[int]] = {}  # cid -> its two watched lits
        self._units: Dict[int, int] = {}  # cid -> the unit literal
        self._empties: Set[int] = set()
        self._attached: Set[int] = set()

    def new_clause(self, lits: Tuple[int, ...], taut: bool) -> int:
        cid = len(self.clauses)
        self.clauses.append(lits)
        self.taut.append(taut)
        return cid

    # -- attach / detach ---------------------------------------------------
    def attach(self, cid: int) -> None:
        if cid in self._attached or self.taut[cid]:
            # A tautology is satisfied under every assignment: it can never
            # become unit or conflicting, so it never participates in RUP.
            return
        self._attached.add(cid)
        lits = self.clauses[cid]
        if not lits:
            self._empties.add(cid)
        elif len(lits) == 1:
            self._units[cid] = lits[0]
        else:
            self._pair[cid] = [lits[0], lits[1]]
            self._watch.setdefault(lits[0], []).append(cid)
            self._watch.setdefault(lits[1], []).append(cid)

    def detach(self, cid: int) -> None:
        if cid not in self._attached:
            return
        self._attached.discard(cid)
        self._empties.discard(cid)
        if self._units.pop(cid, None) is not None:
            return
        pair = self._pair.pop(cid, None)
        if pair is None:
            return
        for lit in set(pair):
            watchers = self._watch.get(lit)
            if watchers is not None and cid in watchers:
                watchers.remove(cid)

    # -- RUP ---------------------------------------------------------------
    def rup(self, lemma: Sequence[int]) -> Tuple[bool, Set[int]]:
        """Is ``lemma`` a RUP consequence of the attached clauses?

        Returns ``(valid, antecedent cids)``.  The assignment is local to
        the call; watch positions persist between calls, which is sound
        because any watch pair is valid under the empty assignment.
        """
        lemma_vars = {abs(lit) for lit in lemma}
        if len(lemma_vars) < len(lemma):
            return True, set()  # tautological lemma: vacuously entailed
        assign: Dict[int, bool] = {}
        reason: Dict[int, Optional[int]] = {}
        trail: List[int] = []

        def value(lit: int) -> Optional[bool]:
            val = assign.get(abs(lit))
            if val is None:
                return None
            return val if lit > 0 else not val

        def enqueue(lit: int, rcid: Optional[int]) -> Optional[Set[int]]:
            """Assign ``lit`` true; returns antecedents on conflict."""
            val = value(lit)
            if val is True:
                return None
            if val is False:
                return self._closure(
                    [c for c in (rcid, reason.get(abs(lit))) if c is not None],
                    reason,
                )
            assign[abs(lit)] = lit > 0
            reason[abs(lit)] = rcid
            trail.append(lit)
            return None

        if self._empties:
            return True, {next(iter(self._empties))}
        for lit in lemma:
            enqueue(-lit, None)  # cannot conflict: lemma has distinct vars
        for cid, lit in self._units.items():
            conflict = enqueue(lit, cid)
            if conflict is not None:
                return True, conflict
        qhead = 0
        while qhead < len(trail):
            false_lit = -trail[qhead]
            qhead += 1
            watchers = self._watch.get(false_lit)
            if not watchers:
                continue
            kept: List[int] = []
            i = 0
            while i < len(watchers):
                cid = watchers[i]
                i += 1
                pair = self._pair[cid]
                if pair[0] == false_lit:
                    pair[0], pair[1] = pair[1], pair[0]
                other = pair[0]
                if value(other) is True:
                    kept.append(cid)
                    continue
                moved = False
                for cand in self.clauses[cid]:
                    if cand != other and cand != false_lit and value(cand) is not False:
                        pair[1] = cand
                        self._watch.setdefault(cand, []).append(cid)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(cid)
                if value(other) is False:
                    kept.extend(watchers[i:])
                    self._watch[false_lit] = kept
                    return True, self._closure([cid], reason)
                conflict = enqueue(other, cid)
                if conflict is not None:
                    kept.extend(watchers[i:])
                    self._watch[false_lit] = kept
                    return True, conflict
            self._watch[false_lit] = kept
        return False, set()

    def _closure(
        self, start: List[int], reason: Dict[int, Optional[int]]
    ) -> Set[int]:
        """Antecedent closure: the conflicting clauses plus, transitively,
        the reason clause of every variable they mention."""
        marked = set(start)
        stack = list(marked)
        seen_vars: Set[int] = set()
        while stack:
            cid = stack.pop()
            for lit in self.clauses[cid]:
                var = abs(lit)
                if var in seen_vars:
                    continue
                seen_vars.add(var)
                rcid = reason.get(var)
                if rcid is not None and rcid not in marked:
                    marked.add(rcid)
                    stack.append(rcid)
        return marked


def check_events(
    events: Sequence[Tuple[str, Tuple[int, ...]]],
    assumptions: Sequence[int] = (),
    trim: bool = True,
) -> RupOutcome:
    """Check a :class:`~repro.sat.proof.ProofLog` event stream.

    The last ``ADD`` event is the UNSAT claim: it must consist solely of
    negated ``assumptions`` literals (hence be the empty clause when no
    assumptions were given) and every lemma it transitively depends on
    must be RUP at its point in the log.  ``trim=False`` checks every
    lemma instead of the needed subset.
    """
    db = _ClauseDb()
    norm: List[Tuple[str, Optional[int]]] = []
    by_key: Dict[Tuple[int, ...], List[int]] = {}
    alive: Set[int] = set()
    total_lemmas = 0
    last_add = -1
    for tag, raw in events:
        if tag in (INPUT, ADD):
            lits, taut = _normalize(raw)
            if lits is None:
                return RupOutcome(False, f"malformed clause {raw!r}")
            cid = db.new_clause(lits, taut)
            by_key.setdefault(tuple(sorted(lits)), []).append(cid)
            alive.add(cid)
            norm.append((tag, cid))
            if tag == ADD:
                total_lemmas += 1
                last_add = len(norm) - 1
        elif tag == DELETE:
            lits, _ = _normalize(raw)
            if lits is None:
                return RupOutcome(False, f"malformed deletion {raw!r}")
            stack = by_key.get(tuple(sorted(lits)))
            cid = stack.pop() if stack else None
            if cid is not None:
                alive.discard(cid)
            norm.append((DELETE, cid))
        else:
            return RupOutcome(False, f"unknown event tag {tag!r}")
    if last_add < 0:
        return RupOutcome(False, "no lemma to certify", total_lemmas)

    terminal_cid = norm[last_add][1]
    allowed = {-lit for lit in assumptions}
    stray = set(db.clauses[terminal_cid]) - allowed
    if stray:
        return RupOutcome(
            False,
            "final lemma mentions non-assumption literals "
            f"{sorted(stray)}",
            total_lemmas,
        )

    for cid in alive:
        db.attach(cid)
    needed: Set[int] = {terminal_cid}
    checked = 0
    for tag, cid in reversed(norm):
        if tag == DELETE:
            if cid is not None:
                db.attach(cid)
            continue
        db.detach(cid)
        if tag == INPUT:
            continue
        if not trim:
            needed.add(cid)
        if cid not in needed:
            continue
        ok, antecedents = db.rup(db.clauses[cid])
        checked += 1
        if not ok:
            return RupOutcome(
                False,
                f"lemma {list(db.clauses[cid])} is not RUP",
                total_lemmas,
                checked,
            )
        needed |= antecedents
    needed_inputs = sum(
        1 for tag, cid in norm if tag == INPUT and cid in needed
    )
    return RupOutcome(True, "", total_lemmas, checked, needed_inputs)
