"""A CDCL SAT solver.

The implementation follows the MiniSat architecture:

* two-literal watching for unit propagation,
* first-UIP conflict analysis with clause minimization,
* VSIDS variable activities with exponential decay,
* Luby-sequence restarts,
* activity-based learned-clause database reduction,
* solving under assumptions.

Resource limits (wall-clock deadline, conflict budget, learned-literal
budget as a memory proxy) make every call terminate with a definitive
``SAT``/``UNSAT`` or an explicit ``UNKNOWN`` — the property the bounded
translation validator relies on to report timeouts and out-of-memory
conditions instead of hanging.
"""

from __future__ import annotations

import heapq
import random
import time
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sat.proof import ProofLog
from repro.sat.types import Lit

_UNASSIGNED = -1
_FALSE = 0
_TRUE = 1

# ---------------------------------------------------------------------------
# Unsound-solver fault injection (harness.faults kind="unsound")
# ---------------------------------------------------------------------------
# When armed, the next learned clause anywhere in this process is replaced
# by the empty clause: the solver immediately claims UNSAT, exactly the
# failure mode of a buggy solver silently blessing a miscompilation.  The
# proof checker rejects the bogus empty lemma, which is how the harness
# demonstrates that --certify catches a genuinely unsound solver.

_UNSOUND_PENDING = 0


def arm_unsound(count: int = 1) -> None:
    global _UNSOUND_PENDING
    _UNSOUND_PENDING = count


def reset_unsound() -> None:
    global _UNSOUND_PENDING
    _UNSOUND_PENDING = 0


def _consume_unsound() -> bool:
    global _UNSOUND_PENDING
    if _UNSOUND_PENDING > 0:
        _UNSOUND_PENDING -= 1
        return True
    return False


class SatResult(Enum):
    """Outcome of a :meth:`SatSolver.solve` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverStats:
    """Counters exposed for benchmarks and tests."""

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned: int = 0
    deleted: int = 0
    unknown_reason: str = ""


@dataclass
class Budget:
    """Resource limits for a single solve call.

    ``deadline`` is an absolute :func:`time.monotonic` timestamp.
    ``max_learned_lits`` caps the total number of literals in the learned
    clause database and acts as the out-of-memory proxy.
    """

    deadline: Optional[float] = None
    max_conflicts: Optional[int] = None
    max_learned_lits: Optional[int] = None

    def for_timeout(seconds: float) -> "Budget":  # type: ignore[misc]
        raise TypeError("use Budget(deadline=time.monotonic() + s)")


def _luby(i: int) -> int:
    """Return the i-th element (0-based) of the Luby restart sequence."""
    size, seq = 1, 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) // 2
        seq -= 1
        i %= size
    return 1 << seq


class _ClauseRef:
    """A clause plus its bookkeeping (activity, learned flag)."""

    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits: List[int], learned: bool) -> None:
        self.lits = lits
        self.learned = learned
        self.activity = 0.0


class SatSolver:
    """CDCL solver over DIMACS-style literals.

    Usage::

        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a])
        assert s.solve() is SatResult.SAT
        assert s.model_value(b) is True
    """

    def __init__(
        self,
        polarity_seed: Optional[int] = None,
        proof: Optional[ProofLog] = None,
    ) -> None:
        """``polarity_seed`` randomizes initial branching polarity; useful
        for model diversity in enumeration loops (CEGAR).  ``proof``
        receives a DRAT-style event stream (inputs, learned lemmas,
        deletions) that :mod:`repro.sat.checker` can certify."""
        self._rng = random.Random(polarity_seed) if polarity_seed is not None else None
        self.proof = proof
        self._num_vars = 0
        # Indexed by coded literal (2*v for +v, 2*v+1 for -v).
        self._watches: List[List[_ClauseRef]] = [[], []]
        self._assigns: List[int] = [_UNASSIGNED]
        self._level: List[int] = [0]
        self._reason: List[Optional[_ClauseRef]] = [None]
        self._activity: List[float] = [0.0]
        self._polarity: List[bool] = [False]
        self._trail: List[int] = []  # coded literals, in assignment order
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._clauses: List[_ClauseRef] = []
        self._learned: List[_ClauseRef] = []
        self._learned_lits = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._ok = True
        self._order_heap: List[int] = []
        self._seen: List[int] = [0]
        self.stats = SolverStats()
        self._model: Dict[int, bool] = {}
        self._conflict_assumptions: List[Lit] = []

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self._num_vars += 1
        v = self._num_vars
        self._watches.append([])
        self._watches.append([])
        self._assigns.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._polarity.append(
            self._rng.random() < 0.5 if self._rng is not None else False
        )
        self._seen.append(0)
        heapq.heappush(self._order_heap, (0.0, v))
        return v

    def randomize_polarity(self) -> None:
        """Re-randomize saved phases (model diversification for CEGAR)."""
        if self._rng is None:
            self._rng = random.Random(0)
        for v in range(1, self._num_vars + 1):
            self._polarity[v] = self._rng.random() < 0.5

    def ensure_vars(self, n: int) -> None:
        """Grow the variable space so variables ``1..n`` exist."""
        while self._num_vars < n:
            self.new_var()

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @staticmethod
    def _code(lit: Lit) -> int:
        return (lit << 1) if lit > 0 else ((-lit) << 1) | 1

    @staticmethod
    def _decode(code: int) -> Lit:
        v = code >> 1
        return v if (code & 1) == 0 else -v

    def add_clause(self, lits: Iterable[Lit]) -> bool:
        """Add a clause; returns False if the formula is now trivially unsat.

        The clause is simplified: duplicate literals are merged and clauses
        containing complementary literals are dropped as tautologies.
        """
        if not self._ok:
            return False
        lits = list(lits)
        if self.proof is not None:
            # Log the clause as given, before simplification: dropped
            # literals are justified by level-0 units the checker re-derives.
            self.proof.log_input(lits)
        seen: Dict[int, int] = {}
        out: List[int] = []
        for lit in lits:
            v = lit if lit > 0 else -lit
            self.ensure_vars(v)
            code = self._code(lit)
            prev = seen.get(v)
            if prev is None:
                seen[v] = code
                out.append(code)
            elif prev != code:
                return True  # tautology: x or not-x
        # Drop literals already false at level 0; satisfy check for true ones.
        filtered: List[int] = []
        for code in out:
            val = self._lit_value(code)
            if val == _TRUE and self._level[code >> 1] == 0:
                return True
            if val == _FALSE and self._level[code >> 1] == 0:
                continue
            filtered.append(code)
        if not filtered:
            self._ok = False
            self._log_lemma([])
            return False
        if len(filtered) == 1:
            if not self._enqueue(filtered[0], None):
                self._ok = False
                self._log_lemma([])
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                self._log_lemma([])
                return False
            return True
        ref = _ClauseRef(filtered, learned=False)
        self._attach(ref)
        self._clauses.append(ref)
        return True

    # ------------------------------------------------------------------
    # Assignment primitives
    # ------------------------------------------------------------------
    def _lit_value(self, code: int) -> int:
        val = self._assigns[code >> 1]
        if val == _UNASSIGNED:
            return _UNASSIGNED
        return val ^ (code & 1)

    def _attach(self, ref: _ClauseRef) -> None:
        self._watches[ref.lits[0] ^ 1].append(ref)
        self._watches[ref.lits[1] ^ 1].append(ref)

    def _enqueue(self, code: int, reason: Optional[_ClauseRef]) -> bool:
        val = self._lit_value(code)
        if val != _UNASSIGNED:
            return val == _TRUE
        v = code >> 1
        self._assigns[v] = _TRUE if (code & 1) == 0 else _FALSE
        self._level[v] = len(self._trail_lim)
        self._reason[v] = reason
        self._polarity[v] = (code & 1) == 0
        self._trail.append(code)
        return True

    def _propagate(self) -> Optional[_ClauseRef]:
        while self._qhead < len(self._trail):
            code = self._trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_code = code ^ 1
            watchers = self._watches[code]
            self._watches[code] = []
            i = 0
            n = len(watchers)
            while i < n:
                ref = watchers[i]
                i += 1
                lits = ref.lits
                # Ensure the false literal is at position 1.
                if lits[0] == false_code:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._lit_value(first) == _TRUE:
                    self._watches[code].append(ref)
                    continue
                # Look for a new watch.
                found = False
                for k in range(2, len(lits)):
                    if self._lit_value(lits[k]) != _FALSE:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[lits[1] ^ 1].append(ref)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                self._watches[code].append(ref)
                if not self._enqueue(first, ref):
                    # Conflict: restore remaining watchers and report.
                    self._watches[code].extend(watchers[i:])
                    self._qhead = len(self._trail)
                    return ref
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _bump_var(self, v: int) -> None:
        self._activity[v] += self._var_inc
        if self._activity[v] > 1e100:
            for i in range(1, self._num_vars + 1):
                self._activity[i] *= 1e-100
            self._var_inc *= 1e-100
            # Rebuild the heap: stored keys are stale after rescaling.
            self._order_heap = [
                (-self._activity[i], i)
                for i in range(1, self._num_vars + 1)
                if self._assigns[i] == _UNASSIGNED
            ]
            heapq.heapify(self._order_heap)
            return
        heapq.heappush(self._order_heap, (-self._activity[v], v))

    def _bump_clause(self, ref: _ClauseRef) -> None:
        ref.activity += self._cla_inc
        if ref.activity > 1e20:
            for c in self._learned:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: _ClauseRef) -> tuple[List[int], int]:
        """First-UIP analysis; returns (learned clause codes, backtrack level)."""
        seen = self._seen
        learnt: List[int] = [0]  # placeholder for the asserting literal
        path = 0
        p = -1
        index = len(self._trail) - 1
        reason: Optional[_ClauseRef] = conflict
        cur_level = len(self._trail_lim)
        while True:
            assert reason is not None
            if reason.learned:
                self._bump_clause(reason)
            start = 0 if p == -1 else 1
            for code in reason.lits[start:]:
                v = code >> 1
                if seen[v] or self._level[v] == 0:
                    continue
                seen[v] = 1
                self._bump_var(v)
                if self._level[v] == cur_level:
                    path += 1
                else:
                    learnt.append(code)
            while not seen[self._trail[index] >> 1]:
                index -= 1
            p = self._trail[index]
            index -= 1
            v = p >> 1
            seen[v] = 0
            reason = self._reason[v]
            path -= 1
            if path == 0:
                break
        learnt[0] = p ^ 1
        # Clause minimization: drop literals implied by the rest.
        marks = [code >> 1 for code in learnt]
        kept = [learnt[0]]
        for code in learnt[1:]:
            r = self._reason[code >> 1]
            if r is None:
                kept.append(code)
                continue
            redundant = True
            for other in r.lits:
                ov = other >> 1
                if ov != (code >> 1) and not seen[ov] and self._level[ov] > 0:
                    redundant = False
                    break
            if not redundant:
                kept.append(code)
        for v in marks:
            seen[v] = 0
        learnt = kept
        if len(learnt) == 1:
            return learnt, 0
        # Find backtrack level: max level among learnt[1:].
        max_i = 1
        for i in range(2, len(learnt)):
            if self._level[learnt[i] >> 1] > self._level[learnt[max_i] >> 1]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self._level[learnt[1] >> 1]

    def _log_lemma(self, codes: List[int]) -> None:
        if self.proof is not None:
            self.proof.log_lemma([self._decode(c) for c in codes])

    def _final_core_from_conflict(self, conflict: _ClauseRef) -> List[int]:
        """Assumption core for a conflict at level <= #assumptions.

        MiniSat's ``analyzeFinal``: walk the trail top-down from the
        conflict clause, expanding propagation reasons; the pseudo-decision
        literals reached (reason None, level > 0) are exactly the
        assumptions the contradiction depends on.  Must run before
        ``_backtrack(0)`` destroys the trail.
        """
        seen = self._seen
        core: List[int] = []
        for code in conflict.lits:
            v = code >> 1
            if self._level[v] > 0:
                seen[v] = 1
        for i in range(len(self._trail) - 1, -1, -1):
            code = self._trail[i]
            v = code >> 1
            if not seen[v]:
                continue
            seen[v] = 0
            reason = self._reason[v]
            if reason is None:
                core.append(code)
            else:
                for other in reason.lits:
                    ov = other >> 1
                    if self._level[ov] > 0:
                        seen[ov] = 1
        return core

    def _final_core_from_failed(self, failed_code: int) -> List[int]:
        """Assumption core when an assumption is already FALSE on the trail:
        the failed assumption itself plus the assumptions that propagated
        its negation."""
        core = [failed_code]
        v = failed_code >> 1
        if self._level[v] == 0:
            return core
        seen = self._seen
        seen[v] = 1
        for i in range(len(self._trail) - 1, -1, -1):
            code = self._trail[i]
            w = code >> 1
            if not seen[w]:
                continue
            seen[w] = 0
            reason = self._reason[w]
            if reason is None:
                core.append(code)
            else:
                for other in reason.lits:
                    ov = other >> 1
                    if self._level[ov] > 0:
                        seen[ov] = 1
        return core

    def _finish_assumption_unsat(self, core_codes: List[int]) -> None:
        """Record the core and log the terminal lemma ``¬core``."""
        self._conflict_assumptions = [self._decode(c) for c in core_codes]
        self._log_lemma([c ^ 1 for c in core_codes])
        self._backtrack(0)

    def unsat_core(self) -> List[Lit]:
        """Assumption literals the last UNSAT answer depended on (may be a
        strict subset of what was passed; empty for a root-level UNSAT)."""
        return list(self._conflict_assumptions)

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        for code in reversed(self._trail[bound:]):
            v = code >> 1
            self._assigns[v] = _UNASSIGNED
            self._reason[v] = None
            heapq.heappush(self._order_heap, (-self._activity[v], v))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> int:
        # Lazy max-heap over VSIDS activities: entries may be stale
        # (assigned variable, outdated activity); skip those.
        heap = self._order_heap
        assigns = self._assigns
        activity = self._activity
        while heap:
            neg_act, v = heap[0]
            if assigns[v] != _UNASSIGNED or -neg_act != activity[v]:
                heapq.heappop(heap)
                continue
            return v
        # Heap exhausted: fall back to a scan (re-seeds missing entries).
        best = 0
        best_act = -1.0
        for v in range(1, self._num_vars + 1):
            if assigns[v] == _UNASSIGNED:
                heapq.heappush(heap, (-activity[v], v))
                if activity[v] > best_act:
                    best_act = activity[v]
                    best = v
        return best

    def _reduce_db(self) -> None:
        self._learned.sort(key=lambda c: c.activity)
        keep: List[_ClauseRef] = []
        target = len(self._learned) // 2
        removed = set()
        for i, ref in enumerate(self._learned):
            locked = any(self._reason[code >> 1] is ref for code in ref.lits[:1])
            if i < target and len(ref.lits) > 2 and not locked:
                removed.add(id(ref))
                self._learned_lits -= len(ref.lits)
                self.stats.deleted += 1
                if self.proof is not None:
                    self.proof.log_delete(
                        [self._decode(c) for c in ref.lits]
                    )
            else:
                keep.append(ref)
        if not removed:
            return
        self._learned = keep
        for w in range(2, len(self._watches)):
            lst = self._watches[w]
            self._watches[w] = [c for c in lst if id(c) not in removed]

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[Lit] = (),
        budget: Optional[Budget] = None,
    ) -> SatResult:
        """Solve under the given assumptions, subject to ``budget``."""
        self.stats.unknown_reason = ""
        self._conflict_assumptions = []
        if not self._ok:
            return SatResult.UNSAT
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            self._log_lemma([])
            return SatResult.UNSAT
        assumption_codes = []
        for lit in assumptions:
            v = lit if lit > 0 else -lit
            self.ensure_vars(v)
            assumption_codes.append(self._code(lit))

        conflicts_at_start = self.stats.conflicts
        restart_idx = 0
        restart_limit = 32 * _luby(0)
        check_counter = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                if len(self._trail_lim) <= len(assumption_codes):
                    # Conflict under assumptions (or at root level).
                    if not self._trail_lim:
                        self._ok = False
                        self._log_lemma([])
                    else:
                        self._finish_assumption_unsat(
                            self._final_core_from_conflict(conflict)
                        )
                    return SatResult.UNSAT
                learnt, back_level = self._analyze(conflict)
                if _consume_unsound():
                    # Injected solver bug: the learned clause degenerates to
                    # the empty clause, i.e. an unconditional UNSAT claim.
                    learnt = []
                self._log_lemma(learnt)
                if not learnt:
                    self._ok = False
                    self._backtrack(0)
                    return SatResult.UNSAT
                back_level = max(back_level, 0)
                self._backtrack(max(back_level, 0))
                if len(learnt) == 1:
                    self._backtrack(0)
                    if not self._enqueue(learnt[0], None):
                        self._ok = False
                        self._log_lemma([])
                        return SatResult.UNSAT
                else:
                    ref = _ClauseRef(learnt, learned=True)
                    self._attach(ref)
                    self._learned.append(ref)
                    self._learned_lits += len(learnt)
                    self.stats.learned += 1
                    self._bump_clause(ref)
                    self._enqueue(learnt[0], ref)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                # Budget checks on every conflict.
                if budget is not None:
                    used = self.stats.conflicts - conflicts_at_start
                    if budget.max_conflicts is not None and used >= budget.max_conflicts:
                        self.stats.unknown_reason = "conflicts"
                        self._backtrack(0)
                        return SatResult.UNKNOWN
                    if (
                        budget.max_learned_lits is not None
                        and self._learned_lits >= budget.max_learned_lits
                    ):
                        self.stats.unknown_reason = "memory"
                        self._backtrack(0)
                        return SatResult.UNKNOWN
                    if (
                        budget.deadline is not None
                        and used % 128 == 0
                        and time.monotonic() > budget.deadline
                    ):
                        self.stats.unknown_reason = "timeout"
                        self._backtrack(0)
                        return SatResult.UNKNOWN
                if self.stats.conflicts - conflicts_at_start >= restart_limit:
                    restart_idx += 1
                    restart_limit = (
                        self.stats.conflicts - conflicts_at_start
                    ) + 32 * _luby(restart_idx)
                    self.stats.restarts += 1
                    self._backtrack(0)
                if len(self._learned) > 4000 + 8 * self._num_vars:
                    self._reduce_db()
                continue

            check_counter += 1
            if budget is not None and budget.deadline is not None and check_counter % 64 == 0:
                if time.monotonic() > budget.deadline:
                    self.stats.unknown_reason = "timeout"
                    self._backtrack(0)
                    return SatResult.UNKNOWN

            # Re-establish assumptions as pseudo-decisions.
            if len(self._trail_lim) < len(assumption_codes):
                code = assumption_codes[len(self._trail_lim)]
                val = self._lit_value(code)
                if val == _TRUE:
                    self._trail_lim.append(len(self._trail))
                    continue
                if val == _FALSE:
                    self._finish_assumption_unsat(
                        self._final_core_from_failed(code)
                    )
                    return SatResult.UNSAT
                self._trail_lim.append(len(self._trail))
                self._enqueue(code, None)
                continue

            v = self._pick_branch_var()
            if v == 0:
                self._save_model()
                self._backtrack(0)
                return SatResult.SAT
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            code = (v << 1) | (0 if self._polarity[v] else 1)
            self._enqueue(code, None)

    def _save_model(self) -> None:
        self._model = {}
        for v in range(1, self._num_vars + 1):
            val = self._assigns[v]
            self._model[v] = val == _TRUE

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def model_value(self, lit: Lit) -> bool:
        """Value of a literal in the last SAT model (unassigned vars: False)."""
        v = lit if lit > 0 else -lit
        val = self._model.get(v, False)
        return val if lit > 0 else not val

    @property
    def model(self) -> Dict[int, bool]:
        return dict(self._model)
