"""Conflict-driven clause-learning SAT solver.

This package is the bottom of the solver stack that replaces Z3 in the
Alive2 reproduction.  It is a self-contained CDCL solver with two-literal
watching, VSIDS branching, Luby restarts and learned-clause reduction.

The public entry point is :class:`SatSolver`; literals use the DIMACS
convention (positive/negative non-zero integers).  UNSAT answers can be
made self-certifying: pass a :class:`ProofLog` to the solver and verify
the emitted event stream with :func:`check_events` — an independent RUP
checker that shares nothing with the solver beyond the literal encoding.
"""

from repro.sat.checker import RupOutcome, check_events
from repro.sat.proof import Certificate, ProofLog
from repro.sat.solver import SatResult, SatSolver
from repro.sat.types import Clause, Lit, neg, var_of

__all__ = [
    "SatSolver",
    "SatResult",
    "Clause",
    "Lit",
    "neg",
    "var_of",
    "ProofLog",
    "Certificate",
    "RupOutcome",
    "check_events",
]
