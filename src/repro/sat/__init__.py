"""Conflict-driven clause-learning SAT solver.

This package is the bottom of the solver stack that replaces Z3 in the
Alive2 reproduction.  It is a self-contained CDCL solver with two-literal
watching, VSIDS branching, Luby restarts and learned-clause reduction.

The public entry point is :class:`SatSolver`; literals use the DIMACS
convention (positive/negative non-zero integers).
"""

from repro.sat.solver import SatResult, SatSolver
from repro.sat.types import Clause, Lit, neg, var_of

__all__ = ["SatSolver", "SatResult", "Clause", "Lit", "neg", "var_of"]
