"""Basic SAT types: literals and clauses.

Literals follow the DIMACS convention: a variable is a positive integer
``v >= 1``; the literal ``v`` asserts the variable true and ``-v`` asserts
it false.  Internally the solver maps DIMACS literals to a dense
"coded literal" space (``2*v`` / ``2*v+1``) but that encoding is private
to :mod:`repro.sat.solver`.
"""

from __future__ import annotations

from typing import List

Lit = int
Clause = List[Lit]


def neg(lit: Lit) -> Lit:
    """Return the negation of a DIMACS literal."""
    return -lit


def var_of(lit: Lit) -> int:
    """Return the (positive) variable index of a DIMACS literal."""
    return lit if lit > 0 else -lit
