"""DRAT-style proof logging for the CDCL solver.

A :class:`ProofLog` is the append-only event stream a :class:`SatSolver`
emits while searching: every *input* clause as given by the caller
(before any in-solver simplification), every *learned* clause the
moment first-UIP analysis produces it, and every learned-clause
*deletion* performed by database reduction.  An UNSAT answer terminates
the stream with a final lemma — the empty clause for a root-level
contradiction, or the negation of the assumption core for an UNSAT
under assumptions.

Every logged lemma is a reverse-unit-propagation (RUP) consequence of
the clauses alive at the moment it was logged, which is exactly what
:mod:`repro.sat.checker` verifies.  The log is cumulative across
incremental ``solve`` calls: lemmas learned while refuting one CEGAR
candidate stay valid (they are consequences of the input clauses alone),
so a certificate for the k-th UNSAT simply checks the whole stream up to
that point.

The :class:`Certificate` bundles one checked UNSAT claim for the upper
layers: the CNF/variable-map digest from the bit-blaster (tying the
proof to the query that was actually posed), the proof-size counters
before and after backward trimming, the assumption core, and the
checker's verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from repro.sat.types import Lit

#: Event tags: input clause / lemma addition / lemma deletion.
INPUT = "i"
ADD = "a"
DELETE = "d"


class ProofLog:
    """Append-only (tag, literals) event stream in DIMACS literals."""

    __slots__ = ("events", "inputs", "lemmas", "deletions")

    def __init__(self) -> None:
        self.events: List[Tuple[str, Tuple[int, ...]]] = []
        self.inputs = 0
        self.lemmas = 0
        self.deletions = 0

    def log_input(self, lits: Iterable[Lit]) -> None:
        self.events.append((INPUT, tuple(lits)))
        self.inputs += 1

    def log_lemma(self, lits: Iterable[Lit]) -> None:
        self.events.append((ADD, tuple(lits)))
        self.lemmas += 1

    def log_delete(self, lits: Iterable[Lit]) -> None:
        self.events.append((DELETE, tuple(lits)))
        self.deletions += 1

    @property
    def terminal(self) -> Tuple[int, ...]:
        """Literals of the last lemma (the UNSAT claim being certified)."""
        for tag, lits in reversed(self.events):
            if tag == ADD:
                return lits
        raise ValueError("proof log has no lemma")

    def __len__(self) -> int:
        return len(self.events)


@dataclass
class Certificate:
    """One independently checked UNSAT claim.

    ``digest`` identifies the CNF + variable map the claim was made
    about; ``core`` is the subset of assumption literals the final lemma
    negates (empty for a root-level UNSAT).  ``checked_lemmas`` counts
    lemmas the backward-trimming checker actually had to verify —
    the "useful proof" the module docstring promises certification cost
    is proportional to.
    """

    query: str
    digest: str
    valid: bool
    reason: str = ""
    lemmas: int = 0
    deletions: int = 0
    checked_lemmas: int = 0
    core: Tuple[int, ...] = field(default_factory=tuple)

    def summary(self) -> str:
        status = "certified" if self.valid else f"REJECTED ({self.reason})"
        return (
            f"{self.query}: {status}, {self.checked_lemmas}/{self.lemmas} "
            f"lemmas checked, core size {len(self.core)}"
        )
