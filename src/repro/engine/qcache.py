"""Sharded two-tier solver query cache keyed by canonical content hashes.

Two different unit tests frequently pose *structurally identical*
refinement queries — the same pass applied to the same idiom produces
the same (phi, psi) pair up to the fresh-name counter baked into
variable names like ``tmp!42``.  This module hashes the assertion DAG
after renaming variables by first occurrence in a deterministic
traversal, so the digest is independent of object identities and of the
global fresh-name counter.  A hit replays the recorded verdict (and
counterexample model, translated back through the renaming) without
touching the solver at all.

The cache is **two-tier** and **sharded**:

* the hot tier is an in-memory LRU per shard, bounded in entries and
  bytes (with hit/miss/eviction counters), so a long-lived worker cannot
  grow without limit — the degradation ladder's ``lru-shrink`` rung
  halves the bounds after a MEMOUT;
* the warm tier is one append-only JSONL file *per shard* in the same
  style as the run journal: each entry is written with a *single*
  ``O_APPEND`` ``write`` syscall so concurrent single-line appends from
  many workers never interleave mid-line, and loading quarantines
  (counts, logs, and skips) corrupted or truncated lines instead of
  raising.  :meth:`QueryCache.heal` atomically rewrites each owned shard
  file with only its valid entries.

Entries are routed to shards by a prefix of the canonical digest
(:func:`shard_index`), which is deterministic across processes: the same
query always lands in the same shard no matter which worker computed it.
A worker can therefore **own a subset of the shards** — it loads and
appends only the files it owns, instead of every worker parsing the
whole cache on startup the way the old single-file layout forced.
Non-owned shards still work as a process-local memory tier; their
entries simply are not persisted by this worker (the shard's owner will
persist its own computations).

Legacy single-file caches (the pre-shard layout, where ``path`` itself
is the JSONL file) are migrated by a compat loader on first sharded
open: the file is atomically claimed by rename, its valid entries are
re-appended into the per-shard files, and the original is kept as
``<path>.migrated``.  ``shards=1`` keeps the legacy layout bit-for-bit
(the single shard's file *is* ``path``).

Soundness policy (unchanged from the unsharded cache):

* definitive verdicts (``sat``/``unsat``) are sound under *any* resource
  budget, so they are the only thing the cache stores and replays;
* resource-exhaustion verdicts (``timeout``/``memout``) are **never
  cached**.  Queries run under the *remaining* per-test deadline — a
  shrinking budget — so a TIMEOUT observed with 0.2s left of a 30s
  budget says nothing about the same query under a fresh budget.  This
  is the poisoning guard: ``store`` silently drops them and loading
  refuses crafted disk entries;
* entries record whether their verdict carried a checker-accepted proof
  certificate (``certified``); under ``--certify`` an *uncertified*
  ``unsat`` entry is treated as a miss and re-solved, so a certified run
  never replays an unchecked claim (CACHE_VERSION 3).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.smt.terms import Term

logger = logging.getLogger("repro.engine.qcache")

# Version 4: fingerprints are computed on post-extraction canonical terms
# (the e-graph rung rewrites queries before hashing), so entries written
# by earlier versions must not replay.  The sharded layout reuses the
# same entry format — shard files and the legacy single file interchange
# entry-for-entry, which is what makes the compat migration a pure move.
# Version 5: the relational analysis contributes witness seeds and union
# seeds that enter the query fingerprints (seeded instantiations are part
# of the hashed assertion set, and union seeds change the e-graph's
# canonical extraction), so v4 entries written without them must not
# replay into runs that compute them — and vice versa.
CACHE_VERSION = 5

#: The only verdicts the cache stores: sound to replay regardless of
#: resource limits.  Exhaustion verdicts (timeout/memout) are never
#: cached — see the module docstring.
_DEFINITIVE = ("sat", "unsat")

#: Default hot-tier bounds, cache-wide (split evenly across shards).
#: Generous enough that ordinary corpus runs never evict; the point is
#: an upper bound for long-lived warm-pool workers, not a working-set
#: knob.
DEFAULT_MAX_ENTRIES = 1 << 16
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: Floor for :meth:`QueryCache.shrink` (the ``lru-shrink`` degradation
#: rung); below this the cache stops being useful and further halving
#: only burns retries.
MIN_SHRINK_ENTRIES = 64


def shard_index(digest: str, shards: int) -> int:
    """The shard a digest routes to: deterministic across processes.

    Uses the leading 32 bits of the (hex, uniformly distributed) sha256
    digest, so the same canonical query lands in the same shard no
    matter which worker — or which run — computed it.
    """
    if shards <= 1:
        return 0
    return int(digest[:8], 16) % shards


def shard_path(path: str, index: int, shards: int) -> str:
    """The on-disk file backing one shard of a sharded cache.

    The shard count is baked into the name so files written under a
    different ``shards=N`` can never be misrouted into this layout —
    they are simply not loaded.
    """
    if shards <= 1:
        return path
    return f"{path}.shard-{index:02d}-of-{shards:02d}"


def _append_entry(path: str, entry: dict) -> None:
    """Append one entry to ``path`` with a single ``O_APPEND`` write.

    The kernel serializes the append position, so concurrent workers
    sharing the file can never interleave *within* a line — the only
    torn write a crash can produce is a truncated final line, which
    loading (and ``heal()``) quarantines.  A read-only or vanished file
    degrades to memory-only silently.
    """
    line = (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")
    parent = os.path.dirname(path)
    try:
        if parent:
            os.makedirs(parent, exist_ok=True)
        fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
    except OSError:
        pass


def canonical_fingerprint(
    items: Sequence[Tuple[str, Term]],
) -> Tuple[str, Dict[str, str]]:
    """Hash a sequence of tagged terms into a content digest.

    Returns ``(digest, rename)`` where ``rename`` maps every variable
    name occurring in the terms to its canonical name (``v0``, ``v1``,
    ... in first-occurrence order of the traversal).  Structurally equal
    term sequences produce equal digests and *positionally* equal
    renamings even when the underlying variable names differ — the
    property that makes cached counterexample models translatable.
    """
    rename: Dict[str, str] = {}
    index: Dict[Term, int] = {}
    lines: List[str] = []

    def visit(root: Term) -> None:
        stack: List[Tuple[Term, bool]] = [(root, False)]
        while stack:
            t, expanded = stack.pop()
            if t in index:
                continue
            if not expanded:
                stack.append((t, True))
                stack.extend((a, False) for a in t.args)
                continue
            if t.op == "var":
                payload = rename.setdefault(t.payload, f"v{len(rename)}")
            else:
                payload = str(t.payload)
            # One JSON array per node: injective, so a payload containing
            # a delimiter or newline cannot forge field/line boundaries
            # and alias a structurally different term sequence.
            lines.append(
                json.dumps([t.op, t.width, payload, [index[a] for a in t.args]])
            )
            index[t] = len(index)

    for tag, term in items:
        visit(term)
        lines.append(json.dumps(["@", tag, index[term]]))
    digest = hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
    return digest, rename


class CacheShard:
    """One shard: a bounded in-memory LRU over one append-only JSONL file.

    ``owned`` controls the disk tier: an owned shard loads its file on
    construction and appends every store; a non-owned shard is a pure
    memory tier (its owner elsewhere persists that slice of the digest
    space).  Either way the LRU bounds hold.
    """

    __slots__ = (
        "index",
        "path",
        "owned",
        "max_entries",
        "max_bytes",
        "entries",
        "mem_bytes",
        "evictions",
        "dropped_lines",
        "loaded_entries",
        "loaded_bytes",
    )

    def __init__(
        self,
        index: int,
        path: Optional[str],
        *,
        owned: bool = True,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.index = index
        self.path = path
        self.owned = owned
        self.max_entries = max(1, max_entries)
        self.max_bytes = max(1, max_bytes)
        self.entries: "OrderedDict[str, dict]" = OrderedDict()
        self.mem_bytes = 0
        self.evictions = 0
        self.dropped_lines = 0
        self.loaded_entries = 0
        self.loaded_bytes = 0
        if self.owned and self.path is not None:
            self._load()

    # -- persistence -------------------------------------------------------
    def _parse_entry(self, line: str) -> Optional[dict]:
        """One validated cache entry, or None (quarantined: counted + logged)."""
        try:
            entry = json.loads(line)
        except ValueError:
            entry = None
        if (
            not isinstance(entry, dict)
            or entry.get("v") != CACHE_VERSION
            or not isinstance(entry.get("key"), str)
            or entry.get("result") not in _DEFINITIVE
        ):
            self.dropped_lines += 1
            logger.warning(
                "quarantined cache line in %s (%d so far): %.80r",
                self.path,
                self.dropped_lines,
                line,
            )
            return None
        return entry

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        try:
            with open(self.path, "rb") as fh:
                raw = fh.read().decode("utf-8", errors="replace")
        except OSError:
            return
        self.loaded_bytes += len(raw)
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            entry = self._parse_entry(line)
            if entry is not None:
                self._put_mem(entry["key"], entry, len(line) + 1)
                self.loaded_entries += 1

    def _append(self, entry: dict) -> None:
        _append_entry(self.path, entry)

    def heal(self) -> int:
        """Atomically rewrite this shard's file with only its valid entries.

        Entries appended by *other* writers since our load are preserved —
        the file is re-scanned, not dumped from memory.  Returns the
        number of lines discarded.  The rewrite is temp-file + ``rename``
        in the same directory, so a crash mid-heal leaves either the old
        file or the new one, never a half-written shard.
        """
        if self.path is None or not os.path.exists(self.path):
            return 0
        before = self.dropped_lines
        try:
            with open(self.path, "rb") as fh:
                raw = fh.read().decode("utf-8", errors="replace")
        except OSError:
            return 0
        kept: "OrderedDict[str, dict]" = OrderedDict()
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            entry = self._parse_entry(line)
            if entry is not None:
                # Last write wins, mirroring the load path; keying by
                # digest also collapses duplicates a crashed migration
                # may have double-appended.
                kept[entry["key"]] = entry
                if entry["key"] not in self.entries:
                    self._put_mem(entry["key"], entry, len(line) + 1)
        discarded = self.dropped_lines - before
        parent = os.path.dirname(self.path) or "."
        try:
            fd, tmp = tempfile.mkstemp(
                prefix=".qcache-heal-", suffix=".jsonl", dir=parent
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    for entry in kept.values():
                        fh.write(json.dumps(entry, sort_keys=True) + "\n")
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            return 0
        if discarded:
            logger.warning(
                "healed cache shard %s: discarded %d corrupt line(s), kept %d",
                self.path,
                discarded,
                len(kept),
            )
        return discarded

    # -- hot tier (LRU) ----------------------------------------------------
    @staticmethod
    def _entry_cost(entry: dict) -> int:
        return len(json.dumps(entry, sort_keys=True)) + 1

    def _put_mem(self, key: str, entry: dict, cost: Optional[int] = None) -> None:
        if cost is None:
            cost = self._entry_cost(entry)
        old = self.entries.pop(key, None)
        if old is not None:
            self.mem_bytes -= self._entry_cost(old)
        self.entries[key] = entry
        self.mem_bytes += cost
        self._evict()

    def _evict(self) -> None:
        while self.entries and (
            len(self.entries) > self.max_entries
            or self.mem_bytes > self.max_bytes
        ):
            _key, entry = self.entries.popitem(last=False)
            self.mem_bytes -= self._entry_cost(entry)
            self.evictions += 1

    def get(self, key: str) -> Optional[dict]:
        entry = self.entries.get(key)
        if entry is not None:
            self.entries.move_to_end(key)
        return entry

    def put(self, key: str, entry: dict) -> None:
        self._put_mem(key, entry)
        if self.owned and self.path is not None:
            self._append(entry)

    def set_bounds(self, max_entries: int, max_bytes: int) -> None:
        self.max_entries = max(1, max_entries)
        self.max_bytes = max(1, max_bytes)
        self._evict()

    def counters(self) -> Dict[str, object]:
        return {
            "shard": self.index,
            "owned": self.owned,
            "entries": len(self.entries),
            "mem_bytes": self.mem_bytes,
            "evictions": self.evictions,
            "quarantined": self.dropped_lines,
            "load_entries": self.loaded_entries,
            "load_bytes": self.loaded_bytes,
        }


class QueryCache:
    """Sharded in-memory LRU + optional JSONL-on-disk query-result map.

    Thread-unsafe by design; each worker process owns its own instance.
    Concurrent *disk* writers are tolerated: every entry is one small
    appended line to a per-shard file, and loading drops anything
    unparseable.

    ``shards=1`` (the default) is the legacy layout: one shard whose
    file is ``path`` itself.  With ``shards=N`` entries are routed by
    digest prefix to ``path.shard-KK-of-NN`` files, and ``owned`` (an
    iterable of shard indices, default: all) selects which shards this
    instance loads from and appends to — the mechanism that lets a pool
    of workers split the disk tier instead of every worker parsing all
    of it.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        shards: int = 1,
        owned=None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.path = os.fspath(path) if path is not None else None
        shards = int(shards)
        if shards <= 0:
            raise ValueError(
                f"cache shard count must be a positive integer, got {shards}"
            )
        self.shards = shards
        if owned is None:
            owned_set = set(range(self.shards))
        else:
            owned_set = {int(k) for k in owned if 0 <= int(k) < self.shards}
        self.owned = frozenset(owned_set)
        self.max_entries = max(1, max_entries)
        self.max_bytes = max(1, max_bytes)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        if self.path is not None:
            self._warn_shard_mismatch()
        if self.path is not None and self.shards > 1:
            self._migrate_legacy()
        per_entries = max(1, self.max_entries // self.shards)
        per_bytes = max(1, self.max_bytes // self.shards)
        self._shards: List[CacheShard] = [
            CacheShard(
                k,
                shard_path(self.path, k, self.shards)
                if self.path is not None
                else None,
                owned=k in self.owned,
                max_entries=per_entries,
                max_bytes=per_bytes,
            )
            for k in range(self.shards)
        ]

    def _warn_shard_mismatch(self) -> None:
        """Flag shard files written under a different ``shards=N``.

        Mismatched files are never loaded (the count is baked into the
        file name), which silently looks like an empty cache — so tell
        the user what happened and how to get their entries back.
        """
        import glob as _glob
        import re as _re

        pattern = _glob.escape(self.path) + ".shard-*-of-*"
        found = set()
        for candidate in _glob.glob(pattern):
            m = _re.search(r"\.shard-(\d+)-of-(\d+)$", candidate)
            if m is not None and int(m.group(2)) != self.shards:
                found.add(int(m.group(2)))
        for other in sorted(found):
            logger.warning(
                "query cache %s has shard files written with "
                "--cache-shards %d, but this run uses --cache-shards %d; "
                "those entries will NOT be loaded (re-run with "
                "--cache-shards %d to reuse them, or delete the stale "
                "shard files to silence this warning)",
                self.path,
                other,
                self.shards,
                other,
            )

    # -- legacy migration --------------------------------------------------
    def _migrate_legacy(self) -> None:
        """Move a pre-shard single-file cache into the per-shard files.

        The legacy file is claimed atomically by rename (losers of a
        concurrent race see FileNotFoundError and skip), its valid
        entries are re-appended into the shard files, and the claimed
        file is kept as ``<path>.migrated``.  A claim file left behind
        by a crashed migration is finished the same way — re-appending
        an entry twice is harmless (same key, last write wins).
        """
        claim = self.path + ".migrating"
        if os.path.exists(self.path):
            try:
                os.rename(self.path, claim)
            except OSError:
                pass  # concurrent migrator won the claim
        if not os.path.exists(claim):
            return
        try:
            with open(claim, "rb") as fh:
                raw = fh.read().decode("utf-8", errors="replace")
        except OSError:
            return
        scratch = CacheShard(0, None, owned=False)
        moved = 0
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            entry = scratch._parse_entry(line)
            if entry is None:
                continue
            _append_entry(
                shard_path(
                    self.path,
                    shard_index(entry["key"], self.shards),
                    self.shards,
                ),
                entry,
            )
            moved += 1
        try:
            os.replace(claim, self.path + ".migrated")
        except OSError:
            pass
        logger.info(
            "migrated legacy cache %s: %d entr%s into %d shard file(s), "
            "%d line(s) quarantined",
            self.path,
            moved,
            "y" if moved == 1 else "ies",
            self.shards,
            scratch.dropped_lines,
        )

    # -- routing -----------------------------------------------------------
    def _shard(self, digest: str) -> CacheShard:
        return self._shards[shard_index(digest, self.shards)]

    # -- persistence -------------------------------------------------------
    def heal(self) -> int:
        """Self-heal every owned shard file; returns lines discarded."""
        return sum(s.heal() for s in self._shards if s.owned)

    # -- lookup / store ----------------------------------------------------
    def lookup(
        self, digest: str, require_certified_unsat: bool = False
    ) -> Optional[dict]:
        """The cached entry for ``digest``, honoring the poisoning guard.

        ``require_certified_unsat`` (certify mode) treats an ``unsat``
        entry recorded without an accepted proof certificate as a miss:
        replaying it would launder an unchecked claim into a certified
        run.  ``sat`` entries replay freely — they are witnessed by a
        model, not by a proof.
        """
        entry = self._shard(digest).get(digest)
        if entry is not None and entry["result"] not in _DEFINITIVE:
            entry = None  # belt-and-braces: such entries are never stored
        if (
            entry is not None
            and require_certified_unsat
            and entry["result"] == "unsat"
            and not entry.get("certified", False)
        ):
            entry = None
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(
        self,
        digest: str,
        result: str,
        model: Optional[Dict[str, object]] = None,
        iterations: int = 0,
        certified: bool = False,
    ) -> None:
        # Exhaustion verdicts are only meaningful for the (shrinking,
        # per-test) deadline they ran under; caching one would replay
        # spurious TIMEOUTs into runs with a full budget.  Drop them.
        if result not in _DEFINITIVE:
            return
        entry = {
            "v": CACHE_VERSION,
            "key": digest,
            "result": result,
            "model": dict(model or {}),
            "iterations": iterations,
            "certified": bool(certified),
        }
        self._shard(digest).put(digest, entry)
        self.stores += 1

    # -- bounds (lru-shrink degradation rung) ------------------------------
    def shrink(self) -> Optional[Tuple[int, int]]:
        """Halve the hot-tier bounds (the ``lru-shrink`` MEMOUT rung).

        Returns ``(old_max_entries, new_max_entries)``, or None when the
        bounds are already at the floor.  Entries past the new bounds are
        evicted immediately (memory is released now, not on the next
        store); the disk tier is untouched.
        """
        if self.max_entries <= MIN_SHRINK_ENTRIES:
            return None
        old = self.max_entries
        self.max_entries = max(MIN_SHRINK_ENTRIES, self.max_entries // 2)
        self.max_bytes = max(1 << 20, self.max_bytes // 2)
        per_entries = max(1, self.max_entries // self.shards)
        per_bytes = max(1, self.max_bytes // self.shards)
        for shard in self._shards:
            shard.set_bounds(per_entries, per_bytes)
        return old, self.max_entries

    # -- reporting ---------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(s.entries) for s in self._shards)

    @property
    def dropped_lines(self) -> int:
        return sum(s.dropped_lines for s in self._shards)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "entries": len(self),
            "quarantined": self.dropped_lines,
            "hit_rate": round(self.hit_rate, 4),
            "shards": self.shards,
            "owned_shards": len(self.owned),
            "load_entries": sum(s.loaded_entries for s in self._shards),
            "load_bytes": sum(s.loaded_bytes for s in self._shards),
            "evictions": sum(s.evictions for s in self._shards),
            "mem_bytes": sum(s.mem_bytes for s in self._shards),
            "max_entries": self.max_entries,
            "per_shard": [s.counters() for s in self._shards],
        }


# ---------------------------------------------------------------------------
# Active-cache scoping (mirrors repro.harness.faults.activate)
# ---------------------------------------------------------------------------

_active_cache: Optional[QueryCache] = None


@contextmanager
def activate(cache: Optional[QueryCache]) -> Iterator[Optional[QueryCache]]:
    """Install ``cache`` as the process-wide query cache (None = disabled)."""
    global _active_cache
    previous = _active_cache
    _active_cache = cache
    try:
        yield cache
    finally:
        _active_cache = previous


def active() -> Optional[QueryCache]:
    return _active_cache
