"""Solver-side query result cache keyed by canonical content hashes.

Two different unit tests frequently pose *structurally identical*
refinement queries — the same pass applied to the same idiom produces
the same (phi, psi) pair up to the fresh-name counter baked into
variable names like ``tmp!42``.  This module hashes the assertion DAG
after renaming variables by first occurrence in a deterministic
traversal, so the digest is independent of object identities and of the
global fresh-name counter.  A hit replays the recorded verdict (and
counterexample model, translated back through the renaming) without
touching the solver at all.

Soundness policy:

* definitive verdicts (``sat``/``unsat``) are sound under *any* resource
  budget, so they are the only thing the cache stores and replays;
* resource-exhaustion verdicts (``timeout``/``memout``) are **never
  cached**.  Queries run under the *remaining* per-test deadline — a
  shrinking budget — so a TIMEOUT observed with 0.2s left of a 30s
  budget says nothing about the same query under a fresh budget.  This
  is the poisoning guard: caching an exhaustion verdict would replay
  spurious TIMEOUTs into tests and runs that still have their full
  budget, converting would-be definitive answers into noise.  ``store``
  silently drops them and ``_load`` refuses crafted disk entries;
* entries record whether their verdict carried a checker-accepted proof
  certificate (``certified``); under ``--certify`` an *uncertified*
  ``unsat`` entry is treated as a miss and re-solved, so a certified run
  never replays an unchecked claim (CACHE_VERSION 3).

The optional on-disk layer is an append-only JSONL file in the same
style as the run journal: each entry is written with a *single*
``O_APPEND`` ``write`` syscall so concurrent single-line appends from
many workers never interleave mid-line, and loading quarantines (counts,
logs, and skips) corrupted or truncated lines instead of raising — a
torn write or a crafted entry is never fatal.  :meth:`QueryCache.heal`
self-heals the file: it atomically rewrites it (temp file + rename)
with only the valid entries, discarding the quarantined ones.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.smt.terms import Term

logger = logging.getLogger("repro.engine.qcache")

# Version 4: fingerprints are computed on post-extraction canonical terms
# (the e-graph rung rewrites queries before hashing), so entries written
# by earlier versions must not replay.
CACHE_VERSION = 4

#: The only verdicts the cache stores: sound to replay regardless of
#: resource limits.  Exhaustion verdicts (timeout/memout) are never
#: cached — see the module docstring.
_DEFINITIVE = ("sat", "unsat")


def canonical_fingerprint(
    items: Sequence[Tuple[str, Term]],
) -> Tuple[str, Dict[str, str]]:
    """Hash a sequence of tagged terms into a content digest.

    Returns ``(digest, rename)`` where ``rename`` maps every variable
    name occurring in the terms to its canonical name (``v0``, ``v1``,
    ... in first-occurrence order of the traversal).  Structurally equal
    term sequences produce equal digests and *positionally* equal
    renamings even when the underlying variable names differ — the
    property that makes cached counterexample models translatable.
    """
    rename: Dict[str, str] = {}
    index: Dict[Term, int] = {}
    lines: List[str] = []

    def visit(root: Term) -> None:
        stack: List[Tuple[Term, bool]] = [(root, False)]
        while stack:
            t, expanded = stack.pop()
            if t in index:
                continue
            if not expanded:
                stack.append((t, True))
                stack.extend((a, False) for a in t.args)
                continue
            if t.op == "var":
                payload = rename.setdefault(t.payload, f"v{len(rename)}")
            else:
                payload = str(t.payload)
            # One JSON array per node: injective, so a payload containing
            # a delimiter or newline cannot forge field/line boundaries
            # and alias a structurally different term sequence.
            lines.append(
                json.dumps([t.op, t.width, payload, [index[a] for a in t.args]])
            )
            index[t] = len(index)

    for tag, term in items:
        visit(term)
        lines.append(json.dumps(["@", tag, index[term]]))
    digest = hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
    return digest, rename


class QueryCache:
    """In-memory + optional JSONL-on-disk map from query digest to verdict.

    Thread-unsafe by design; each worker process owns its own instance.
    Concurrent *disk* writers are tolerated: every entry is one small
    appended line, and loading drops anything unparseable.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.dropped_lines = 0
        self._mem: Dict[str, dict] = {}
        if self.path is not None:
            self._load()

    # -- persistence -----------------------------------------------------------
    def _parse_entry(self, line: str) -> Optional[dict]:
        """One validated cache entry, or None (quarantined: counted + logged)."""
        try:
            entry = json.loads(line)
        except ValueError:
            entry = None
        if (
            not isinstance(entry, dict)
            or entry.get("v") != CACHE_VERSION
            or not isinstance(entry.get("key"), str)
            or entry.get("result") not in _DEFINITIVE
        ):
            self.dropped_lines += 1
            logger.warning(
                "quarantined cache line in %s (%d so far): %.80r",
                self.path,
                self.dropped_lines,
                line,
            )
            return None
        return entry

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        try:
            with open(self.path, "rb") as fh:
                raw = fh.read().decode("utf-8", errors="replace")
        except OSError:
            return
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            entry = self._parse_entry(line)
            if entry is not None:
                self._mem[entry["key"]] = entry

    def _append(self, entry: dict) -> None:
        # One O_APPEND write syscall per entry: the kernel serializes the
        # append position, so concurrent workers sharing this file can
        # never interleave *within* a line — the only torn write a crash
        # can produce is a truncated final line, which loading (and
        # heal()) quarantines.
        line = (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")
        parent = os.path.dirname(self.path)
        try:
            if parent:
                os.makedirs(parent, exist_ok=True)
            fd = os.open(
                self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
            try:
                os.write(fd, line)
            finally:
                os.close(fd)
        except OSError:
            # A read-only or vanished cache file degrades to memory-only.
            pass

    def heal(self) -> int:
        """Self-heal the on-disk file: atomically rewrite it with only the
        valid entries, discarding quarantined (corrupt/truncated) lines.

        Entries appended by *other* writers since our load are preserved —
        the file is re-scanned, not dumped from memory.  Returns the
        number of lines discarded.  The rewrite is temp-file + ``rename``
        in the same directory, so a crash mid-heal leaves either the old
        file or the new one, never a half-written cache.
        """
        if self.path is None or not os.path.exists(self.path):
            return 0
        before = self.dropped_lines
        try:
            with open(self.path, "rb") as fh:
                raw = fh.read().decode("utf-8", errors="replace")
        except OSError:
            return 0
        kept: List[dict] = []
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            entry = self._parse_entry(line)
            if entry is not None:
                kept.append(entry)
                self._mem.setdefault(entry["key"], entry)
        discarded = self.dropped_lines - before
        parent = os.path.dirname(self.path) or "."
        try:
            fd, tmp = tempfile.mkstemp(
                prefix=".qcache-heal-", suffix=".jsonl", dir=parent
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    for entry in kept:
                        fh.write(json.dumps(entry, sort_keys=True) + "\n")
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            return 0
        if discarded:
            logger.warning(
                "healed cache %s: discarded %d corrupt line(s), kept %d",
                self.path,
                discarded,
                len(kept),
            )
        return discarded

    # -- lookup / store --------------------------------------------------------
    def lookup(
        self, digest: str, require_certified_unsat: bool = False
    ) -> Optional[dict]:
        """The cached entry for ``digest``, honoring the poisoning guard.

        ``require_certified_unsat`` (certify mode) treats an ``unsat``
        entry recorded without an accepted proof certificate as a miss:
        replaying it would launder an unchecked claim into a certified
        run.  ``sat`` entries replay freely — they are witnessed by a
        model, not by a proof.
        """
        entry = self._mem.get(digest)
        if entry is not None and entry["result"] not in _DEFINITIVE:
            entry = None  # belt-and-braces: such entries are never stored
        if (
            entry is not None
            and require_certified_unsat
            and entry["result"] == "unsat"
            and not entry.get("certified", False)
        ):
            entry = None
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(
        self,
        digest: str,
        result: str,
        model: Optional[Dict[str, object]] = None,
        iterations: int = 0,
        certified: bool = False,
    ) -> None:
        # Exhaustion verdicts are only meaningful for the (shrinking,
        # per-test) deadline they ran under; caching one would replay
        # spurious TIMEOUTs into runs with a full budget.  Drop them.
        if result not in _DEFINITIVE:
            return
        entry = {
            "v": CACHE_VERSION,
            "key": digest,
            "result": result,
            "model": dict(model or {}),
            "iterations": iterations,
            "certified": bool(certified),
        }
        self._mem[digest] = entry
        self.stores += 1
        if self.path is not None:
            self._append(entry)

    # -- reporting -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._mem)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "entries": len(self._mem),
            "quarantined": self.dropped_lines,
            "hit_rate": round(self.hit_rate, 4),
        }


# ---------------------------------------------------------------------------
# Active-cache scoping (mirrors repro.harness.faults.activate)
# ---------------------------------------------------------------------------

_active_cache: Optional[QueryCache] = None


@contextmanager
def activate(cache: Optional[QueryCache]) -> Iterator[Optional[QueryCache]]:
    """Install ``cache`` as the process-wide query cache (None = disabled)."""
    global _active_cache
    previous = _active_cache
    _active_cache = cache
    try:
        yield cache
    finally:
        _active_cache = previous


def active() -> Optional[QueryCache]:
    return _active_cache
