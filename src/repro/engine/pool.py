"""Process-pool scheduler for parallel corpus verification.

The suite runner's throughput — not single-query latency — dominates
wall-clock on whole-corpus runs (the paper validates ~37k unit tests
under per-function budgets).  This module fans per-test jobs out to a
pool of worker processes:

* each worker is its own crash-isolation domain: a hard interpreter
  death (segfault, OOM-kill) loses one test, not the run — strictly
  stronger than the in-process containment of the sequential path,
  which still catches soft failures inside the worker.  A dead worker
  breaks the whole :class:`ProcessPoolExecutor`, and the executor cannot
  say *which* queued test killed it — every pending future raises
  ``BrokenProcessPool``.  Collateral tests are therefore retried without
  being charged an attempt; only after repeated pool collapses does the
  scheduler fall back to one-test-per-pool isolation, where a death is
  unambiguously attributable and counts toward the CRASH verdict;
* the parent is the **single journal writer**: workers return plain
  JSON records and the parent appends them to the run journal as they
  complete, so ``--journal`` resume stays crash-safe under parallelism;
* record ordering is deterministic: the caller merges results in corpus
  order regardless of completion order;
* tests are **batched per worker task**: individual tests are
  milliseconds of work, so per-test dispatch (pickle the test, ship it,
  pickle the record back) used to dominate and made ``--jobs`` *slower*
  than sequential.  The scheduler now submits contiguous chunks of
  ``task_batch`` tests per task (default: enough for ~4 tasks per
  worker), amortizing dispatch while keeping the pool load-balanced;
  journal appends happen per completed chunk, so a crash re-runs at most
  one chunk per worker;
* workers reset the term intern table before every test, bounding
  memory across long runs, and each owns a private
  :class:`~repro.engine.qcache.QueryCache` (sharing the same on-disk
  file when one is configured — appends are line-atomic and loading is
  corruption-tolerant, so concurrent writers are safe).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Tuple

from repro.engine import qcache
from repro.harness import faults
from repro.harness.degrade import DegradationLadder
from repro.harness.faults import FaultPlan
from repro.harness.journal import RunJournal
from repro.refinement.check import Verdict, VerifyOptions
from repro.suite.unittests import UnitTest

#: How many times a test that *attributably* killed its worker process is
#: retried before it is recorded as a hard CRASH.  Attempts are only
#: charged when the death is attributable: in the batched pool a dead
#: worker voids every pending future, so those casualties retry for free.
#: Soft failures are contained inside the worker and never get here.
_MAX_HARD_ATTEMPTS = 2

#: How many pool collapses are absorbed (retrying the unfinished tests in
#: a fresh batched pool each time) before the scheduler switches to
#: one-test-per-pool isolation to pin down the culprit.
_MAX_POOL_BREAKS = 2

#: Target number of chunks per worker when ``task_batch`` is not given:
#: big enough to amortize dispatch, small enough to load-balance a
#: corpus with a few slow outliers.
_TASKS_PER_WORKER = 4


def default_task_batch(n_tests: int, jobs: int) -> int:
    """Chunk size giving ~``_TASKS_PER_WORKER`` tasks per worker."""
    return max(1, n_tests // max(1, jobs * _TASKS_PER_WORKER))


def default_jobs() -> int:
    """CPU-count-aware default for ``--jobs``."""
    return max(1, os.cpu_count() or 1)


def _pool_context():
    """Prefer fork (cheap, inherits the warm interpreter); fall back to
    spawn where fork is unavailable (every argument we ship is picklable)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# -- worker side -------------------------------------------------------------

_worker_state: dict = {}


def _init_worker(
    options: VerifyOptions,
    inject_bugs: bool,
    batch: int,
    ladder: Optional[DegradationLadder],
    fault_plan: Optional[FaultPlan],
    cache_enabled: bool,
    cache_path: Optional[str],
    cache_shards: int = 1,
    jobs: int = 1,
) -> None:
    _worker_state["options"] = options
    _worker_state["inject_bugs"] = inject_bugs
    _worker_state["batch"] = batch
    _worker_state["ladder"] = ladder
    _worker_state["fault_plan"] = fault_plan
    _worker_state["cache_enabled"] = cache_enabled
    _worker_state["cache_path"] = cache_path
    _worker_state["cache_shards"] = max(1, cache_shards)
    _worker_state["jobs"] = max(1, jobs)
    # Unsharded caches load eagerly at fork time, exactly as before.
    # Sharded caches are created lazily by the first chunk, which
    # carries the owner hint this worker's shard slice is derived from
    # (ProcessPoolExecutor has no per-worker initargs to carry it here).
    _worker_state["cache"] = (
        qcache.QueryCache(cache_path)
        if cache_enabled and cache_shards <= 1
        else None
    )


def _chunk_cache(owner_hint: Optional[int]) -> Optional["qcache.QueryCache"]:
    """This worker's cache, creating the sharded tier on first use.

    ``owner_hint`` (the chunk's sequence number modulo ``jobs``) picks
    which shard slice this worker loads and appends; two workers landing
    on the same hint is harmless — shard appends are line-atomic and
    reads of unowned shards just miss to the solver.
    """
    if not _worker_state.get("cache_enabled"):
        return None
    cache = _worker_state.get("cache")
    if cache is None:
        shards = _worker_state["cache_shards"]
        jobs = _worker_state["jobs"]
        owned = None
        if shards > 1 and owner_hint is not None:
            owned = tuple(
                k for k in range(shards) if k % jobs == owner_hint % jobs
            )
        cache = qcache.QueryCache(
            _worker_state["cache_path"], shards=shards, owned=owned
        )
        _worker_state["cache"] = cache
    return cache


def _run_chunk(tests: List[UnitTest], owner_hint: Optional[int] = None) -> dict:
    """Run a chunk of tests in this worker; returns journal-ready records
    plus this worker's cache counters (pid-keyed by the parent so the
    suite summary can report per-worker load bytes).

    Batching amortizes task dispatch; per-test state hygiene (intern
    reset, fault scoping) is unchanged from one-test-per-task dispatch,
    so records are independent of how tests were chunked.
    """
    from repro.smt.terms import reset_interning
    from repro.suite.runner import _run_one_test

    cache = _chunk_cache(owner_hint)
    out: List[dict] = []
    with faults.activate(_worker_state["fault_plan"]), qcache.activate(cache):
        for test in tests:
            # Per-test intern reset bounds worker memory over long corpora
            # (and makes results independent of which worker ran which
            # tests).
            reset_interning()
            record = _run_one_test(
                test,
                _worker_state["options"],
                _worker_state["inject_bugs"],
                _worker_state["batch"],
                _worker_state["ladder"],
            )
            record.worker = os.getpid()
            out.append(record.to_json())
    return {
        "records": out,
        "pid": os.getpid(),
        "cache": cache.counters() if cache is not None else None,
    }


# -- parent side -------------------------------------------------------------


def run_parallel(
    tests: List[UnitTest],
    options: VerifyOptions,
    inject_bugs: bool,
    batch: int,
    *,
    jobs: int,
    journal: Optional[RunJournal] = None,
    fault_plan: Optional[FaultPlan] = None,
    ladder: Optional[DegradationLadder] = None,
    cache_enabled: bool = False,
    cache_path: Optional[str] = None,
    cache_shards: int = 1,
    task_batch: Optional[int] = None,
) -> Tuple[List["TestRecord"], Dict[int, dict]]:
    """Run ``tests`` across ``jobs`` worker processes.

    Returns ``(records, worker_cache)``: records in **corpus order**
    (tests are keyed by corpus index internally, so duplicate test names
    get one record each) and a worker-pid-keyed map of each worker's
    final cache counters (empty when no cache is configured).  The parent
    journals each record as its worker reports it (single writer,
    crash-safe).

    ``task_batch`` tests are shipped per worker task (default: enough
    for ~4 tasks per worker) so dispatch overhead is amortized across a
    chunk instead of being paid per millisecond-sized test.

    Hard worker deaths are handled in two stages.  A dead worker breaks
    the whole pool — every still-pending future raises
    ``BrokenProcessPool`` regardless of whether its chunk ever ran — so
    the unfinished tests are retried in a fresh pool *without* being
    charged an attempt (and with chunking dropped to one test per task,
    making the next failure attributable).  After ``_MAX_POOL_BREAKS``
    collapses the scheduler runs each unfinished test in its own
    single-worker pool: there a death is unambiguously that test's
    doing, attempts are charged, and after ``_MAX_HARD_ATTEMPTS`` the
    test is recorded as a CRASH.  One hard death thus loses (at most)
    one test, never the run, and never mislabels tests that were merely
    queued (or chunked) behind it.
    """
    from repro.suite.runner import TestRecord

    ctx = _pool_context()
    initargs = (
        options,
        inject_bugs,
        batch,
        ladder,
        fault_plan,
        cache_enabled,
        cache_path,
        cache_shards,
        jobs,
    )
    attempts: List[int] = [0] * len(tests)
    records: Dict[int, TestRecord] = {}
    worker_cache: Dict[int, dict] = {}

    def absorb(result: dict) -> List[dict]:
        pid = result.get("pid")
        if pid is not None and result.get("cache"):
            worker_cache[pid] = result["cache"]
        return result.get("records", [])

    def finish(idx: int, record: TestRecord) -> None:
        records[idx] = record
        if journal is not None:
            journal.record(record.to_json())

    def crash_record(test: UnitTest, exc: BaseException) -> TestRecord:
        from repro.harness.isolation import worker_loss_diagnostic

        record = TestRecord(test=test.name, category=test.category)
        record.count(Verdict.CRASH)
        record.diagnostic = worker_loss_diagnostic(
            f"worker process died: {exc}", kind=type(exc).__name__
        )
        return record

    if task_batch is None:
        task_batch = default_task_batch(len(tests), jobs)
    chunk_size = max(1, task_batch)
    pending: List[int] = list(range(len(tests)))
    pool_breaks = 0
    while pending and pool_breaks < _MAX_POOL_BREAKS:
        survivors: List[int] = []
        broke = False
        chunks = [
            pending[i : i + chunk_size]
            for i in range(0, len(pending), chunk_size)
        ]
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(chunks)),
            mp_context=ctx,
            initializer=_init_worker,
            initargs=initargs,
        ) as pool:
            futures = {
                pool.submit(
                    _run_chunk, [tests[i] for i in chunk], seq % max(1, jobs)
                ): chunk
                for seq, chunk in enumerate(chunks)
            }
            for future in as_completed(futures):
                chunk = futures[future]
                try:
                    for idx, rec in zip(chunk, absorb(future.result())):
                        finish(idx, TestRecord.from_json(rec))
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BrokenProcessPool:
                    # Some worker died and took the pool with it; this
                    # chunk may never have run at all.  No attempt is
                    # charged — the culprit is found in isolation below.
                    broke = True
                    survivors.extend(chunk)
                except BaseException as exc:  # noqa: BLE001
                    # The pool is still alive, so this failure (e.g. an
                    # unpicklable result) came from this chunk.  With one
                    # test per chunk it is attributable and charged; a
                    # bigger chunk is retried one-test-per-task so the
                    # next round can attribute it.
                    if len(chunk) == 1:
                        idx = chunk[0]
                        attempts[idx] += 1
                        if attempts[idx] < _MAX_HARD_ATTEMPTS:
                            survivors.append(idx)
                        else:
                            finish(idx, crash_record(tests[idx], exc))
                    else:
                        survivors.extend(chunk)
        pending = survivors
        pool_breaks = pool_breaks + 1 if broke else 0
        # Any retry round runs one test per task: cheap (few tests are
        # left) and it makes in-pool failures attributable.
        chunk_size = 1

    # Repeated collapses: isolate each unfinished test in its own
    # single-worker pool, where a death names its test.
    for idx in pending:
        test = tests[idx]
        while True:
            try:
                with ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=ctx,
                    initializer=_init_worker,
                    initargs=initargs,
                ) as pool:
                    result = pool.submit(
                        _run_chunk, [test], idx % max(1, jobs)
                    ).result()
                finish(idx, TestRecord.from_json(absorb(result)[0]))
                break
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # noqa: BLE001 — worker died
                attempts[idx] += 1
                if attempts[idx] >= _MAX_HARD_ATTEMPTS:
                    finish(idx, crash_record(test, exc))
                    break
    return [records[i] for i in range(len(tests))], worker_cache
