"""Process-pool scheduler for parallel corpus verification.

The suite runner's throughput — not single-query latency — dominates
wall-clock on whole-corpus runs (the paper validates ~37k unit tests
under per-function budgets).  This module fans per-test jobs out to a
pool of worker processes:

* each worker is its own crash-isolation domain: a hard interpreter
  death (segfault, OOM-kill) loses one test, not the run — strictly
  stronger than the in-process containment of the sequential path,
  which still catches soft failures inside the worker;
* the parent is the **single journal writer**: workers return plain
  JSON records and the parent appends them to the run journal as they
  complete, so ``--journal`` resume stays crash-safe under parallelism;
* record ordering is deterministic: the caller merges results in corpus
  order regardless of completion order;
* workers reset the term intern table before every test, bounding
  memory across long runs, and each owns a private
  :class:`~repro.engine.qcache.QueryCache` (sharing the same on-disk
  file when one is configured — appends are line-atomic and loading is
  corruption-tolerant, so concurrent writers are safe).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, List, Optional

from repro.engine import qcache
from repro.harness import faults
from repro.harness.degrade import DegradationLadder
from repro.harness.faults import FaultPlan
from repro.harness.journal import RunJournal
from repro.refinement.check import Verdict, VerifyOptions
from repro.suite.unittests import UnitTest

#: How many times a test whose *worker process* died is retried in a
#: fresh pool before it is recorded as a hard CRASH.  Soft failures are
#: contained inside the worker and never get here.
_MAX_HARD_ATTEMPTS = 2


def default_jobs() -> int:
    """CPU-count-aware default for ``--jobs``."""
    return max(1, os.cpu_count() or 1)


def _pool_context():
    """Prefer fork (cheap, inherits the warm interpreter); fall back to
    spawn where fork is unavailable (every argument we ship is picklable)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# -- worker side -------------------------------------------------------------

_worker_state: dict = {}


def _init_worker(
    options: VerifyOptions,
    inject_bugs: bool,
    batch: int,
    ladder: Optional[DegradationLadder],
    fault_plan: Optional[FaultPlan],
    cache_enabled: bool,
    cache_path: Optional[str],
) -> None:
    _worker_state["options"] = options
    _worker_state["inject_bugs"] = inject_bugs
    _worker_state["batch"] = batch
    _worker_state["ladder"] = ladder
    _worker_state["fault_plan"] = fault_plan
    _worker_state["cache"] = (
        qcache.QueryCache(cache_path) if cache_enabled else None
    )


def _run_task(test: UnitTest) -> dict:
    """Run one test in this worker; returns the journal-ready record."""
    from repro.smt.terms import reset_interning
    from repro.suite.runner import _run_one_test

    # Per-test intern reset bounds worker memory over long corpora (and
    # makes results independent of which worker ran which tests).
    reset_interning()
    cache = _worker_state["cache"]
    with faults.activate(_worker_state["fault_plan"]), qcache.activate(cache):
        record = _run_one_test(
            test,
            _worker_state["options"],
            _worker_state["inject_bugs"],
            _worker_state["batch"],
            _worker_state["ladder"],
        )
    record.worker = os.getpid()
    return record.to_json()


# -- parent side -------------------------------------------------------------


def run_parallel(
    tests: List[UnitTest],
    options: VerifyOptions,
    inject_bugs: bool,
    batch: int,
    *,
    jobs: int,
    journal: Optional[RunJournal] = None,
    fault_plan: Optional[FaultPlan] = None,
    ladder: Optional[DegradationLadder] = None,
    cache_enabled: bool = False,
    cache_path: Optional[str] = None,
) -> List["TestRecord"]:
    """Run ``tests`` across ``jobs`` worker processes.

    Returns records in **corpus order**.  The parent journals each record
    as its worker reports it (single writer, crash-safe); a test whose
    worker process dies is retried once in a fresh pool, then recorded as
    a CRASH.
    """
    from repro.suite.runner import TestRecord

    ctx = _pool_context()
    initargs = (
        options,
        inject_bugs,
        batch,
        ladder,
        fault_plan,
        cache_enabled,
        cache_path,
    )
    remaining = list(tests)
    attempts: Dict[str, int] = {t.name: 0 for t in tests}
    records: Dict[str, TestRecord] = {}

    def finish(record: TestRecord) -> None:
        records[record.test] = record
        if journal is not None:
            journal.record(record.to_json())

    while remaining:
        retry: List[UnitTest] = []
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(remaining)),
            mp_context=ctx,
            initializer=_init_worker,
            initargs=initargs,
        ) as pool:
            futures = {pool.submit(_run_task, t): t for t in remaining}
            for future in as_completed(futures):
                test = futures[future]
                try:
                    finish(TestRecord.from_json(future.result()))
                    continue
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as exc:  # noqa: BLE001 — worker died
                    attempts[test.name] += 1
                    if attempts[test.name] < _MAX_HARD_ATTEMPTS:
                        retry.append(test)
                        continue
                    record = TestRecord(test=test.name, category=test.category)
                    record.count(Verdict.CRASH)
                    record.diagnostic = {
                        "type": type(exc).__name__,
                        "message": f"worker process died: {exc}",
                        "frames": [],
                    }
                    finish(record)
        remaining = retry
    return [records[t.name] for t in tests]
