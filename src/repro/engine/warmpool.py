"""Persistent pre-forked worker pool for batch corpus verification.

:mod:`repro.engine.pool` pays two constant costs on every ``--jobs``
run: it forks a fresh ``ProcessPoolExecutor`` (workers re-import and
re-warm the whole parse/encode/solve stack), and each worker loads the
entire on-disk query cache before running a single test.  The serve
daemon already solved both — its :class:`~repro.serve.supervisor
.Supervisor` keeps pre-warmed workers alive across requests with
heartbeats, hang SIGKILL, restart backoff and a circuit breaker — so
:class:`WarmPool` rides exactly that machinery for batch runs:

* **persistent workers**: one pool outlives many :meth:`run` calls; the
  interned term universe (:mod:`repro.smt.terms`) and each worker's
  in-memory cache tier stay warm across tests *and* across successive
  corpus runs in the same process.  Worker memory is bounded by the
  intern high-water mark (``ServeConfig.intern_limit``), which resets a
  worker to exactly the cold-start state the cold pool forces after
  every test;
* **chunked dispatch**: tests are batched per request (the same
  amortization :func:`repro.engine.pool.default_task_batch` chose for
  the cold pool) and shipped as ``chunk`` operations; each chunk carries
  a hang deadline scaled to its size;
* **crash attribution**: a chunk is dispatched once (``max_attempts:
  1``) — when its worker dies the supervisor returns a ``chunk_crash``
  payload and the pool resubmits every member as a singleton ``test``
  request with the full retry budget, where a repeat death is
  attributable to one test (mirroring the cold pool's
  collapse-then-isolate ladder);
* **sharded cache tier**: with ``cache_shards > 1`` each worker slot
  owns a stable slice of the shard files (see
  :mod:`repro.engine.qcache`), so it loads and appends only ``1/N`` of
  the disk tier instead of parsing the whole file on startup;
* **measurable wins**: every chunk reply carries the worker's cache
  counters; :attr:`WarmPool.worker_cache` maps worker pid to its latest
  counters (hits, misses, per-shard load bytes/entries, evictions) for
  the suite summary and ``BENCH_warmpool.json``.

Verdict parity: records are produced by the same
:func:`repro.suite.runner._run_one_test` the sequential and cold-pool
paths call, canonical cache fingerprints are name-independent, and the
serve CI jobs already assert byte-identical verdicts for warm workers —
a warm pool differs from a cold one only in *when* memory is reset,
never in what a test computes.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from typing import Dict, List, Optional

from repro.engine.pool import default_jobs, default_task_batch
from repro.harness.degrade import DegradationLadder
from repro.harness.journal import RunJournal
from repro.refinement.check import VerifyOptions
from repro.serve.client import unittest_to_json
from repro.serve.supervisor import OverloadedError, ServeConfig, Supervisor
from repro.suite.runner import TestRecord
from repro.suite.unittests import UnitTest


class WarmPool:
    """A long-lived verification worker pool for batch runs.

    Use as a context manager (or call :meth:`start`/:meth:`close`); pass
    it to :func:`repro.suite.runner.run_suite` via ``warm_pool=`` or call
    :meth:`run` directly.  Repeated :meth:`run` calls reuse the same
    worker processes — the second run of the same corpus skips fork,
    import pre-warm and cache load entirely.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        cache_enabled: bool = False,
        cache_path: Optional[str] = None,
        cache_shards: int = 1,
        intern_limit: int = 400_000,
        default_options: Optional[dict] = None,
        config: Optional[ServeConfig] = None,
    ) -> None:
        if config is None:
            config = ServeConfig(
                workers=max(1, jobs or default_jobs()),
                # The pool submits a whole corpus of chunks up front;
                # shedding is the daemon's concern, not the batch
                # engine's.
                queue_limit=65536,
                cache_enabled=cache_enabled or cache_path is not None,
                cache_path=cache_path,
                cache_shards=max(1, cache_shards),
                intern_limit=intern_limit,
                default_options=default_options,
            )
        self.config = config
        self._sup: Optional[Supervisor] = None
        #: worker pid -> that worker's latest cache counters (cumulative
        #: over the worker's lifetime; last report wins).
        self.worker_cache: Dict[int, dict] = {}
        self.runs = 0  # completed run() calls (bench: run 0 is cold-ish)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "WarmPool":
        if self._sup is None:
            self._sup = Supervisor(self.config).start()
        return self

    def close(self) -> None:
        if self._sup is not None:
            self._sup.shutdown()
            self._sup = None

    def __enter__(self) -> "WarmPool":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    def health(self) -> dict:
        self.start()
        assert self._sup is not None
        return self._sup.health()

    def cache_counters(self) -> dict:
        """Aggregate cache counters over every worker seen so far."""
        agg = {
            "workers": len(self.worker_cache),
            "hits": 0,
            "misses": 0,
            "load_entries": 0,
            "load_bytes": 0,
            "evictions": 0,
        }
        for counters in self.worker_cache.values():
            for key in ("hits", "misses", "load_entries", "load_bytes", "evictions"):
                agg[key] += int(counters.get(key, 0))
        return agg

    # -- the batch run -----------------------------------------------------
    def run(
        self,
        tests: List[UnitTest],
        options: Optional[VerifyOptions] = None,
        inject_bugs: bool = True,
        batch: int = 1,
        *,
        journal: Optional[RunJournal] = None,
        ladder: Optional[DegradationLadder] = None,
        task_batch: Optional[int] = None,
    ) -> List[TestRecord]:
        """Run ``tests`` on the warm pool; records in corpus order.

        The parent is the single journal writer: each record is appended
        to ``journal`` as its chunk completes, so ``--journal`` resume
        stays crash-safe exactly as with the cold pool.
        """
        self.start()
        options = options or VerifyOptions(timeout_s=30.0)
        options_json = options.to_json()
        retries = (
            int(getattr(ladder, "max_retries", 0) or 0)
            if ladder is not None
            else 0
        )
        n = len(tests)
        if n == 0:
            return []
        if task_batch is None:
            task_batch = default_task_batch(n, self.config.workers)
        chunk_size = max(1, task_batch)
        per_test_s = float(
            getattr(options, "timeout_s", None) or self.config.default_task_s
        )
        records: Dict[int, TestRecord] = {}
        chunk_futures: Dict[Future, List[int]] = {}
        single_futures: Dict[Future, int] = {}
        for lo in range(0, n, chunk_size):
            chunk = list(range(lo, min(lo + chunk_size, n)))
            request = {
                "op": "chunk",
                "tests": [unittest_to_json(tests[i]) for i in chunk],
                "options": options_json,
                "inject_bugs": inject_bugs,
                "batch": batch,
                "retries": retries,
                # A chunk of N tests legitimately runs ~N times longer
                # than one test before the supervisor may call it hung.
                "timeout_s": per_test_s * len(chunk),
                # Dispatched once: a worker loss degrades the whole chunk
                # to chunk_crash and its members retry as singletons.
                "max_attempts": 1,
            }
            chunk_futures[self._submit(request)] = chunk

        while chunk_futures or single_futures:
            done, _ = wait(
                set(chunk_futures) | set(single_futures),
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                payload = future.result() or {}
                if future in chunk_futures:
                    chunk = chunk_futures.pop(future)
                    if payload.get("kind") == "chunk":
                        pid = payload.get("pid")
                        if pid is not None and payload.get("cache"):
                            self.worker_cache[pid] = payload["cache"]
                        for idx, rec in zip(chunk, payload.get("records", [])):
                            self._finish(
                                records, idx, TestRecord.from_json(rec), journal
                            )
                    else:
                        # chunk_crash (worker lost): isolate each member
                        # as a singleton request with the full budget.
                        for idx in chunk:
                            request = {
                                "op": "test",
                                "test": unittest_to_json(tests[idx]),
                                "options": options_json,
                                "inject_bugs": inject_bugs,
                                "batch": batch,
                                "retries": retries,
                                "timeout_s": per_test_s,
                            }
                            single_futures[self._submit(request)] = idx
                else:
                    idx = single_futures.pop(future)
                    self._finish(
                        records,
                        idx,
                        self._single_record(tests[idx], payload),
                        journal,
                    )
        self.runs += 1
        return [records[i] for i in range(n)]

    # -- plumbing ----------------------------------------------------------
    def _submit(self, request: dict) -> Future:
        """Submit with backoff: a briefly-open circuit breaker (worker
        deaths mid-corpus) sheds, and the batch engine's answer to
        shedding is to wait, not to drop tests."""
        assert self._sup is not None
        backoff = 0.05
        while True:
            try:
                return self._sup.submit(request)
            except OverloadedError:
                time.sleep(backoff)
                backoff = min(1.0, backoff * 2)

    @staticmethod
    def _finish(
        records: Dict[int, TestRecord],
        idx: int,
        record: TestRecord,
        journal: Optional[RunJournal],
    ) -> None:
        records[idx] = record
        if journal is not None:
            journal.record(record.to_json())

    @staticmethod
    def _single_record(test: UnitTest, payload: dict) -> TestRecord:
        data = payload.get("record")
        if data is None:  # UNAVAILABLE (drain raced us) or malformed
            data = {
                "test": test.name,
                "category": test.category,
                "verdicts": {"crash": 1},
                "diagnostic": {
                    "type": payload.get("error", "WORKER_LOST"),
                    "message": payload.get("detail", "no record in reply"),
                    "frames": [],
                },
            }
        return TestRecord.from_json(data)
