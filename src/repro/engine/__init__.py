"""The verification engine: throughput machinery on top of the checker.

``repro.engine`` is the layer between the suite runner and the
refinement checker that makes whole-corpus runs fast:

* :mod:`repro.engine.qcache` — a solver-side result cache keyed by a
  canonical content hash of each refinement query, so structurally
  identical queries across tests are solved once;
* :mod:`repro.engine.pool` — a process-pool scheduler that fans
  per-test jobs out to worker processes (each its own crash-isolation
  domain) with a single-writer journal merge.
"""

from repro.engine.qcache import QueryCache, activate, active, canonical_fingerprint

__all__ = [
    "QueryCache",
    "activate",
    "active",
    "canonical_fingerprint",
]
