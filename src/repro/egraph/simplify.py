"""Budgeted equality-saturation front-end for the verifier.

This is the e-graph rung of the solver ladder: after the dataflow
prescreen and before CEGAR, :class:`EgraphSimplifier` saturates a query
term under the certified rule set and extracts the cheapest equivalent.
Three outcomes, in decreasing order of win:

* the ∀-formula ψ extracts to ``TRUE`` (or the ∃-formula φ to ``FALSE``)
  — the query is discharged with **zero** solver calls;
* the extracted term is smaller — the Tseitin CNF shrinks;
* nothing improved — the original term passes through unchanged.

Soundness mirrors the prescreen contract: every rule is an exact
equivalence (certified by the test suite), so the simplifier may only
*prove*, never refute, and replacing a term with its extraction can
never flip a verdict.  Any internal inconsistency (a bad rule merging
two distinct constants) falls back to the untouched input.

Budgets (node count, iteration count) make saturation total and feed the
TIMEOUT degradation ladder: a retry rung halves ``egraph_max_nodes``
the same way it halves solver conflict budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.smt.terms import FALSE, TRUE, Term, on_reset, term_size
from repro.egraph.core import EGraph, EGraphInconsistent, saturate
from repro.egraph.rules import RULES

#: Default budgets: small on purpose — the rule set converges in a few
#: iterations on verifier-shaped terms, and an unproductive saturation
#: must cost far less than the solver call it failed to avoid.
DEFAULT_MAX_NODES = 512
DEFAULT_MAX_ITERATIONS = 8

#: Terms larger than this skip saturation outright: the e-graph would
#: blow its node budget before doing useful work.
_SIZE_GATE_FRACTION = 1.0


@dataclass
class EgraphStats:
    """Counters mirroring ``analysis.prescreen.PrescreenStats``.

    Module-level so the suite runner can snapshot deltas per test.
    """

    attempts: int = 0  # terms offered to the simplifier
    proved: int = 0  # queries discharged (psi==TRUE / phi==FALSE)
    shrunk: int = 0  # terms replaced by a smaller extraction
    unchanged: int = 0  # saturation found nothing better
    budget_stops: int = 0  # node/iteration/deadline budget hit
    inconsistencies: int = 0  # bad-rule fallbacks (should stay 0)
    nodes_removed: int = 0  # total DAG-node reduction across shrinks
    by_rule: Dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        self.attempts = 0
        self.proved = 0
        self.shrunk = 0
        self.unchanged = 0
        self.budget_stops = 0
        self.inconsistencies = 0
        self.nodes_removed = 0
        self.by_rule = {}

    def snapshot(self) -> Tuple[int, int, int, int, int, int, int]:
        return (
            self.attempts,
            self.proved,
            self.shrunk,
            self.unchanged,
            self.budget_stops,
            self.inconsistencies,
            self.nodes_removed,
        )


STATS = EgraphStats()

# Memo keyed by (term, max_nodes, max_iterations) — term interning makes
# the key cheap.  Registered on the term-table reset hook so a universe
# reset (new worker, test isolation) cannot leak stale Terms.
_SIMPLIFY_MEMO: Dict[Tuple[Term, int, int], Term] = {}


@on_reset
def _clear_memo() -> None:
    _SIMPLIFY_MEMO.clear()


class EgraphSimplifier:
    """Saturate-and-extract with budgets; safe to share across queries."""

    def __init__(
        self,
        max_nodes: int = DEFAULT_MAX_NODES,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.max_nodes = max_nodes
        self.max_iterations = max_iterations
        self.should_stop = should_stop

    def simplify(self, term: Term) -> Term:
        """The cheapest certified-equal form of ``term`` (or ``term``)."""
        if term.is_const or term.op == "var":
            return term
        STATS.attempts += 1
        key = (term, self.max_nodes, self.max_iterations)
        hit = _SIMPLIFY_MEMO.get(key)
        if hit is not None:
            self._count(term, hit)
            return hit
        input_size = term_size(term)
        if input_size > self.max_nodes * _SIZE_GATE_FRACTION:
            STATS.budget_stops += 1
            STATS.unchanged += 1
            return term
        try:
            graph = EGraph()
            cid = graph.add_term(term)
            outcome = saturate(
                graph,
                RULES,
                max_iterations=self.max_iterations,
                max_nodes=self.max_nodes,
                should_stop=self.should_stop,
            )
            extracted = graph.extract(cid)
        except EGraphInconsistent:
            STATS.inconsistencies += 1
            STATS.unchanged += 1
            return term
        if outcome.budget_hit:
            STATS.budget_stops += 1
        # Extraction rebuilds through the smart constructors, so the
        # result is already canonical; only adopt it when it is not
        # larger (ties keep the new canonical form for cache sharing).
        if extracted is not term and term_size(extracted) > input_size:
            extracted = term
        _SIMPLIFY_MEMO[key] = extracted
        self._count(term, extracted)
        return extracted

    def _count(self, before: Term, after: Term) -> None:
        if after is before:
            STATS.unchanged += 1
            return
        delta = term_size(before) - term_size(after)
        STATS.shrunk += 1
        STATS.nodes_removed += max(0, delta)

    def _screen_psi(
        self,
        psi: Term,
        seeded_psis: Sequence[Term],
        union_seeds: Sequence[Tuple[Term, Term]] = (),
    ) -> Tuple[bool, Term]:
        """Saturate ψ and its witness instantiations in ONE shared e-graph.

        Returns ``(proved, psi')``.  The instantiations are near-identical
        DAGs to ψ, so hashconsing dedups almost everything and a single
        saturation costs barely more than saturating ψ alone.  Better
        still, an instantiation only ever needs a yes/no answer — did its
        class merge with ``TRUE``? — which is a union-find lookup, not an
        extraction, and the saturation loop early-exits the moment any
        watched class reaches ``TRUE``.
        """
        if psi is TRUE or any(seeded is TRUE for seeded in seeded_psis):
            return True, psi
        if psi.is_const or psi.op == "var":
            return False, psi
        STATS.attempts += 1
        key = (psi, self.max_nodes, self.max_iterations, tuple(union_seeds))
        hit = _SIMPLIFY_MEMO.get(key)
        goals = [
            seeded
            for seeded in seeded_psis
            if not seeded.is_const and seeded.op != "var"
        ]
        # A memoized non-TRUE extraction cannot answer the seed goals, so
        # the fast path only applies when it settles the query by itself.
        if hit is not None and (hit is TRUE or not goals):
            self._count(psi, hit)
            return hit is TRUE, hit
        if term_size(psi) > self.max_nodes * _SIZE_GATE_FRACTION:
            STATS.budget_stops += 1
            STATS.unchanged += 1
            return False, psi
        try:
            graph = EGraph()
            root = graph.add_term(psi)
            true_cid = graph.add_term(TRUE)
            watched = [root] + [graph.add_term(goal) for goal in goals]
            # Union seeds: caller-certified valid equalities (relational
            # analysis, term-unconditional pairs).  Merging them up front
            # lets saturation cross the src/tgt boundary without a rule
            # deriving the equality from scratch.
            for a, b in union_seeds:
                graph.merge(graph.add_term(a), graph.add_term(b))
            external_stop = self.should_stop

            def stop() -> bool:
                if external_stop is not None and external_stop():
                    return True
                true_root = graph.find(true_cid)
                return any(graph.find(cid) == true_root for cid in watched)

            outcome = saturate(
                graph,
                RULES,
                max_iterations=self.max_iterations,
                max_nodes=self.max_nodes,
                should_stop=stop,
            )
            true_root = graph.find(true_cid)
            if any(graph.find(cid) == true_root for cid in watched):
                # The early-exit closure reports as a budget stop, but a
                # reached goal is a proof, not a truncation.
                if graph.find(root) == true_root:
                    _SIMPLIFY_MEMO[key] = TRUE
                    self._count(psi, TRUE)
                return True, psi
            if outcome.budget_hit:
                STATS.budget_stops += 1
            extracted = graph.extract(root)
            if extracted is not psi and term_size(extracted) > term_size(psi):
                extracted = psi
            _SIMPLIFY_MEMO[key] = extracted
            self._count(psi, extracted)
            return extracted is TRUE, extracted
        except EGraphInconsistent:
            STATS.inconsistencies += 1
            STATS.unchanged += 1
            return False, psi

    # -- query-level entry point --------------------------------------------
    def screen_query(
        self,
        phi: Term,
        psi: Term,
        seeded_psis: Sequence[Term] = (),
        union_seeds: Sequence[Tuple[Term, Term]] = (),
    ) -> Tuple[bool, Term, Term]:
        """Simplify a refinement query ``∃O. φ ∧ ∀N. ¬ψ``.

        Returns ``(proved, phi', psi')``.  ``proved`` means the query is
        discharged outright, by one of three sound arguments:

        * ψ saturates to ``TRUE``: the ∀-obligation is a tautology;
        * φ saturates to ``FALSE``: the ∃-context is vacuous;
        * some ``ψ[N := f(O)]`` in ``seeded_psis`` saturates to ``TRUE``:
          ``f`` is a *witness function* — for every O the instantiation
          ``f(O)`` satisfies ψ, so ``∀N. ¬ψ`` is unsatisfiable.  The
          caller builds these from the CEGAR symbolic seeds, which is
          how equivalence-shaped queries over undef/freeze reads fall
          to saturation (both sides rewrite to the same class once the
          source's nondeterminism is paired with the target's).

        Otherwise the simplified pair feeds the bit-blaster.  ψ and the
        witness instantiations are saturated together in one shared
        e-graph; φ — typically the largest term by far — only pays for
        saturation when the ψ side failed to discharge the query.

        ``union_seeds`` are caller-certified *valid* term equalities
        (true under every assignment — the relational analysis's
        unconditional congruences): each pair is merged in the shared
        e-graph before saturation, bridging src and tgt subterms the
        rule set cannot connect syntactically.
        """
        proved, psi2 = self._screen_psi(psi, seeded_psis, union_seeds)
        if proved:
            STATS.proved += 1
            return True, phi, psi2
        phi2 = self.simplify(phi)
        if phi2 is FALSE:
            STATS.proved += 1
            return True, phi2, psi2
        return False, phi2, psi2
