"""E-graph equality-saturation simplifier (solver-ladder rung 3).

See :mod:`repro.egraph.core` for the data structure,
:mod:`repro.egraph.rules` for the certified rewrite-rule corpus, and
:mod:`repro.egraph.simplify` for the verifier-facing front-end.
"""

from repro.egraph.core import EGraph, ENode, EGraphInconsistent, saturate
from repro.egraph.rules import RULES, Rule, rule_by_name
from repro.egraph.simplify import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_MAX_NODES,
    EgraphSimplifier,
    EgraphStats,
    STATS,
)

__all__ = [
    "EGraph",
    "ENode",
    "EGraphInconsistent",
    "saturate",
    "RULES",
    "Rule",
    "rule_by_name",
    "EgraphSimplifier",
    "EgraphStats",
    "STATS",
    "DEFAULT_MAX_ITERATIONS",
    "DEFAULT_MAX_NODES",
]
