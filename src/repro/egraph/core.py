"""E-graph over :mod:`repro.smt.terms` with congruence closure.

An e-graph stores a congruence relation over terms: each *e-class* is a
set of *e-nodes* (an operator applied to child e-classes) known to be
semantically equal.  Rewrite rules never destroy the original term —
they only :meth:`~EGraph.merge` classes — so equality saturation can
explore many rewrites of one query term simultaneously and the
extractor can pick the cheapest representative afterwards.

The representation follows the egg recipe (union-find + hashcons +
deferred ``rebuild``): merges enqueue their class on a worklist, and
:meth:`~EGraph.rebuild` restores the congruence invariant (two e-nodes
with equal operators and equal child classes live in the same class) by
re-canonicalizing parent nodes until a fixpoint.

Everything is deterministic: classes iterate in creation order and the
extractor breaks ties on a stable node key, so two runs over the same
term produce the same extraction — a requirement for reproducible
verdicts and for the query cache keying on extracted terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.smt.terms import FALSE, TRUE, Term, rebuild_term

#: Extraction cost per operator — a rough proxy for Tseitin gate count.
#: Every cost is >= 1, which makes best-node extraction acyclic (a node's
#: total cost strictly exceeds each child class's cost).
_OP_COST: Dict[str, int] = {
    "const": 1,
    "var": 1,
    "bvnot": 2,
    "bvneg": 4,
    "extract": 2,
    "sext": 2,
    "concat": 2,
    "not": 2,
    "and": 3,
    "or": 3,
    "xor": 3,
    "ite": 4,
    "bveq": 4,
    "bvand": 4,
    "bvor": 4,
    "bvxor": 4,
    "bvite": 6,
    "bvult": 6,
    "bvslt": 6,
    "bvadd": 8,
    "bvsub": 8,
    "bvshl": 24,
    "bvlshr": 24,
    "bvashr": 24,
    "bvmul": 48,
    "bvudiv": 96,
    "bvurem": 96,
    "bvsdiv": 96,
    "bvsrem": 96,
}
_DEFAULT_COST = 8


class EGraphInconsistent(Exception):
    """Two distinct constants were merged: some rewrite rule is unsound.

    Raised instead of silently picking one value — the caller treats the
    whole saturation attempt as a miss, so a bad rule can slow the
    pipeline down but can never corrupt a verdict.
    """


@dataclass(frozen=True)
class ENode:
    """One operator applied to child e-classes.

    ``width``/``payload`` mirror :class:`repro.smt.terms.Term`; children
    are e-class ids (callers must canonicalize through ``find`` before
    hashcons lookups).
    """

    op: str
    width: int
    payload: object
    children: Tuple[int, ...]

    def sort_key(self) -> tuple:
        return (self.op, self.width, repr(self.payload), self.children)


@dataclass
class _EClass:
    nodes: List[ENode] = field(default_factory=list)
    node_set: set = field(default_factory=set)
    # (parent enode as stored, parent class id) pairs for congruence repair.
    parents: List[Tuple[ENode, int]] = field(default_factory=list)
    const: Optional[Term] = None  # the class's constant value, if known
    width: int = 0

    def add_node(self, node: ENode) -> None:
        if node not in self.node_set:
            self.node_set.add(node)
            self.nodes.append(node)


class EGraph:
    """Union-find + hashcons e-graph with deferred congruence repair."""

    def __init__(self) -> None:
        self._uf: List[int] = []
        self._classes: Dict[int, _EClass] = {}
        self._hashcons: Dict[ENode, int] = {}
        self._worklist: List[int] = []
        self._term_memo: Dict[Term, int] = {}

    # -- union-find ----------------------------------------------------------
    def find(self, cid: int) -> int:
        root = cid
        while self._uf[root] != root:
            root = self._uf[root]
        while self._uf[cid] != root:  # path compression
            self._uf[cid], cid = root, self._uf[cid]
        return root

    @property
    def num_nodes(self) -> int:
        return len(self._hashcons)

    @property
    def num_classes(self) -> int:
        return len(self._classes)

    def width_of(self, cid: int) -> int:
        return self._classes[self.find(cid)].width

    def const_of(self, cid: int) -> Optional[Term]:
        """The constant :class:`Term` this class is known to equal, if any."""
        return self._classes[self.find(cid)].const

    def nodes_of(self, cid: int) -> List[ENode]:
        return self._classes[self.find(cid)].nodes

    def class_ids(self) -> List[int]:
        """Canonical class ids in deterministic (creation) order."""
        return sorted(self._classes.keys())

    # -- construction --------------------------------------------------------
    def _new_class(self, width: int) -> int:
        cid = len(self._uf)
        self._uf.append(cid)
        self._classes[cid] = _EClass(width=width)
        return cid

    def canonicalize(self, node: ENode) -> ENode:
        children = tuple(self.find(c) for c in node.children)
        if children == node.children:
            return node
        return ENode(node.op, node.width, node.payload, children)

    def add_enode(self, node: ENode) -> int:
        """Intern ``node``; returns its class (existing on a hashcons hit)."""
        node = self.canonicalize(node)
        cid = self._hashcons.get(node)
        if cid is not None:
            return self.find(cid)
        cid = self._new_class(node.width)
        self._hashcons[node] = cid
        cls = self._classes[cid]
        cls.add_node(node)
        for child in node.children:
            self._classes[self.find(child)].parents.append((node, cid))
        return cid

    def mk(self, op: str, children: Tuple[int, ...], width: int, payload=None) -> int:
        """Rule-RHS helper: intern an operator node over existing classes."""
        return self.add_enode(ENode(op, width, payload, children))

    def add_term(self, term: Term) -> int:
        """Add a term DAG; shared subterms map to shared classes."""
        memo = self._term_memo
        hit = memo.get(term)
        if hit is not None:
            return self.find(hit)
        # Iterative postorder so deep encoder DAGs cannot blow the stack.
        stack: List[Tuple[Term, bool]] = [(term, False)]
        while stack:
            t, expanded = stack.pop()
            if t in memo:
                continue
            if not expanded:
                stack.append((t, True))
                stack.extend((a, False) for a in t.args)
                continue
            children = tuple(self.find(memo[a]) for a in t.args)
            cid = self.add_enode(ENode(t.op, t.width, t.payload, children))
            if t.is_const:
                self._register_const(cid, t)
            memo[t] = cid
        return self.find(memo[term])

    def add_const(self, const_term: Term) -> int:
        """Intern a constant term (rule-RHS helper)."""
        assert const_term.is_const
        return self.add_term(const_term)

    def _register_const(self, cid: int, const_term: Term) -> None:
        cls = self._classes[self.find(cid)]
        if cls.const is not None and cls.const is not const_term:
            raise EGraphInconsistent(
                f"class equals both {cls.const!r} and {const_term!r}"
            )
        cls.const = const_term

    # -- merging + congruence ------------------------------------------------
    def merge(self, a: int, b: int) -> int:
        a, b = self.find(a), self.find(b)
        if a == b:
            return a
        ca, cb = self._classes[a], self._classes[b]
        assert ca.width == cb.width, (ca.width, cb.width)
        if ca.const is not None and cb.const is not None:
            if ca.const is not cb.const:
                raise EGraphInconsistent(
                    f"merged {ca.const!r} with {cb.const!r}"
                )
        # Keep the smaller id as root: stable across runs.
        if b < a:
            a, b = b, a
            ca, cb = cb, ca
        for node in cb.nodes:
            ca.add_node(node)
        ca.parents.extend(cb.parents)
        if ca.const is None:
            ca.const = cb.const
        self._uf[b] = a
        del self._classes[b]
        self._worklist.append(a)
        return a

    def rebuild(self) -> None:
        """Restore the congruence invariant after a batch of merges."""
        while self._worklist:
            todo = sorted({self.find(c) for c in self._worklist})
            self._worklist = []
            for cid in todo:
                if cid in self._classes:
                    self._repair(self.find(cid))

    def _repair(self, cid: int) -> None:
        cls = self._classes[cid]
        parents, cls.parents = cls.parents, []
        seen: Dict[ENode, int] = {}
        for pnode, pclass in parents:
            self._hashcons.pop(pnode, None)
            canon = self.canonicalize(pnode)
            pclass = self.find(pclass)
            existing = self._hashcons.get(canon)
            if existing is not None and self.find(existing) != pclass:
                pclass = self.merge(existing, pclass)
            self._hashcons[canon] = pclass
            dup = seen.get(canon)
            if dup is not None and self.find(dup) != pclass:
                pclass = self.merge(dup, pclass)
            seen[canon] = pclass
        target = self._classes[self.find(cid)]
        target.parents.extend(seen.items())

    # -- constant propagation ------------------------------------------------
    def _fold_one(self, cid: int, node: ENode) -> bool:
        """Try to simplify ``node``'s class from its children's constants.

        Returns True when a merge happened.  Full folds go through the
        term smart constructors, so the e-graph agrees bit-for-bit with
        the semantics the bit-blaster implements; the short-circuit cases
        (n-ary bool and/or, ite on a known condition) mirror the same
        constructors without needing terms for non-constant children.
        """
        consts = [self.const_of(child) for child in node.children]
        if node.op in ("and", "or"):
            dominant = FALSE if node.op == "and" else TRUE
            neutral = TRUE if node.op == "and" else FALSE
            if any(c is dominant for c in consts):
                return self._merge_if_new(cid, self.add_term(dominant))
            if any(c is neutral for c in consts):
                rest = tuple(
                    ch
                    for ch, c in zip(node.children, consts)
                    if c is not neutral
                )
                if not rest:
                    other = self.add_term(neutral)
                elif len(rest) == 1:
                    other = rest[0]
                else:
                    other = self.mk(node.op, rest, 0)
                return self._merge_if_new(cid, other)
            return False
        if node.op in ("ite", "bvite"):
            cond = consts[0]
            if cond is not None:
                taken = node.children[1 if cond.value else 2]
                return self._merge_if_new(cid, taken)
            if self.find(node.children[1]) == self.find(node.children[2]):
                return self._merge_if_new(cid, node.children[1])
        if any(c is None for c in consts):
            return False
        folded = rebuild_term(
            node.op, tuple(consts), node.payload, node.width
        )
        if not folded.is_const:
            return False
        return self._merge_if_new(cid, self.add_term(folded))

    def _merge_if_new(self, a: int, b: int) -> bool:
        """Merge and report whether the congruence actually changed."""
        if self.find(a) == self.find(b):
            return False
        self.merge(a, b)
        self.rebuild()
        return True

    def fold_constants(self) -> bool:
        """Upward constant propagation to a fixpoint.

        Returns True when any class changed.
        """
        changed_any = False
        progress = True
        while progress:
            progress = False
            for cid in self.class_ids():
                cid = self.find(cid)
                cls = self._classes.get(cid)
                if cls is None or cls.const is not None:
                    continue
                for node in list(cls.nodes):
                    if node.op in ("var", "const") or not node.children:
                        continue
                    if self._fold_one(cid, node):
                        progress = changed_any = True
                        break
        return changed_any

    # -- extraction ----------------------------------------------------------
    def extract(self, cid: int) -> Term:
        """The cheapest term equivalent to class ``cid``.

        Bottom-up cost fixpoint, then a rebuild through the term smart
        constructors (which constant-fold and canonicalize again, so the
        extracted term may be strictly simpler than any single e-node
        chain — e.g. ``or(p, and(not p, TRUE))`` collapses to TRUE).
        """
        cid = self.find(cid)
        best: Dict[int, Tuple[int, ENode]] = {}
        changed = True
        while changed:
            changed = False
            for cls_id in self.class_ids():
                cls = self._classes[cls_id]
                # A known-constant class always extracts to its constant.
                if cls.const is not None:
                    node = ENode(
                        "const", cls.const.width, cls.const.payload, ()
                    )
                    if cls_id not in best:
                        best[cls_id] = (_OP_COST["const"], node)
                        changed = True
                    continue
                for node in sorted(cls.nodes, key=ENode.sort_key):
                    total = _OP_COST.get(node.op, _DEFAULT_COST)
                    ok = True
                    for child in node.children:
                        entry = best.get(self.find(child))
                        if entry is None:
                            ok = False
                            break
                        total += entry[0]
                    if not ok:
                        continue
                    cur = best.get(cls_id)
                    if cur is None or total < cur[0]:
                        best[cls_id] = (total, node)
                        changed = True
        if cid not in best:  # defensive: every reachable class has a node
            raise EGraphInconsistent(f"class {cid} has no extractable node")
        # Iterative top-down build with a memo per class.
        out: Dict[int, Term] = {}
        stack = [cid]
        while stack:
            c = self.find(stack[-1])
            if c in out:
                stack.pop()
                continue
            node = best[c][1]
            pending = [
                ch for ch in node.children if self.find(ch) not in out
            ]
            if pending:
                stack.extend(pending)
                continue
            args = tuple(out[self.find(ch)] for ch in node.children)
            out[c] = rebuild_term(node.op, args, node.payload, node.width)
            stack.pop()
        return out[cid]


# ---------------------------------------------------------------------------
# Bounded equality saturation
# ---------------------------------------------------------------------------


@dataclass
class SaturationOutcome:
    iterations: int = 0
    saturated: bool = False  # reached a rewrite fixpoint
    budget_hit: bool = False  # stopped by node/iteration budget instead


def saturate(
    graph: EGraph,
    rules,
    max_iterations: int = 8,
    max_nodes: int = 2048,
    should_stop: Optional[Callable[[], bool]] = None,
) -> SaturationOutcome:
    """Apply ``rules`` to fixpoint or budget.

    ``rules`` is a sequence of :class:`repro.egraph.rules.Rule`.  Budgets
    make this total: ``max_nodes`` bounds e-graph growth (rule
    application stops once exceeded) and ``max_iterations`` bounds the
    outer loop.  ``should_stop`` is polled between iterations (the
    verifier passes its deadline check) — saturation is a best-effort
    simplifier, so stopping early is always sound.
    """
    outcome = SaturationOutcome()
    for _ in range(max_iterations):
        outcome.iterations += 1
        if should_stop is not None and should_stop():
            outcome.budget_hit = True
            return outcome
        if graph.num_nodes > max_nodes:
            outcome.budget_hit = True
            return outcome
        # Match against a snapshot, then apply: rules see a consistent
        # e-graph and the batch is order-independent up to merges.
        # Classes are indexed by the ops of their e-nodes so a rule is
        # only offered classes whose root can possibly match — with ~30
        # rules this cuts e-matching work by an order of magnitude.
        by_op: dict = {}
        all_roots = []
        for cid in graph.class_ids():
            if graph.find(cid) != cid:
                continue  # merged away by an earlier rule this pass
            all_roots.append(cid)
            for node in graph.nodes_of(cid):
                bucket = by_op.setdefault(node.op, [])
                if not bucket or bucket[-1] != cid:
                    bucket.append(cid)
        matches = []
        for rule in rules:
            root_op = rule.lhs.op
            candidates = by_op.get(root_op, ()) if root_op else all_roots
            for cid in candidates:
                for env in rule.matches(graph, cid):
                    matches.append((rule, cid, env))
        changed = False
        for rule, cid, env in matches:
            if graph.num_nodes > max_nodes:
                outcome.budget_hit = True
                break
            rhs_cid = rule.build_rhs(graph, env)
            if rhs_cid is None:
                continue
            if graph.find(rhs_cid) != graph.find(cid):
                graph.merge(cid, rhs_cid)
                changed = True
        graph.rebuild()
        if graph.fold_constants():
            changed = True
        if outcome.budget_hit:
            return outcome
        if not changed:
            outcome.saturated = True
            return outcome
    outcome.budget_hit = True
    return outcome
