"""Certified rewrite rules and e-matching for the e-graph simplifier.

Every :class:`Rule` carries its own Alive2 source/target IR pair
(``cert_src``/``cert_tgt``).  The test suite verifies each pair in BOTH
refinement directions under ``--certify`` (with the e-graph disabled, so
a rule can never vouch for itself) — mutual refinement of flag-free IR
is exactly term-level equivalence, so a rule that passes is a sound
equality for every input.  The registry refuses rules without a
certificate pair: nothing uncertified can reach the saturation loop.

Certificates use one representative width (i8); the identities are
width-polymorphic and the differential fuzz in ``tests/test_egraph.py``
exercises them at 4 and 8 bits against the concrete term evaluator.

Constant propagation (``EGraph.fold_constants``) is not expressed as
rules here: it folds through the very smart constructors the bit-blaster
and the rest of the verifier already trust, and the differential fuzz
covers that path directly.

Pattern language::

    V("a")              match any class, bind it to ``a``
    C("k")              match a class with a known constant, bind the Term
    N("bvadd", p, q)    match an e-node by operator over sub-patterns

Repeated binders force equality: ``N("bveq", V("a"), V("a"))`` only
matches when both children are the *same* e-class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.smt.terms import FALSE, TRUE, bv_const
from repro.egraph.core import EGraph

# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Pattern:
    op: Optional[str]  # None => class binder (variable or constant)
    args: Tuple["Pattern", ...] = ()
    bind: Optional[str] = None  # env name for V/C binders
    want_const: bool = False  # C binder: class must have a known constant
    payload_bind: Optional[str] = None  # N: capture the e-node payload


def V(name: str) -> Pattern:
    """Match any e-class and bind it (env value: canonical class id)."""
    return Pattern(op=None, bind=name)


def C(name: str) -> Pattern:
    """Match a known-constant e-class and bind it (env value: const Term)."""
    return Pattern(op=None, bind=name, want_const=True)


def N(op: str, *args: Pattern, payload: Optional[str] = None) -> Pattern:
    """Match an e-node with operator ``op`` over ``args`` sub-patterns."""
    return Pattern(op=op, args=tuple(args), payload_bind=payload)


def _ematch(graph: EGraph, pat: Pattern, cid: int, env: dict) -> Iterator[dict]:
    cid = graph.find(cid)
    if pat.op is None:
        if pat.want_const:
            const = graph.const_of(cid)
            if const is None:
                return
            bound = env.get(pat.bind)
            if bound is None:
                out = dict(env)
                out[pat.bind] = const
                yield out
            elif bound is const:  # constants are interned: identity == equality
                yield env
            return
        bound = env.get(pat.bind)
        if bound is None:
            out = dict(env)
            out[pat.bind] = cid
            yield out
        elif graph.find(bound) == cid:
            yield env
        return
    for node in graph.nodes_of(cid):
        if node.op != pat.op or len(node.children) != len(pat.args):
            continue
        base = env
        if pat.payload_bind is not None:
            base = dict(env)
            base[pat.payload_bind] = node.payload
        yield from _match_args(graph, pat.args, node.children, 0, base)


def _match_args(
    graph: EGraph,
    pats: Tuple[Pattern, ...],
    children: Tuple[int, ...],
    i: int,
    env: dict,
) -> Iterator[dict]:
    if i == len(pats):
        yield env
        return
    for env2 in _ematch(graph, pats[i], children[i], env):
        yield from _match_args(graph, pats, children, i + 1, env2)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """A certified equality: LHS pattern + RHS class builder.

    ``rhs(graph, env)`` returns the class id the matched class must merge
    with, or ``None`` when a semantic guard rejects the match (guards
    live in the RHS so a rule is self-contained).  ``cert_src`` /
    ``cert_tgt`` is the IR pair whose two-way refinement proof certifies
    the equality.
    """

    name: str
    lhs: Pattern
    rhs: Callable[[EGraph, dict], Optional[int]]
    cert_src: str
    cert_tgt: str

    def matches(self, graph: EGraph, cid: int) -> Iterator[dict]:
        yield from _ematch(graph, self.lhs, cid, {})

    def build_rhs(self, graph: EGraph, env: dict) -> Optional[int]:
        return self.rhs(graph, env)


def _fn(body: str, sig: str = "i8 @f(i8 %a)") -> str:
    return f"define {sig} {{\nentry:\n  {body}\n}}"


def _is_pow2(v: int) -> bool:
    return v > 0 and (v & (v - 1)) == 0


def _w(graph: EGraph, env: dict, name: str) -> int:
    return graph.width_of(env[name])


_RULES: list = []


def _rule(name: str, lhs: Pattern, rhs, cert_src: str, cert_tgt: str) -> None:
    if not cert_src.strip() or not cert_tgt.strip():
        raise ValueError(f"rule {name!r} lacks a certification pair")
    _RULES.append(Rule(name, lhs, rhs, cert_src, cert_tgt))


# -- commutativity -----------------------------------------------------------
# The rules are width-generic (patterns bind any width); the cert pairs
# are representative instances.  Multiplication certifies at i4: an
# 8-bit multiplier-equivalence CNF is one of the classically hard SAT
# instances (minutes of solver time), while i4 proves the same
# width-generic claim in milliseconds.
for _op, _ir in (
    ("bvadd", "add"),
    ("bvmul", "mul"),
    ("bvand", "and"),
    ("bvor", "or"),
    ("bvxor", "xor"),
):
    _ty = "i4" if _ir == "mul" else "i8"
    _rule(
        f"{_ir}-comm",
        N(_op, V("a"), V("b")),
        (lambda op: lambda g, e: g.mk(op, (e["b"], e["a"]), _w(g, e, "a")))(_op),
        _fn(
            f"%r = {_ir} {_ty} %a, %b\n  ret {_ty} %r",
            f"{_ty} @f({_ty} %a, {_ty} %b)",
        ),
        _fn(
            f"%r = {_ir} {_ty} %b, %a\n  ret {_ty} %r",
            f"{_ty} @f({_ty} %a, {_ty} %b)",
        ),
    )

# -- associativity -----------------------------------------------------------
for _op, _ir in (
    ("bvadd", "add"),
    ("bvmul", "mul"),
    ("bvand", "and"),
    ("bvor", "or"),
    ("bvxor", "xor"),
):
    _ty = "i4" if _ir == "mul" else "i8"
    _rule(
        f"{_ir}-assoc",
        N(_op, N(_op, V("a"), V("b")), V("c")),
        (
            lambda op: lambda g, e: g.mk(
                op,
                (e["a"], g.mk(op, (e["b"], e["c"]), _w(g, e, "a"))),
                _w(g, e, "a"),
            )
        )(_op),
        _fn(
            f"%s = {_ir} {_ty} %a, %b\n  %r = {_ir} {_ty} %s, %c\n  ret {_ty} %r",
            f"{_ty} @f({_ty} %a, {_ty} %b, {_ty} %c)",
        ),
        _fn(
            f"%s = {_ir} {_ty} %b, %c\n  %r = {_ir} {_ty} %a, %s\n  ret {_ty} %r",
            f"{_ty} @f({_ty} %a, {_ty} %b, {_ty} %c)",
        ),
    )


# -- identity / annihilator folds -------------------------------------------
def _ident(op_value: int):
    def rhs(g: EGraph, e: dict) -> Optional[int]:
        return e["a"] if e["k"].value == op_value else None

    return rhs


def _annihilate(trigger: int, result_of):
    def rhs(g: EGraph, e: dict) -> Optional[int]:
        width = _w(g, e, "a")
        mask = (1 << width) - 1
        want = trigger & mask
        if e["k"].value != want:
            return None
        return g.add_const(bv_const(result_of(mask), width))

    return rhs


_rule(
    "add-zero", N("bvadd", V("a"), C("k")), _ident(0),
    _fn("%r = add i8 %a, 0\n  ret i8 %r"), _fn("ret i8 %a"),
)
_rule(
    "mul-one", N("bvmul", V("a"), C("k")), _ident(1),
    _fn("%r = mul i8 %a, 1\n  ret i8 %r"), _fn("ret i8 %a"),
)
_rule(
    "mul-zero", N("bvmul", V("a"), C("k")), _annihilate(0, lambda m: 0),
    # Freeze: poison propagates through `mul` in the IR (same as `and`).
    _fn("%f = freeze i8 %a\n  %r = mul i8 %f, 0\n  ret i8 %r"),
    _fn("ret i8 0"),
)
_rule(
    "and-zero", N("bvand", V("a"), C("k")), _annihilate(0, lambda m: 0),
    # Freeze: poison propagates through `and` in the IR, so the raw pair
    # would not refine backward; the term-level claim is about values
    # (the poison bit lives in a separate term the rule never touches).
    _fn("%f = freeze i8 %a\n  %r = and i8 %f, 0\n  ret i8 %r"),
    _fn("ret i8 0"),
)
_rule(
    "and-ones",
    N("bvand", V("a"), C("k")),
    lambda g, e: e["a"] if e["k"].value == (1 << _w(g, e, "a")) - 1 else None,
    _fn("%r = and i8 %a, -1\n  ret i8 %r"),
    _fn("ret i8 %a"),
)
_rule(
    "or-zero", N("bvor", V("a"), C("k")), _ident(0),
    _fn("%r = or i8 %a, 0\n  ret i8 %r"), _fn("ret i8 %a"),
)
_rule(
    "or-ones", N("bvor", V("a"), C("k")), _annihilate(-1, lambda m: m),
    _fn("%f = freeze i8 %a\n  %r = or i8 %f, -1\n  ret i8 %r"),
    _fn("ret i8 -1"),
)
_rule(
    "xor-zero", N("bvxor", V("a"), C("k")), _ident(0),
    _fn("%r = xor i8 %a, 0\n  ret i8 %r"), _fn("ret i8 %a"),
)
_rule(
    "shl-zero", N("bvshl", V("a"), C("k")), _ident(0),
    _fn("%r = shl i8 %a, 0\n  ret i8 %r"), _fn("ret i8 %a"),
)
_rule(
    "lshr-zero", N("bvlshr", V("a"), C("k")), _ident(0),
    _fn("%r = lshr i8 %a, 0\n  ret i8 %r"), _fn("ret i8 %a"),
)

# -- idempotence / self-inverse ---------------------------------------------
# These certificates freeze the argument first: terms denote *values*,
# but an IR register read twice can yield two different values when the
# argument is undef, which is extra nondeterminism the rule never claims
# to cover.  Freeze pins one value per read, making the certificate the
# exact term-level statement — and certifiable in *both* directions.
_rule(
    "and-self", N("bvand", V("a"), V("a")), lambda g, e: e["a"],
    _fn("%f = freeze i8 %a\n  %r = and i8 %f, %f\n  ret i8 %r"),
    _fn("%f = freeze i8 %a\n  ret i8 %f"),
)
_rule(
    "or-self", N("bvor", V("a"), V("a")), lambda g, e: e["a"],
    _fn("%f = freeze i8 %a\n  %r = or i8 %f, %f\n  ret i8 %r"),
    _fn("%f = freeze i8 %a\n  ret i8 %f"),
)
_rule(
    "xor-self",
    N("bvxor", V("a"), V("a")),
    lambda g, e: g.add_const(bv_const(0, _w(g, e, "a"))),
    _fn("%f = freeze i8 %a\n  %r = xor i8 %f, %f\n  ret i8 %r"),
    _fn("ret i8 0"),
)
_rule(
    "sub-self",
    N("bvsub", V("a"), V("a")),
    lambda g, e: g.add_const(bv_const(0, _w(g, e, "a"))),
    _fn("%f = freeze i8 %a\n  %r = sub i8 %f, %f\n  ret i8 %r"),
    _fn("ret i8 0"),
)
_rule(
    "not-not",
    N("bvnot", N("bvnot", V("a"))),
    lambda g, e: e["a"],
    _fn("%n = xor i8 %a, -1\n  %r = xor i8 %n, -1\n  ret i8 %r"),
    _fn("ret i8 %a"),
)

# -- add/mul normalization (the instcombine family) --------------------------
_rule(
    "add-self-mul2",
    N("bvadd", V("a"), V("a")),
    lambda g, e: g.mk(
        "bvmul",
        (e["a"], g.add_const(bv_const(2 % (1 << _w(g, e, "a")), _w(g, e, "a")))),
        _w(g, e, "a"),
    ),
    _fn("%f = freeze i8 %a\n  %r = add i8 %f, %f\n  ret i8 %r"),
    _fn("%f = freeze i8 %a\n  %r = mul i8 %f, 2\n  ret i8 %r"),
)


def _shl_const_mul(g: EGraph, e: dict) -> Optional[int]:
    width = _w(g, e, "a")
    sh = e["k"].value
    # Overshift (sh >= width) has different poison behavior in LLVM, so
    # the rule deliberately refuses it; the smart constructors fold that
    # case to 0 at the pure-term level anyway.
    if not 0 < sh < width:
        return None
    return g.mk(
        "bvmul", (e["a"], g.add_const(bv_const(1 << sh, width))), width
    )


_rule(
    "shl-const-mul",
    N("bvshl", V("a"), C("k")),
    _shl_const_mul,
    _fn("%r = shl i8 %a, 3\n  ret i8 %r"),
    _fn("%r = mul i8 %a, 8\n  ret i8 %r"),
)


def _udiv_pow2(g: EGraph, e: dict) -> Optional[int]:
    width = _w(g, e, "a")
    k = e["k"].value
    if not _is_pow2(k):
        return None
    return g.mk(
        "bvlshr",
        (e["a"], g.add_const(bv_const(k.bit_length() - 1, width))),
        width,
    )


_rule(
    "udiv-pow2-lshr",
    N("bvudiv", V("a"), C("k")),
    _udiv_pow2,
    _fn("%r = udiv i8 %a, 4\n  ret i8 %r"),
    _fn("%r = lshr i8 %a, 2\n  ret i8 %r"),
)


def _urem_pow2(g: EGraph, e: dict) -> Optional[int]:
    width = _w(g, e, "a")
    k = e["k"].value
    if not _is_pow2(k):
        return None
    return g.mk(
        "bvand", (e["a"], g.add_const(bv_const(k - 1, width))), width
    )


_rule(
    "urem-pow2-mask",
    N("bvurem", V("a"), C("k")),
    _urem_pow2,
    _fn("%r = urem i8 %a, 8\n  ret i8 %r"),
    _fn("%r = and i8 %a, 7\n  ret i8 %r"),
)


def _zext_trunc_mask(g: EGraph, e: dict) -> Optional[int]:
    # concat(0, extract[k-1..0](a)) == a & (2^k - 1), provided the widths
    # line up so the result has a's width.
    zeros = e["z"]
    hi, lo = e["p"]
    if zeros.value != 0 or lo != 0:
        return None
    width = _w(g, e, "a")
    if zeros.width + (hi - lo + 1) != width:
        return None
    return g.mk(
        "bvand",
        (e["a"], g.add_const(bv_const((1 << (hi + 1)) - 1, width))),
        width,
    )


_rule(
    "zext-trunc-mask",
    N("concat", C("z"), N("extract", V("a"), payload="p")),
    _zext_trunc_mask,
    _fn("%t = trunc i8 %a to i4\n  %r = zext i4 %t to i8\n  ret i8 %r"),
    _fn("%r = and i8 %a, 15\n  ret i8 %r"),
)

_rule(
    "extract-extract",
    N("extract", N("extract", V("a"), payload="p1"), payload="p0"),
    lambda g, e: g.mk(
        "extract",
        (e["a"],),
        e["p0"][0] - e["p0"][1] + 1,
        payload=(e["p1"][1] + e["p0"][0], e["p1"][1] + e["p0"][1]),
    ),
    _fn(
        "%t = trunc i8 %a to i6\n  %r = trunc i6 %t to i4\n  ret i4 %r",
        "i4 @f(i8 %a)",
    ),
    _fn("%r = trunc i8 %a to i4\n  ret i4 %r", "i4 @f(i8 %a)"),
)

# -- subtraction normalization ----------------------------------------------
_rule(
    "sub-add-neg",
    N("bvsub", V("a"), V("b")),
    lambda g, e: g.mk(
        "bvadd",
        (e["a"], g.mk("bvneg", (e["b"],), _w(g, e, "b"))),
        _w(g, e, "a"),
    ),
    _fn("%r = sub i8 %a, %b\n  ret i8 %r", "i8 @f(i8 %a, i8 %b)"),
    _fn(
        "%n = sub i8 0, %b\n  %r = add i8 %a, %n\n  ret i8 %r",
        "i8 @f(i8 %a, i8 %b)",
    ),
)
_rule(
    "neg-sub-zero",
    N("bvneg", V("a")),
    lambda g, e: g.mk(
        "bvsub",
        (g.add_const(bv_const(0, _w(g, e, "a"))), e["a"]),
        _w(g, e, "a"),
    ),
    # Freeze: the target reads %a three times, which an undef input
    # would decouple; the term-level claim is about one value.
    _fn("%f = freeze i8 %a\n  %r = sub i8 0, %f\n  ret i8 %r"),
    _fn(
        "%f = freeze i8 %a\n  %z = sub i8 %f, %f\n"
        "  %r = sub i8 %z, %f\n  ret i8 %r"
    ),
)

# -- select (ite) ------------------------------------------------------------
_rule(
    "ite-same",
    N("bvite", V("c"), V("a"), V("a")),
    lambda g, e: e["a"],
    _fn(
        "%d = freeze i1 %c\n  %f = freeze i8 %a\n"
        "  %r = select i1 %d, i8 %f, i8 %f\n  ret i8 %r",
        "i8 @f(i1 %c, i8 %a)",
    ),
    _fn("%f = freeze i8 %a\n  ret i8 %f", "i8 @f(i1 %c, i8 %a)"),
)
_rule(
    "ite-pushdown-add",
    N("bvite", V("c"), N("bvadd", V("a"), V("x")), N("bvadd", V("a"), V("y"))),
    lambda g, e: g.mk(
        "bvadd",
        (e["a"], g.mk("bvite", (e["c"], e["x"], e["y"]), _w(g, e, "x"))),
        _w(g, e, "a"),
    ),
    _fn(
        "%g = freeze i8 %a\n"
        "  %p = add i8 %g, %x\n  %q = add i8 %g, %y\n"
        "  %r = select i1 %c, i8 %p, i8 %q\n  ret i8 %r",
        "i8 @f(i1 %c, i8 %a, i8 %x, i8 %y)",
    ),
    _fn(
        "%g = freeze i8 %a\n"
        "  %s = select i1 %c, i8 %x, i8 %y\n  %r = add i8 %g, %s\n  ret i8 %r",
        "i8 @f(i1 %c, i8 %a, i8 %x, i8 %y)",
    ),
)

# -- comparisons -------------------------------------------------------------
_rule(
    "eq-comm",
    N("bveq", V("a"), V("b")),
    lambda g, e: g.mk("bveq", (e["b"], e["a"]), 0),
    _fn("%r = icmp eq i8 %a, %b\n  ret i1 %r", "i1 @f(i8 %a, i8 %b)"),
    _fn("%r = icmp eq i8 %b, %a\n  ret i1 %r", "i1 @f(i8 %a, i8 %b)"),
)
_rule(
    "eq-same",
    N("bveq", V("a"), V("a")),
    lambda g, e: g.add_const(TRUE),
    _fn(
        "%f = freeze i8 %a\n  %r = icmp eq i8 %f, %f\n  ret i1 %r",
        "i1 @f(i8 %a)",
    ),
    _fn("ret i1 true", "i1 @f(i8 %a)"),
)
_rule(
    "ult-same",
    N("bvult", V("a"), V("a")),
    lambda g, e: g.add_const(FALSE),
    _fn(
        "%f = freeze i8 %a\n  %r = icmp ult i8 %f, %f\n  ret i1 %r",
        "i1 @f(i8 %a)",
    ),
    _fn("ret i1 false", "i1 @f(i8 %a)"),
)

# -- De Morgan ---------------------------------------------------------------
_rule(
    "demorgan-or",
    N("bvor", N("bvnot", V("a")), N("bvnot", V("b"))),
    lambda g, e: g.mk(
        "bvnot",
        (g.mk("bvand", (e["a"], e["b"]), _w(g, e, "a")),),
        _w(g, e, "a"),
    ),
    _fn(
        "%na = xor i8 %a, -1\n  %nb = xor i8 %b, -1\n"
        "  %r = or i8 %na, %nb\n  ret i8 %r",
        "i8 @f(i8 %a, i8 %b)",
    ),
    _fn(
        "%x = and i8 %a, %b\n  %r = xor i8 %x, -1\n  ret i8 %r",
        "i8 @f(i8 %a, i8 %b)",
    ),
)

RULES: Tuple[Rule, ...] = tuple(_RULES)

_BY_NAME: Dict[str, Rule] = {r.name: r for r in RULES}
assert len(_BY_NAME) == len(RULES), "duplicate rule names"


def rule_by_name(name: str) -> Rule:
    return _BY_NAME[name]
