"""E6 — the paper's two 'Selected bugs' (§8.2), end to end.

Selected Bug #1: nsw reassociation in SLP vectorization (caught at the
return-poison query; the fixed transformation that drops nsw verifies).
Selected Bug #2: `fadd (fmul nsz a b), +0.0 -> fmul nsz a b` (caught at
the return-value query on a -0.0 counterexample).

Benchmarked as the paper used them: as translation-validation tasks over
the buggy passes.
"""

from conftest import print_table

from repro.ir.parser import parse_module
from repro.refinement.check import VerifyOptions
from repro.tv.plugin import validate_pipeline

OPTS = VerifyOptions(timeout_s=30.0)

BUG1_INPUT = """
define i8 @f(i8 %a, i8 %b, i8 %c, i8 %d) {
entry:
  %s1 = add nsw i8 %a, %b
  %s2 = add nsw i8 %s1, %c
  %s3 = add nsw i8 %s2, %d
  ret i8 %s3
}
"""

BUG2_INPUT = """
define half @f(half %a, half %b) {
entry:
  %c = fmul nsz half %a, %b
  %r = fadd half %c, 0.0
  ret half %r
}
"""


def test_bench_selected_bugs(benchmark):
    def run():
        bug1 = validate_pipeline(
            parse_module(BUG1_INPUT), ["reassociate"], OPTS,
            pass_options={"bug:nsw-reassoc": True},
        )
        bug1_fixed = validate_pipeline(
            parse_module(BUG1_INPUT), ["reassociate"], OPTS,
        )
        bug2 = validate_pipeline(
            parse_module(BUG2_INPUT), ["instcombine"], OPTS,
            pass_options={"bug:fadd-zero": True},
        )
        bug2_fixed = validate_pipeline(
            parse_module(BUG2_INPUT), ["instcombine"], OPTS,
        )
        return bug1, bug1_fixed, bug2, bug2_fixed

    bug1, bug1_fixed, bug2, bug2_fixed = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = [
        {
            "bug": "#1 nsw vectorization",
            "buggy pass": "incorrect" if bug1.failures() else "MISSED",
            "failed check": bug1.failures()[0].result.failed_check if bug1.failures() else "-",
            "fixed pass": "correct" if not bug1_fixed.failures() else "STILL WRONG",
        },
        {
            "bug": "#2 fadd +0.0 (nsz)",
            "buggy pass": "incorrect" if bug2.failures() else "MISSED",
            "failed check": bug2.failures()[0].result.failed_check if bug2.failures() else "-",
            "fixed pass": "correct" if not bug2_fixed.failures() else "STILL WRONG",
        },
    ]
    print_table("E6 (§8.2): Selected bugs #1 and #2", rows)

    assert bug1.failures() and not bug1_fixed.failures()
    assert bug2.failures() and not bug2_fixed.failures()
    assert bug1.failures()[0].result.failed_check == "return-poison"
    assert bug2.failures()[0].result.failed_check == "return-value"
