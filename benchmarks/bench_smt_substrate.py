"""Substrate micro-benchmarks: SAT / SMT / encoder throughput.

Not a paper artifact per se — the paper benchmarks Z3 indirectly through
Figure 8 — but these numbers explain the scaling knobs of DESIGN.md (why
the corpora use i4–i16) and guard against performance regressions in the
from-scratch solver stack.
"""

from repro.ir.parser import parse_module
from repro.refinement.check import Verdict, VerifyOptions, verify_refinement
from repro.sat import SatResult, SatSolver
from repro.smt import CheckResult, SmtSolver
from repro.smt import terms as T


def test_bench_sat_pigeonhole(benchmark):
    def run():
        solver = SatSolver()
        holes, pigeons = 6, 7
        var = {
            (p, h): solver.new_var()
            for p in range(pigeons)
            for h in range(holes)
        }
        for p in range(pigeons):
            solver.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var[p1, h], -var[p2, h]])
        return solver.solve()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result is SatResult.UNSAT


def test_bench_smt_mul_inversion(benchmark):
    """Factoring via SAT: the shape of a hard refinement sub-query."""

    def run():
        solver = SmtSolver()
        a = T.bv_var("ba", 10)
        b = T.bv_var("bb", 10)
        solver.assert_term(
            T.bv_eq(T.bv_mul(a, b), T.bv_const(851, 10))
        )
        solver.assert_term(T.bv_ult(T.bv_const(1, 10), a))
        solver.assert_term(T.bv_ult(T.bv_const(1, 10), b))
        return solver.check(), solver.model_env()

    (result, env) = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result is CheckResult.SAT
    assert (env["ba"] * env["bb"]) % 1024 == 851


def test_bench_end_to_end_verification(benchmark):
    """One representative refinement task, end to end."""
    src = parse_module(
        """
        define i8 @f(i1 %c, i8 %v) {
        entry:
          %slot = alloca i8
          store i8 %v, ptr %slot
          br i1 %c, label %then, label %else
        then:
          store i8 42, ptr %slot
          br label %join
        else:
          br label %join
        join:
          %r = load i8, ptr %slot
          ret i8 %r
        }
        """
    )
    tgt = parse_module(
        """
        define i8 @f(i1 %c, i8 %v) {
        entry:
          %r = select i1 %c, i8 42, i8 %v
          ret i8 %r
        }
        """
    )

    def run():
        return verify_refinement(
            src.definitions()[0],
            tgt.definitions()[0],
            src,
            tgt,
            VerifyOptions(timeout_s=60.0),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.verdict is Verdict.CORRECT
