"""E5 — §8.5: reproducing independently-known LLVM miscompilations.

The paper investigated 36 public bug reports: 29 were detected; of the 7
misses, one was an infinite loop, one needed ~2^16 loop iterations, and
five hit the escaped-locals limitation.  After manual tweaks, all but
one became detectable.  We regenerate the same experiment over our
catalogue and check the same structure: a high detection rate, misses
only in those three classes, and tweaked variants detected.
"""

from collections import Counter

from conftest import print_table

from repro.ir.parser import parse_module
from repro.refinement.check import Verdict, VerifyOptions, verify_refinement
from repro.suite.knownbugs import KNOWN_BUGS

OPTS = VerifyOptions(timeout_s=20.0)


def _verdict(src_text, tgt_text, options=OPTS):
    sm, tm = parse_module(src_text), parse_module(tgt_text)
    return verify_refinement(
        sm.definitions()[0], tm.definitions()[0], sm, tm, options
    ).verdict


def test_bench_known_bugs(benchmark):
    def run():
        detected, missed = [], []
        for bug in KNOWN_BUGS:
            verdict = _verdict(bug.src, bug.tgt)
            if verdict is Verdict.INCORRECT:
                detected.append(bug)
            else:
                missed.append(bug)
        tweak_results = {}
        for bug in KNOWN_BUGS:
            if bug.tweaked_src is not None:
                tweak_results[bug.name] = _verdict(bug.tweaked_src, bug.tweaked_tgt)
        return detected, missed, tweak_results

    detected, missed, tweak_results = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = [
        {
            "catalogue": len(KNOWN_BUGS),
            "detected": len(detected),
            "missed": len(missed),
            "paper": "36 total, 29 detected, 7 missed",
        }
    ]
    print_table("E5 (§8.5): known-bug detection", rows)
    reasons = Counter(b.miss_reason for b in missed)
    print(f"miss reasons: {dict(reasons)}")
    print(f"tweaked variants: { {k: v.value for k, v in tweak_results.items()} }")

    # Shape: most bugs detected; every miss is one of the paper's three
    # classes; the detected/missed split matches the catalogue labels.
    assert len(detected) > 3 * len(missed)
    assert {b.name for b in detected} == {
        b.name for b in KNOWN_BUGS if b.detectable
    }
    assert all(
        b.miss_reason in ("unroll-bound", "infinite-loop", "escaped-local")
        for b in missed
    )
    # §8.5's follow-up: the manually tweaked tests become detectable.
    assert all(v is Verdict.INCORRECT for v in tweak_results.values())
