"""E4 — Figure 8: effect of the SMT-solver timeout.

The paper varies Z3's timeout from one second to five minutes and
observes: total running time grows roughly linearly with the timeout,
while the number of definitive verdicts plateaus after a knee (one
minute there).  We sweep our per-query resource budget (a conflict
budget: the deterministic analogue of wall-clock) over a mixed workload
with some hard queries and check for the same plateau-and-linear-cost
shapes.
"""

import time

from conftest import print_table

from repro.ir.parser import parse_module
from repro.refinement.check import Verdict, VerifyOptions, verify_refinement

# A mix of easy pairs and hard ones (wide multiplications make the SAT
# queries expensive, standing in for the paper's hard Z3 instances).
EASY = (
    "define i8 @f(i8 %a) {\nentry:\n  %x = add i8 %a, 1\n  ret i8 %x\n}",
    "define i8 @f(i8 %a) {\nentry:\n  %x = add i8 1, %a\n  ret i8 %x\n}",
)
HARD_TEMPLATE = (
    "define i{w} @f(i{w} %a, i{w} %b) {{\nentry:\n"
    "  %x = mul i{w} %a, %b\n  %y = mul i{w} %b, %a\n"
    "  %z = sub i{w} %x, %y\n  ret i{w} %z\n}}",
    "define i{w} @f(i{w} %a, i{w} %b) {{\nentry:\n  ret i{w} 0\n}}",
)
WRONG = (
    "define i8 @f(i8 %a) {\nentry:\n  %x = add i8 %a, 2\n  ret i8 %x\n}",
    "define i8 @f(i8 %a) {\nentry:\n  %x = add i8 %a, 3\n  ret i8 %x\n}",
)


def _workload():
    pairs = [EASY, WRONG]
    for w in (10, 12, 14):
        pairs.append(
            (HARD_TEMPLATE[0].format(w=w), HARD_TEMPLATE[1].format(w=w))
        )
    return pairs


def test_bench_timeout_sweep(benchmark):
    pairs = _workload()
    budgets = [100, 400, 1_600, 6_400]  # conflict budgets

    def sweep():
        rows = []
        for budget in budgets:
            options = VerifyOptions(
                timeout_s=120.0, max_conflicts=budget, max_ef_iterations=8
            )
            definitive = timeouts = 0
            start = time.monotonic()
            for src_text, tgt_text in pairs:
                sm, tm = parse_module(src_text), parse_module(tgt_text)
                result = verify_refinement(
                    sm.definitions()[0], tm.definitions()[0], sm, tm, options
                )
                if result.verdict in (Verdict.CORRECT, Verdict.INCORRECT):
                    definitive += 1
                else:
                    timeouts += 1
            rows.append(
                {
                    "budget": budget,
                    "definitive": definitive,
                    "gave_up": timeouts,
                    "time_s": round(time.monotonic() - start, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("E4 (Figure 8): solver budget sweep", rows)

    # Shape: definitive verdicts never decrease with a larger budget and
    # plateau at the top end (the paper's <5%/17% increase past 1 min).
    defs = [r["definitive"] for r in rows]
    assert all(a <= b for a, b in zip(defs, defs[1:])), defs
    assert defs[0] >= 2  # easy pairs are definitive even at tiny budgets
    # Shape: larger budgets never make the run *faster* on give-up-bound
    # workloads (time grows with budget, roughly linearly in the paper).
    assert rows[-1]["time_s"] >= rows[0]["time_s"] * 0.5
