"""E10 — static analysis: solver-bypass prescreen ablation.

The analysis layer (``repro.analysis``) sits in front of the solver: a
dataflow-driven prescreen discharges refinement queries whose answer is
already decided by known-bits/range/poison facts, and the encoder folds
fully-determined bits to constants before bit-blasting.  This benchmark
runs the unit-test corpus with the prescreen on and off, checks the two
configurations produce identical verdicts (the prescreen may only
*prove*, never refute), asserts the >= 10% discharge-rate acceptance
bar, and records wall-clock for both so ``BENCH_analysis.json`` can be
compared against the PR 2 sequential baseline in ``BENCH_engine.json``
(config ``jobs=1 cache=off``).
"""

import json
import os
import time
from pathlib import Path

from conftest import print_table

from repro.analysis import prescreen
from repro.refinement.check import VerifyOptions
from repro.suite.runner import run_suite
from repro.suite.unittests import build_corpus

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_analysis.json"
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _tally_key(outcome):
    row = outcome.tally.row()
    row.pop("time_s")
    return row


def test_bench_static_prescreen(benchmark):
    corpus = build_corpus(generated=12)

    def run():
        results = {}
        for label, enabled in [("prescreen=on", True), ("prescreen=off", False)]:
            prescreen.STATS.reset()
            opts = VerifyOptions(timeout_s=10.0, prescreen=enabled)
            start = time.monotonic()
            outcome = run_suite(corpus, opts, inject_bugs=False)
            results[label] = (time.monotonic() - start, outcome)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, (wall_s, outcome) in results.items():
        t = outcome.tally
        rows.append(
            {
                "config": label,
                "wall_s": round(wall_s, 3),
                "correct": t.correct,
                "incorrect": t.incorrect,
                "ps_hits": t.prescreen_hits,
                "ps_misses": t.prescreen_misses,
                "hit_rate": f"{t.prescreen_hit_rate:.0%}",
            }
        )
    print_table("E10: static prescreen ablation", rows)

    on_wall, on = results["prescreen=on"]
    off_wall, off = results["prescreen=off"]
    # Soundness: identical verdicts with and without the prescreen.
    assert _tally_key(on) == _tally_key(off)
    for a, b in zip(on.records, off.records):
        assert a.test == b.test and a.verdicts == b.verdicts, a.test
    # Acceptance bar: >= 10% of queries discharged without the solver.
    t = on.tally
    assert t.prescreen_hits + t.prescreen_misses > 0
    assert t.prescreen_hit_rate >= 0.10, (t.prescreen_hits, t.prescreen_misses)
    assert off.tally.prescreen_hits == 0

    baseline_wall = None
    if BASELINE_PATH.exists():
        engine = json.loads(BASELINE_PATH.read_text())
        baseline_wall = (
            engine.get("configs", {}).get("jobs=1 cache=off", {}).get("wall_s")
        )

    OUT_PATH.write_text(
        json.dumps(
            {
                "bench": "static_prescreen",
                "corpus_tests": len(corpus),
                "cpu_count": os.cpu_count(),
                "tally": _tally_key(on),
                "configs": {
                    label: {
                        "wall_s": round(wall_s, 3),
                        "prescreen_hits": outcome.tally.prescreen_hits,
                        "prescreen_misses": outcome.tally.prescreen_misses,
                        "hit_rate": round(outcome.tally.prescreen_hit_rate, 3),
                        "solver_checks": sum(
                            r.solver_checks for r in outcome.records
                        ),
                    }
                    for label, (wall_s, outcome) in results.items()
                },
                "speedup_on_vs_off": round(off_wall / on_wall, 2) if on_wall else None,
                "pr2_sequential_baseline_wall_s": baseline_wall,
                "speedup_vs_pr2_baseline": round(baseline_wall / on_wall, 2)
                if baseline_wall and on_wall
                else None,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {OUT_PATH}")
