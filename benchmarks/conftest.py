"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see the
experiment index in DESIGN.md) and prints the same rows/series the paper
reports.  Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables.
"""

from __future__ import annotations

from typing import Dict, List


def print_table(title: str, rows: List[Dict[str, object]]) -> None:
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    headers = list(rows[0].keys())
    widths = {
        h: max(len(str(h)), *(len(str(r[h])) for r in rows)) for h in headers
    }
    print("  ".join(str(h).rjust(widths[h]) for h in headers))
    for row in rows:
        print("  ".join(str(row[h]).rjust(widths[h]) for h in headers))
