"""E16 — relational abstract interpretation: product-CFG GVN ablation.

The relational layer (``repro.analysis.relational`` / ``.align``) adds
three consumers on top of the PR 9 pipeline: the R-relational-equal
prescreen rules (discharge before encoding), cross-function witness
seeds for the e-graph and CEGAR rungs (replacing the lone-forall-var
pairing heuristic), and alignment-aware counterexample notes.  This
benchmark runs the 49-test corpus with the analysis on and off, checks
the two configurations produce byte-identical verdicts (the CEGAR
iteration ceiling is pinned high enough that seeds may only accelerate
convergence, never change a definitive answer), asserts the acceptance
bar — the relational rules discharge or seed at least 15% of the
baseline's solver checks — and records wall-clock plus the counters in
``BENCH_relational.json`` alongside the PR 9 (memdf) baseline numbers.
"""

import json
import os
import time
from pathlib import Path

from conftest import print_table

from repro.analysis import prescreen, relational
from repro.refinement.check import VerifyOptions
from repro.suite.runner import run_suite
from repro.suite.unittests import build_corpus

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_relational.json"
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_memdf.json"


def _tally_key(outcome):
    row = outcome.tally.row()
    row.pop("time_s")
    return row


def test_bench_relational(benchmark):
    corpus = build_corpus(generated=8)

    def run():
        results = {}
        for label, enabled in [
            ("relational=on", True),
            ("relational=off", False),
        ]:
            prescreen.STATS.reset()
            relational.STATS.reset()
            opts = VerifyOptions(
                timeout_s=10.0, relational=enabled, max_ef_iterations=256
            )
            start = time.monotonic()
            outcome = run_suite(corpus, opts, inject_bugs=False)
            results[label] = (
                time.monotonic() - start,
                outcome,
                dict(prescreen.STATS.by_rule),
                relational.STATS.seeded_queries,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, (wall_s, outcome, by_rule, seeded) in results.items():
        t = outcome.tally
        rows.append(
            {
                "config": label,
                "wall_s": round(wall_s, 3),
                "correct": t.correct,
                "rule_hits": t.relational_rule_hits,
                "seeded_queries": seeded,
                "seed_pairs": t.relational_seed_pairs,
                "aligned": t.relational_aligned_blocks,
                "solver_checks": sum(r.solver_checks for r in outcome.records),
            }
        )
    print_table("E16: relational ablation", rows)

    on_wall, on, on_rules, on_seeded = results["relational=on"]
    off_wall, off, off_rules, off_seeded = results["relational=off"]
    # Soundness: byte-identical verdicts with and without the layer.
    assert _tally_key(on) == _tally_key(off)
    for a, b in zip(on.records, off.records):
        assert a.test == b.test and a.verdicts == b.verdicts, a.test
    # The off configuration must not touch any relational machinery.
    assert sum(off_rules.get(r, 0) for r in prescreen.RELATIONAL_RULES) == 0
    assert off.tally.relational_rule_hits == 0
    assert off.tally.relational_aligned_blocks == 0
    assert off_seeded == 0

    # Acceptance bar: discharged-or-seeded >= 15% of the baseline's
    # remaining solver checks.  "Discharged" are queries the prescreen
    # rules answered outright; "seeded" are solver checks that carried a
    # relational witness seed into the e-graph/CEGAR rungs.
    baseline_checks = sum(r.solver_checks for r in off.records)
    discharged = on.tally.relational_rule_hits
    touched = discharged + on_seeded
    assert baseline_checks > 0
    assert touched >= 0.15 * baseline_checks, (
        touched,
        baseline_checks,
    )

    pr9_baseline = None
    if BASELINE_PATH.exists():
        memdf_bench = json.loads(BASELINE_PATH.read_text())
        pr9_baseline = {
            label: {
                "wall_s": cfg.get("wall_s"),
                "solver_checks": cfg.get("solver_checks"),
            }
            for label, cfg in memdf_bench.get("configs", {}).items()
        }

    OUT_PATH.write_text(
        json.dumps(
            {
                "bench": "relational",
                "corpus_tests": len(corpus),
                "cpu_count": os.cpu_count(),
                "tally": _tally_key(on),
                "configs": {
                    label: {
                        "wall_s": round(wall_s, 3),
                        "relational_rule_hits": (
                            outcome.tally.relational_rule_hits
                        ),
                        "relational_seed_pairs": (
                            outcome.tally.relational_seed_pairs
                        ),
                        "relational_aligned_blocks": (
                            outcome.tally.relational_aligned_blocks
                        ),
                        "seeded_queries": seeded,
                        "by_rule": {
                            r: by_rule.get(r, 0)
                            for r in prescreen.RELATIONAL_RULES
                        },
                        "solver_checks": sum(
                            r.solver_checks for r in outcome.records
                        ),
                    }
                    for label, (
                        wall_s,
                        outcome,
                        by_rule,
                        seeded,
                    ) in results.items()
                },
                "discharged_or_seeded": touched,
                "baseline_solver_checks": baseline_checks,
                "discharged_or_seeded_fraction": round(
                    touched / baseline_checks, 3
                ),
                "speedup_on_vs_off": round(off_wall / on_wall, 2)
                if on_wall
                else None,
                "pr9_memdf_baseline": pr9_baseline,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {OUT_PATH}")
