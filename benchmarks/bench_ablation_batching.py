"""E8 — ablation: the plugin-level optimizations (§8.1, §8.4).

Two mechanisms keep whole-suite validation affordable:

* skip-if-no-change (§8.1): don't validate passes that report no change;
* batching (§8.4): validate the composition of several passes at once.

The paper batched oggenc/ph7/SQLite to cut total verification time, at a
slight risk of masking bugs.  This ablation measures both effects on a
generated module and checks that batching reduces the number of solver
invocations without changing the (zero) violation count.
"""

from conftest import print_table

from repro.refinement.check import VerifyOptions
from repro.suite.apps import O3_PIPELINE
from repro.suite.genir import GenConfig, generate_module
from repro.tv.plugin import TvPlugin

OPTS = VerifyOptions(timeout_s=8.0)


def test_bench_batching_ablation(benchmark):
    module = generate_module(
        321, 8, GenConfig(allow_loops=True, allow_memory=True)
    )

    def run():
        results = {}
        for label, batch, skip in [
            ("per-pass", 1, True),
            ("batch-3", 3, True),
            ("batch-all", len(O3_PIPELINE), True),
            ("no-skip", 1, False),
        ]:
            plugin = TvPlugin(OPTS, batch=batch, skip_unchanged=skip)
            report = plugin.validate(module.clone(), O3_PIPELINE)
            results[label] = report
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, report in results.items():
        t = report.tally
        rows.append(
            {
                "config": label,
                "checks": t.analyzed,
                "skipped": t.skipped_unchanged,
                "incorrect": t.incorrect,
                "time_s": round(t.total_time_s, 2),
            }
        )
    print_table("E8: batching / skip-unchanged ablation", rows)

    per_pass = results["per-pass"].tally
    batched = results["batch-all"].tally
    no_skip = results["no-skip"].tally
    # Shape: batching reduces solver invocations; no verdict changes.
    assert batched.analyzed <= per_pass.analyzed
    assert batched.incorrect == per_pass.incorrect == 0
    # Shape: skip-unchanged avoids (attempted) validations.
    assert no_skip.skipped_unchanged == 0
    assert per_pass.skipped_unchanged >= 1
