"""E2 — Figure 6: effect of the unroll factor on unit-test validation.

The paper's trends: as the unroll factor grows, the number of *passed*
tests falls (timeouts / OOM take over), the number of detected
incorrect transformations rises to a plateau, and wall-clock time grows
roughly linearly.  We sweep the factor over a loop-heavy corpus and
check the same shapes.
"""

import time

from conftest import print_table

from repro.ir.parser import parse_module
from repro.refinement.check import Verdict, VerifyOptions, verify_refinement

# Loop pairs: some correct, some wrong at various iteration depths
# (deeper bugs need a larger unroll factor to be seen — the Figure 6
# "incorrect rises with unroll" effect).
COUNT_LOOP = """
define i8 @f(i8 %n) {{
entry:
  br label %header
header:
  %i = phi i8 [ 0, %entry ], [ %i2, %body ]
  %c = icmp ult i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  %i2 = add i8 %i, 1
  br label %header
exit:
  ret i8 {ret}
}}
"""

WRONG_ABOVE = """
define i8 @f(i8 %n) {{
entry:
  %big = icmp ugt i8 %n, {cut}
  br i1 %big, label %bad, label %ok
bad:
  ret i8 77
ok:
  ret i8 %n
}}
"""


def _workload():
    pairs = []
    # Correct pair: loop vs closed form.
    pairs.append(("correct", COUNT_LOOP.format(ret="%i"), "define i8 @f(i8 %n) {\nentry:\n  ret i8 %n\n}"))
    # Wrong pairs that need >= cut+1 iterations to expose.
    for cut in (0, 1, 3, 6, 12):
        pairs.append(
            (f"wrong-above-{cut}", COUNT_LOOP.format(ret="%i"), WRONG_ABOVE.format(cut=cut))
        )
    return pairs


def test_bench_unroll_sweep(benchmark):
    pairs = _workload()
    factors = [1, 2, 4, 8, 16]

    def sweep():
        rows = []
        for factor in factors:
            options = VerifyOptions(timeout_s=20.0, unroll_factor=factor)
            correct = incorrect = gave_up = 0
            start = time.monotonic()
            for _name, src_text, tgt_text in pairs:
                sm, tm = parse_module(src_text), parse_module(tgt_text)
                result = verify_refinement(
                    sm.definitions()[0], tm.definitions()[0], sm, tm, options
                )
                if result.verdict is Verdict.CORRECT:
                    correct += 1
                elif result.verdict is Verdict.INCORRECT:
                    incorrect += 1
                else:
                    gave_up += 1
            rows.append(
                {
                    "unroll": factor,
                    "correct": correct,
                    "incorrect": incorrect,
                    "gave_up": gave_up,
                    "time_s": round(time.monotonic() - start, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("E2 (Figure 6): unroll factor sweep", rows)

    by_factor = {r["unroll"]: r for r in rows}
    # Shape: #incorrect is non-decreasing in the unroll factor (deeper
    # bugs become visible), as in the paper's middle plot.
    incs = [by_factor[f]["incorrect"] for f in factors]
    assert all(a <= b for a, b in zip(incs, incs[1:])), incs
    # With factor 16 every wrong-above-N (N < 15) pair is exposed.
    assert by_factor[16]["incorrect"] >= 4
    # With factor 1 almost nothing is exposed.
    assert by_factor[1]["incorrect"] <= 1
    # Runtime grows with the unroll factor (the paper's right-hand plot).
    assert by_factor[16]["time_s"] >= by_factor[1]["time_s"]
