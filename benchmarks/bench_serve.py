"""E12 — serve: warm-server throughput vs batch CLI cost model.

The service exists to amortize startup: a batch run pays interpreter
boot, imports, and worker spawn on *every* invocation, while a warm
`alive-serve` daemon pays them once and then answers a stream of
requests from pre-warmed workers.  This benchmark starts a daemon,
pushes the unit-test corpus through it twice (cold = first pass funds
worker warm-up, warm = steady state), runs the same corpus through the
in-process engine with a warm query cache as the batch baseline, and
asserts (a) verdict parity between service and batch and (b) warm-server
throughput at least matching the warm-cache batch baseline.  A chaos
pass (one worker SIGKILLed mid-corpus) measures the price of a
supervised recovery.  Raw numbers land in ``BENCH_serve.json``.
"""

import json
import os
import time
from pathlib import Path

from conftest import print_table

from repro.harness.faults import FaultPlan, FaultSpec
from repro.refinement.check import VerifyOptions
from repro.serve import ServeConfig, protocol
from repro.serve.client import ServeClient
from repro.serve.server import ServeServer
from repro.suite.runner import outcome_from_records, run_suite
from repro.suite.unittests import build_corpus

OPTS = VerifyOptions(timeout_s=10.0)
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def _stable(records):
    return [
        (r.test, tuple(sorted(r.verdicts.items())), r.detected, r.missed)
        for r in records
    ]


def test_bench_serve_throughput(benchmark, tmp_path):
    corpus = build_corpus()
    cache_path = str(tmp_path / "qcache.jsonl")
    spec = f"unix:{tmp_path / 'bench.sock'}"
    workers = min(4, os.cpu_count() or 1)

    def run():
        results = {}
        # Batch baseline: in-process, warm persistent query cache (the
        # strongest non-service configuration; run once to warm).
        run_suite(corpus, OPTS, inject_bugs=True, query_cache=cache_path)
        start = time.monotonic()
        batch = run_suite(corpus, OPTS, inject_bugs=True, query_cache=cache_path)
        results["batch warm-cache"] = (time.monotonic() - start, batch.records)

        config = ServeConfig(
            workers=workers,
            cache_enabled=True,
            cache_path=cache_path,
            default_options=OPTS.to_json(),
        )
        server = ServeServer(protocol.parse_address(spec), config).start()
        try:
            with ServeClient(spec) as client:
                start = time.monotonic()
                cold = client.submit_corpus(corpus, OPTS, inject_bugs=True)
                results["serve cold"] = (time.monotonic() - start, cold)
                start = time.monotonic()
                warm = client.submit_corpus(corpus, OPTS, inject_bugs=True)
                results["serve warm"] = (time.monotonic() - start, warm)
        finally:
            server.close(drain_timeout_s=10.0)

        # Chaos pass: SIGKILL-grade worker death mid-corpus; the corpus
        # must still complete with real verdicts, at a bounded premium.
        plan = FaultPlan(
            {corpus[5].name: FaultSpec(kind="die", site="solve")}
        )
        chaos_config = ServeConfig(
            workers=workers,
            cache_enabled=True,
            cache_path=cache_path,
            fault_plan=plan,
            fault_attempts=(1,),
            backoff_base_s=0.05,
            default_options=OPTS.to_json(),
        )
        server = ServeServer(
            protocol.parse_address(spec), chaos_config
        ).start()
        try:
            with ServeClient(spec) as client:
                start = time.monotonic()
                chaos = client.submit_corpus(corpus, OPTS, inject_bugs=True)
                results["serve chaos (1 kill)"] = (
                    time.monotonic() - start,
                    chaos,
                )
                results["chaos stats"] = client.health()["stats"]
        finally:
            server.close(drain_timeout_s=10.0)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    chaos_stats = results.pop("chaos stats")

    rows = []
    for label, (wall_s, records) in results.items():
        tally = outcome_from_records(records).tally
        rows.append(
            {
                "config": label,
                "wall_s": round(wall_s, 3),
                "tests/s": round(len(records) / wall_s, 1) if wall_s else None,
                "correct": tally.correct,
                "incorrect": tally.incorrect,
                "crash": tally.crash,
            }
        )
    print_table("E12: warm-server throughput vs batch", rows)
    print(f"chaos stats: {chaos_stats}")

    # Verdict parity: the service is the same verifier behind a socket.
    baseline = _stable(results["batch warm-cache"][1])
    for label in ("serve cold", "serve warm"):
        assert _stable(results[label][1]) == baseline, label
    # The chaos run still completes everything with real verdicts.
    chaos_records = results["serve chaos (1 kill)"][1]
    assert _stable(chaos_records) == baseline
    assert chaos_stats["worker_deaths"] >= 1
    # Acceptance: warm-server throughput >= warm-cache batch baseline
    # (generous 1.2x slack for CI noise on loaded machines).
    batch_s = results["batch warm-cache"][0]
    warm_s = results["serve warm"][0]
    assert warm_s <= batch_s * 1.2, (warm_s, batch_s)

    OUT_PATH.write_text(
        json.dumps(
            {
                "bench": "serve_throughput",
                "corpus_tests": len(build_corpus()),
                "workers": workers,
                "cpu_count": os.cpu_count(),
                "chaos_stats": chaos_stats,
                "configs": {
                    label: {
                        "wall_s": round(wall_s, 3),
                        "tests_per_s": round(len(records) / wall_s, 2)
                        if wall_s
                        else None,
                        "speedup_vs_batch": round(
                            results["batch warm-cache"][0] / wall_s, 2
                        )
                        if wall_s
                        else None,
                    }
                    for label, (wall_s, records) in results.items()
                },
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {OUT_PATH}")
